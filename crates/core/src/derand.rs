//! Derandomized Stretch: the exact best λ and the exact expected cost,
//! without sampling.
//!
//! The paper's §6.1 estimates "Best λ" and "Average λ" from 20 random
//! draws. Both quantities are in fact *computable*: for a fixed LP rate
//! plan, the completion slot of coflow `j` under stretch factor `λ` is
//!
//! ```text
//! C_j(λ) = max(1, ⌈ C*_j(λ) / λ ⌉)
//! ```
//!
//! where `C*_j(λ)` — the earliest moment the LP schedule has moved a λ
//! fraction of *every* flow of `j` — is a piecewise-linear function of λ
//! (the upper envelope of each flow's inverse cumulative-volume curve).
//! So the rounded cost `Σ_j w_j C_j(λ)` is a piecewise-constant function
//! of λ whose breakpoints are the solutions of `C*_j(λ) = k·λ` for
//! integer `k`: finitely many on any `[λ₀, 1]`, enumerable in closed
//! form piece by piece.
//!
//! * **Exact best λ** ([`Derandomized::best_lambda`]): evaluate the cost
//!   at every breakpoint. Values below the *domination cutoff*
//!   `λ_cut = Σ_j w_j C*_j(0⁺) / cost(1)` need no enumeration: there the
//!   cost already exceeds `cost(1)`, so the minimum cannot hide in the
//!   `λ → 0` tail.
//! * **Exact expectation** ([`Derandomized::expected_cost`]): integrate
//!   `2λ · cost(λ)` piecewise. Near `λ = 0` the integrand has infinitely
//!   many steps but `⌈x⌉ ∈ [x, x+1)` brackets it analytically, so the
//!   tail is integrated in closed form with a rigorous error bound
//!   ([`Derandomized::expected_cost_error`], typically `≪ 1e-9`).
//!
//! This replaces the Monte-Carlo estimate — whose summand `1/λ` has
//! infinite variance under the sampling density `f(v) = 2v` — with a
//! deterministic computation, and turns Theorem 4.4's guarantee
//! `E[cost] ≤ 2·LP` into a directly checkable inequality.
//!
//! Everything here concerns the *pure* stretched schedule (no idle-slot
//! compaction): that is the object the theorem speaks about, and the
//! quantity "Best λ"/"Average λ" estimate.

use crate::model::CoflowInstance;
use crate::rateplan::{FlowPlan, RatePlan};

/// Near-integer snapping tolerance for `⌈·⌉` (absorbs the fp noise of
/// computing a breakpoint and immediately evaluating at it).
const CEIL_TOL: f64 = 1e-9;
/// Below this magnitude a piece's intercept counts as zero (constant
/// completion-to-λ ratio).
const A_TOL: f64 = 1e-12;
/// Cap on exact enumeration steps per linear piece when integrating the
/// expectation; past it the analytic ⌈x⌉∈[x,x+1) bracket takes over.
const MAX_STEPS_PER_PIECE: f64 = 200_000.0;

/// Ceiling with near-integer snapping.
#[inline]
fn ceil_tol(x: f64) -> f64 {
    let r = x.round();
    if (x - r).abs() <= CEIL_TOL * (1.0 + x.abs()) {
        r
    } else {
        x.ceil()
    }
}

/// One linear piece of a completion profile: `C*(λ) = a + b·λ` for
/// `λ ∈ (lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Piece {
    /// Exclusive lower λ.
    pub lo: f64,
    /// Inclusive upper λ.
    pub hi: f64,
    /// Intercept (may be negative when an earlier segment was faster).
    pub a: f64,
    /// Slope (`σ / rate ≥ 0` within a transmission segment).
    pub b: f64,
}

impl Piece {
    #[inline]
    fn at(&self, lambda: f64) -> f64 {
        self.a + self.b * lambda
    }
}

/// `C*(λ)` as a piecewise-linear function of `λ ∈ (0, 1]` — for a flow,
/// the inverse of its cumulative-volume curve; for a coflow, the upper
/// envelope over its flows.
#[derive(Clone, Debug, Default)]
pub struct CompletionProfile {
    /// Pieces in increasing λ order, jointly covering `(0, 1]`.
    pub pieces: Vec<Piece>,
}

impl CompletionProfile {
    /// Builds the profile of one flow from its LP rate plan.
    ///
    /// # Panics
    ///
    /// When the plan does not move the full demand — profiles are only
    /// meaningful for complete LP schedules.
    pub fn from_flow(fp: &FlowPlan, demand: f64) -> CompletionProfile {
        if demand <= 0.0 {
            // Degenerate flow: complete at time 0 for every λ.
            return CompletionProfile {
                pieces: vec![Piece {
                    lo: 0.0,
                    hi: 1.0,
                    a: 0.0,
                    b: 0.0,
                }],
            };
        }
        let mut pieces = Vec::new();
        let mut acc = 0.0f64;
        for s in &fp.segments {
            if s.t1 <= s.t0 || s.rate <= 0.0 {
                continue;
            }
            let v = s.rate * (s.t1 - s.t0);
            let lo = acc / demand;
            let hi = ((acc + v) / demand).min(1.0);
            if hi > lo {
                pieces.push(Piece {
                    lo,
                    hi,
                    a: s.t0 - acc / s.rate,
                    b: demand / s.rate,
                });
            }
            acc += v;
            if acc >= demand * (1.0 - 1e-9) {
                break;
            }
        }
        assert!(
            acc >= demand * (1.0 - 1e-6),
            "rate plan moves {acc} of demand {demand}; profiles need complete plans"
        );
        if let Some(last) = pieces.last_mut() {
            last.hi = 1.0;
        }
        CompletionProfile { pieces }
    }

    /// `C*(λ)` — the earliest time a λ fraction is complete. `λ` must
    /// lie in `(0, 1]`.
    pub fn value(&self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0 && lambda <= 1.0 + 1e-12);
        let idx = self
            .pieces
            .partition_point(|p| p.hi < lambda - 1e-15)
            .min(self.pieces.len() - 1);
        self.pieces[idx].at(lambda)
    }

    /// Completion slot of the stretched-by-`1/λ` schedule:
    /// `max(1, ⌈C*(λ)/λ⌉)`.
    pub fn completion_slot(&self, lambda: f64) -> u32 {
        let ratio = self.value(lambda) / lambda;
        (ceil_tol(ratio).max(1.0)) as u32
    }

    /// Upper envelope (pointwise max) of two profiles.
    pub fn max(&self, other: &CompletionProfile) -> CompletionProfile {
        if self.pieces.is_empty() {
            return other.clone();
        }
        if other.pieces.is_empty() {
            return self.clone();
        }
        // Merge boundaries, then resolve each elementary interval.
        let mut xs: Vec<f64> = self
            .pieces
            .iter()
            .chain(&other.pieces)
            .flat_map(|p| [p.lo, p.hi])
            .collect();
        xs.push(0.0);
        xs.push(1.0);
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite boundaries"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
        let mut out: Vec<Piece> = Vec::new();
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            if x1 <= 0.0 || x0 >= 1.0 || x1 - x0 < 1e-15 {
                continue;
            }
            let mid = 0.5 * (x0 + x1);
            let p = piece_at(&self.pieces, mid);
            let q = piece_at(&other.pieces, mid);
            let d0 = (p.a - q.a) + (p.b - q.b) * x0;
            let d1 = (p.a - q.a) + (p.b - q.b) * x1;
            if d0 >= 0.0 && d1 >= 0.0 {
                push_merged(&mut out, x0, x1, p.a, p.b);
            } else if d0 <= 0.0 && d1 <= 0.0 {
                push_merged(&mut out, x0, x1, q.a, q.b);
            } else {
                // One crossing strictly inside.
                let x_star = (q.a - p.a) / (p.b - q.b);
                let (first, second) = if d0 > 0.0 { (p, q) } else { (q, p) };
                push_merged(&mut out, x0, x_star, first.a, first.b);
                push_merged(&mut out, x_star, x1, second.a, second.b);
            }
        }
        CompletionProfile { pieces: out }
    }
}

/// The piece covering `λ` (by midpoint lookup).
fn piece_at(pieces: &[Piece], lambda: f64) -> Piece {
    let idx = pieces
        .partition_point(|p| p.hi < lambda)
        .min(pieces.len() - 1);
    pieces[idx]
}

/// Appends `[x0, x1]` with line `(a, b)`, merging with an identical
/// predecessor.
fn push_merged(out: &mut Vec<Piece>, x0: f64, x1: f64, a: f64, b: f64) {
    if x1 - x0 < 1e-15 {
        return;
    }
    if let Some(last) = out.last_mut() {
        if (last.a - a).abs() < 1e-12 && (last.b - b).abs() < 1e-12 && (last.hi - x0).abs() < 1e-12
        {
            last.hi = x1;
            return;
        }
    }
    out.push(Piece {
        lo: x0,
        hi: x1,
        a,
        b,
    });
}

/// Per-coflow completion profiles `C*_j(λ)` for an LP rate plan.
///
/// # Panics
///
/// When the plan is incomplete for some flow (see
/// [`CompletionProfile::from_flow`]).
pub fn coflow_profiles(inst: &CoflowInstance, plan: &RatePlan) -> Vec<CompletionProfile> {
    inst.coflows
        .iter()
        .enumerate()
        .map(|(j, cf)| {
            let mut profile = CompletionProfile::default();
            for (i, f) in cf.flows.iter().enumerate() {
                let fp = CompletionProfile::from_flow(&plan.flows[j][i], f.demand);
                profile = profile.max(&fp);
            }
            profile
        })
        .collect()
}

/// Weighted cost `Σ_j w_j · max(1, ⌈C*_j(λ)/λ⌉)` of the pure stretched
/// schedule at a fixed `λ`, evaluated from profiles (no schedule is
/// materialized).
pub fn profile_cost(inst: &CoflowInstance, profiles: &[CompletionProfile], lambda: f64) -> f64 {
    inst.coflows
        .iter()
        .zip(profiles)
        .map(|(cf, p)| cf.weight * f64::from(p.completion_slot(lambda)))
        .sum()
}

/// Output of [`derandomize`].
#[derive(Clone, Debug)]
pub struct Derandomized {
    /// The λ minimizing the pure-stretch cost over `(0, 1]` (exactly, up
    /// to the domination cutoff — see module docs).
    pub best_lambda: f64,
    /// The minimum cost (achieved at `best_lambda`).
    pub best_cost: f64,
    /// Cost of the λ = 1 LP-heuristic, for reference.
    pub heuristic_cost: f64,
    /// `E_λ[cost]` under the paper's density `f(v) = 2v`, to within
    /// [`expected_cost_error`](Derandomized::expected_cost_error).
    pub expected_cost: f64,
    /// Rigorous half-width of the expectation's enclosure (analytic
    /// tail bracket near λ = 0).
    pub expected_cost_error: f64,
    /// Number of candidate λ values examined for the minimum.
    pub candidates: usize,
    /// λ values below this were provably dominated (cost > cost(1)) and
    /// were not enumerated.
    pub cutoff: f64,
}

/// Computes the exact best stretch factor and the exact expected cost of
/// the Stretch algorithm on `plan`. See module docs.
///
/// # Panics
///
/// When `plan` does not move every flow's full demand.
pub fn derandomize(inst: &CoflowInstance, plan: &RatePlan) -> Derandomized {
    let profiles = coflow_profiles(inst, plan);
    let heuristic_cost = profile_cost(inst, &profiles, 1.0);

    // Domination cutoff: cost(λ) ≥ Σ_j w_j C*_j(0⁺)/λ, so below
    // A/cost(1) the cost exceeds cost(1) and cannot be minimal.
    let a_sum: f64 = inst
        .coflows
        .iter()
        .zip(&profiles)
        .map(|(cf, p)| cf.weight * p.pieces.first().map_or(0.0, |p0| p0.a.max(0.0)))
        .sum();
    let cutoff = if a_sum > 0.0 {
        (a_sum / heuristic_cost).min(1.0)
    } else {
        0.0
    };

    // ---- Candidate enumeration for the exact minimum ----
    let mut candidates: Vec<f64> = vec![1.0];
    for p in profiles.iter().flat_map(|pr| &pr.pieces) {
        let lo_eff = p.lo.max(cutoff);
        if lo_eff >= p.hi {
            continue;
        }
        if lo_eff > 0.0 {
            candidates.push(lo_eff.min(1.0));
        }
        if p.a.abs() <= A_TOL {
            continue; // constant ratio: no internal breakpoints
        }
        // Solutions of a/λ + b = k, i.e. λ_k = a/(k − b).
        let ratio_at = |l: f64| p.a / l + p.b;
        let (r_lo, r_hi) = if lo_eff > 0.0 {
            (ratio_at(lo_eff), ratio_at(p.hi))
        } else {
            // lo_eff = 0 can only happen when cutoff = 0, i.e. a_sum = 0,
            // i.e. this piece has a ≤ 0; the ratio is then bounded by b.
            (ratio_at(1e-300), ratio_at(p.hi))
        };
        let (rmin, rmax) = if r_lo < r_hi {
            (r_lo, r_hi)
        } else {
            (r_hi, r_lo)
        };
        let k_first = ceil_tol(rmin).max(1.0);
        let k_last = ceil_tol(rmax) - 1.0;
        if k_last < k_first || !(k_last - k_first).is_finite() {
            continue;
        }
        let mut k = k_first;
        while k <= k_last {
            let denom = k - p.b;
            if denom.abs() > 1e-300 {
                let l = p.a / denom;
                if l > lo_eff && l <= p.hi && l > 0.0 && l <= 1.0 {
                    candidates.push(l);
                }
            }
            k += 1.0;
        }
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite candidates"));
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-14);

    let mut best_lambda = 1.0;
    let mut best_cost = heuristic_cost;
    for &l in &candidates {
        let c = profile_cost(inst, &profiles, l);
        if c < best_cost - 1e-12 {
            best_cost = c;
            best_lambda = l;
        }
    }

    // ---- Exact expectation ----
    let mut expected_cost = 0.0;
    let mut expected_cost_error = 0.0;
    for (cf, pr) in inst.coflows.iter().zip(&profiles) {
        for p in &pr.pieces {
            let (v, e) = integrate_piece(p);
            expected_cost += cf.weight * v;
            expected_cost_error += cf.weight * e;
        }
    }

    Derandomized {
        best_lambda,
        best_cost,
        heuristic_cost,
        expected_cost,
        expected_cost_error,
        candidates: candidates.len(),
        cutoff,
    }
}

/// `∫ 2λ · max(1, ⌈(a + bλ)/λ⌉) dλ` over the piece's λ-range, returning
/// `(value, error_half_width)`.
fn integrate_piece(p: &Piece) -> (f64, f64) {
    let (lo, hi) = (p.lo, p.hi.min(1.0));
    if hi <= lo {
        return (0.0, 0.0);
    }
    if p.a.abs() <= A_TOL {
        let slot = ceil_tol(p.b).max(1.0);
        return (slot * (hi * hi - lo * lo), 0.0);
    }
    let mut total = 0.0;
    let mut err = 0.0;
    // Exact enumeration is capped; below lo_eff use the analytic bracket
    // ⌈x⌉ ∈ [x, x+1): ∫2λ(a/λ+b)dλ = 2aΔλ + bΔ(λ²), correction ∈ [0, Δ(λ²)).
    let lo_eff = lo.max(p.a.abs() / MAX_STEPS_PER_PIECE).min(hi);
    if lo_eff > lo {
        let d1 = lo_eff - lo;
        let d2 = lo_eff * lo_eff - lo * lo;
        let base = 2.0 * p.a * d1 + p.b * d2;
        // max(1, ⌈x⌉) ∈ [max(1, x), max(1, x) + 1) ⊆ [x, x + 1) for the
        // relevant x ≥ 0, so bracket with midpoint ± half-width.
        total += base.max(0.0) + 0.5 * d2;
        err += 0.5 * d2;
    }
    if lo_eff >= hi {
        return (total, err);
    }
    let ratio_at = |l: f64| p.a / l + p.b;
    if p.a > 0.0 {
        // Ratio decreases in λ: walk down from hi.
        let mut cur_hi = hi;
        let mut k = ceil_tol(ratio_at(hi)).max(1.0);
        loop {
            // Value k holds on [λ_k, cur_hi] with λ_k solving ratio = k
            // (or the piece floor when k ≤ b, where ratio > k throughout
            // is impossible for a > 0 — ratio > b — so denom > 0 except
            // for the final clamped-at-1 region).
            let denom = k - p.b;
            let lower = if denom > 1e-300 {
                (p.a / denom).max(lo_eff)
            } else {
                lo_eff
            };
            total += k.max(1.0) * (cur_hi * cur_hi - lower * lower);
            if lower <= lo_eff + 1e-300 {
                break;
            }
            cur_hi = lower;
            k += 1.0;
        }
    } else {
        // a < 0: ratio increases in λ; walk up from lo_eff.
        let mut cur_lo = lo_eff;
        let mut k = ceil_tol(ratio_at(lo_eff)).max(1.0);
        loop {
            // Value k holds on (cur_lo, λ_k] with λ_k solving ratio = k.
            let denom = k - p.b;
            let upper = if denom < -1e-300 {
                (p.a / denom).min(hi)
            } else {
                hi // ratio never reaches k within the piece
            };
            total += k.max(1.0) * (upper * upper - cur_lo * cur_lo);
            if upper >= hi - 1e-300 {
                break;
            }
            cur_lo = upper;
            k += 1.0;
        }
    }
    (total, err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::rateplan::Segment;
    use crate::routing::Routing;
    use crate::stretch::{stretch_schedule, StretchOptions};
    use crate::timeidx::solve_time_indexed;
    use coflow_lp::SolverOptions;
    use coflow_netgraph::{topology, EdgeId};

    fn seg(t0: f64, t1: f64, rate: f64) -> Segment {
        Segment {
            t0,
            t1,
            rate,
            edges: vec![(EdgeId::from_index(0), rate)],
        }
    }

    fn line_instance(demand: f64) -> CoflowInstance {
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(v0, v1, demand)])]).unwrap()
    }

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(2.0, vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::weighted(3.0, vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn constant_rate_flow_has_flat_cost() {
        // Rate 1 over [0, 2.5]: C*(λ) = 2.5λ, ratio 2.5 for every λ, so
        // every stretch factor yields slot 3 and the expectation is 3.
        let inst = line_instance(2.5);
        let plan = RatePlan {
            flows: vec![vec![FlowPlan {
                segments: vec![seg(0.0, 2.5, 1.0)],
            }]],
        };
        let d = derandomize(&inst, &plan);
        assert_eq!(d.best_cost, 3.0);
        assert_eq!(d.heuristic_cost, 3.0);
        assert!((d.expected_cost - 3.0).abs() <= d.expected_cost_error + 1e-12);
        assert!(d.expected_cost_error < 1e-9);
    }

    #[test]
    fn profile_inverse_matches_flowplan_completion() {
        // C*_f(λ) computed from the profile must equal
        // FlowPlan::completion(λ·σ) for any λ.
        let fp = FlowPlan {
            segments: vec![seg(0.0, 1.0, 0.9), seg(9.0, 10.0, 0.1)],
        };
        let profile = CompletionProfile::from_flow(&fp, 1.0);
        for k in 1..200 {
            let lambda = k as f64 / 200.0;
            let via_plan = fp.completion(lambda * 1.0).unwrap();
            let via_profile = profile.value(lambda);
            assert!(
                (via_plan - via_profile).abs() < 1e-9,
                "λ={lambda}: plan {via_plan} vs profile {via_profile}"
            );
        }
    }

    #[test]
    fn envelope_is_pointwise_max() {
        let f1 = CompletionProfile::from_flow(
            &FlowPlan {
                segments: vec![seg(0.0, 4.0, 0.25)],
            },
            1.0,
        );
        let f2 = CompletionProfile::from_flow(
            &FlowPlan {
                segments: vec![seg(0.0, 1.0, 0.9), seg(9.0, 10.0, 0.1)],
            },
            1.0,
        );
        let env = f1.max(&f2);
        for k in 1..=100 {
            let lambda = k as f64 / 100.0;
            let expect = f1.value(lambda).max(f2.value(lambda));
            let got = env.value(lambda);
            assert!(
                (expect - got).abs() < 1e-9,
                "λ={lambda}: max {expect} vs envelope {got}"
            );
        }
    }

    #[test]
    fn profile_cost_matches_materialized_schedules() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let profiles = coflow_profiles(&inst, &lp.plan);
        // Deterministic odd λ values, away from slot-boundary artifacts.
        for &lambda in &[0.137, 0.29, 0.4183, 0.551, 0.6667, 0.73, 0.888, 0.9421, 1.0] {
            let via_profile = profile_cost(&inst, &profiles, lambda);
            let sched =
                stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact: false });
            let via_schedule = sched.completions(&inst).unwrap().weighted_total;
            assert!(
                (via_profile - via_schedule).abs() < 1e-9,
                "λ={lambda}: profile {via_profile} vs schedule {via_schedule}"
            );
        }
    }

    #[test]
    fn exact_best_beats_any_grid_search() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let profiles = coflow_profiles(&inst, &lp.plan);
        let d = derandomize(&inst, &lp.plan);
        // The reported best is achieved at the reported λ.
        let at_best = profile_cost(&inst, &profiles, d.best_lambda);
        assert!(
            (at_best - d.best_cost).abs() < 1e-9,
            "cost({}) = {at_best} != best {}",
            d.best_lambda,
            d.best_cost
        );
        // And no grid point does better.
        for k in 1..=5000 {
            let lambda = k as f64 / 5000.0;
            assert!(
                profile_cost(&inst, &profiles, lambda) >= d.best_cost - 1e-9,
                "grid λ={lambda} beat the exact minimum"
            );
        }
    }

    #[test]
    fn expectation_respects_theorem_4_4() {
        // E[cost] ≤ 2·LP — the paper's guarantee, checked exactly.
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let d = derandomize(&inst, &lp.plan);
        assert!(
            d.expected_cost - d.expected_cost_error <= 2.0 * lp.objective + 1e-6,
            "E[cost] = {} ± {} vs 2·LP = {}",
            d.expected_cost,
            d.expected_cost_error,
            2.0 * lp.objective
        );
        // Every rounded schedule is feasible, so E ≥ the LP bound too.
        assert!(d.expected_cost + d.expected_cost_error >= lp.objective - 1e-6);
    }

    #[test]
    fn expectation_matches_numeric_integration() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let profiles = coflow_profiles(&inst, &lp.plan);
        let d = derandomize(&inst, &lp.plan);
        // Midpoint rule on [eps, 1] + analytic-ish tail bound.
        let n = 40_000;
        let eps = 1e-4;
        let mut numeric = 0.0;
        for k in 0..n {
            let lambda = eps + (1.0 - eps) * (k as f64 + 0.5) / n as f64;
            numeric +=
                2.0 * lambda * profile_cost(&inst, &profiles, lambda) * (1.0 - eps) / n as f64;
        }
        // Tail [0, eps]: cost ≤ Σ w_j(C*_j(eps)/eps + 1) there, mass 2λdλ.
        let tail_hi: f64 = inst
            .coflows
            .iter()
            .zip(&profiles)
            .map(|(cf, p)| cf.weight * (p.value(eps) / eps + 1.0))
            .sum::<f64>()
            * eps
            * eps;
        assert!(
            (d.expected_cost - numeric).abs() < 0.01 * (1.0 + numeric) + tail_hi,
            "exact {} vs numeric {numeric} (tail ≤ {tail_hi})",
            d.expected_cost
        );
    }

    #[test]
    fn best_lambda_tracks_the_sampled_sweep() {
        use crate::stretch::lambda_sweep;
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let d = derandomize(&inst, &lp.plan);
        let sweep = lambda_sweep(&inst, &lp.plan, 40, 2019, StretchOptions { compact: false });
        // The exact minimum can only improve on sampling.
        assert!(
            d.best_cost <= sweep.best().weighted_cost + 1e-9,
            "exact {} vs sampled best {}",
            d.best_cost,
            sweep.best().weighted_cost
        );
        // And the sample average is an estimate of the exact expectation;
        // with 40 draws allow a generous band.
        assert!(
            sweep.average() >= d.best_cost - 1e-9,
            "sampled average below the exact minimum"
        );
    }

    #[test]
    fn late_release_creates_positive_cutoff() {
        // A flow released at 5 forces C*(0⁺) ≥ 5: tiny λ is provably
        // dominated and the cutoff must reflect it.
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::released(v0, v1, 1.0, 5)])])
            .unwrap();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 10, &SolverOptions::default()).unwrap();
        let d = derandomize(&inst, &lp.plan);
        assert!(d.cutoff > 0.0, "late release must produce a cutoff");
        assert!(d.best_lambda >= d.cutoff - 1e-12);
        // Released at 5 ⇒ completion slot ≥ 6 whatever λ does.
        assert!(d.best_cost >= 6.0 - 1e-9);
    }

    #[test]
    fn derandomize_is_deterministic() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let a = derandomize(&inst, &lp.plan);
        let b = derandomize(&inst, &lp.plan);
        assert_eq!(a.best_lambda, b.best_lambda);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.expected_cost, b.expected_cost);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn two_segment_plan_prefers_early_truncation() {
        // 0.9 of the demand ships by t=1, the rest at t=10 (the paper's
        // §4 motivating example). λ ≤ 0.9 truncates before the straggler
        // and computes slot ⌈C*(λ)/λ⌉ ≤ ⌈(λ/0.9)/λ⌉ = 2, versus slot 10
        // at λ = 1 — derandomization must find such a λ.
        let inst = line_instance(1.0);
        let plan = RatePlan {
            flows: vec![vec![FlowPlan {
                segments: vec![seg(0.0, 1.0, 0.9), seg(9.0, 10.0, 0.1)],
            }]],
        };
        let d = derandomize(&inst, &plan);
        assert_eq!(d.heuristic_cost, 10.0);
        assert!(d.best_cost <= 2.0, "best {}", d.best_cost);
        assert!(d.best_lambda <= 0.9 + 1e-12);
    }
}
