//! Idle-slot compaction (paper §6.1, "Rounding").
//!
//! Stretch leaves slots empty once a flow's demand is met (Figure 5,
//! third panel). The paper's implementation closes those gaps: *"we deal
//! with this issue by moving the schedule of every time slot `t` to an
//! earlier idle slot `t'` if for all flows scheduled at `t`, its release
//! time is before `t'`."* Moving a slot wholesale preserves feasibility
//! (capacities are per-slot and the contents were jointly feasible), and
//! can only lower completion times.

use crate::model::CoflowInstance;
use crate::schedule::Schedule;

/// Applies idle-slot compaction until a fixpoint (each pass moves whole
/// slot contents into earlier empty slots; passes repeat because a move
/// frees its source slot for later content).
///
/// Returns the number of slot moves performed.
pub fn compact(schedule: &mut Schedule, inst: &CoflowInstance) -> usize {
    let mut total_moves = 0;
    loop {
        let moves = compact_pass(schedule, inst);
        total_moves += moves;
        if moves == 0 {
            return total_moves;
        }
    }
}

/// One ascending pass of the paper's rule; returns slots moved.
fn compact_pass(schedule: &mut Schedule, inst: &CoflowInstance) -> usize {
    let horizon = schedule.horizon();
    if horizon <= 1 {
        return 0;
    }
    // occupied[t] for t in 1..=horizon; release_floor[t] = 1 + max release
    // among flows transmitting in slot t (earliest legal destination).
    let h = horizon as usize;
    let mut occupied = vec![false; h + 1];
    let mut release_floor = vec![1u32; h + 1];
    for (j, row) in schedule.flows.iter().enumerate() {
        for (i, fl) in row.iter().enumerate() {
            let rel = inst.coflows[j].flows[i].release;
            for st in fl {
                let t = st.slot as usize;
                occupied[t] = true;
                release_floor[t] = release_floor[t].max(rel + 1);
            }
        }
    }

    // Plan moves greedily in ascending slot order.
    let mut moves: Vec<(u32, u32)> = Vec::new(); // (from, to)
    for t in 2..=h {
        if !occupied[t] {
            continue;
        }
        let floor = release_floor[t] as usize;
        // Smallest empty legal slot strictly before t.
        let Some(target) = (floor..t).find(|&u| !occupied[u]) else {
            continue;
        };
        occupied[target] = true;
        occupied[t] = false;
        release_floor[target] = release_floor[t];
        release_floor[t] = 1;
        moves.push((t as u32, target as u32));
    }
    if moves.is_empty() {
        return 0;
    }
    let remap: std::collections::HashMap<u32, u32> = moves.iter().copied().collect();
    for row in &mut schedule.flows {
        for fl in row {
            for st in fl.iter_mut() {
                if let Some(&to) = remap.get(&st.slot) {
                    st.slot = to;
                }
            }
            fl.sort_by_key(|st| st.slot);
        }
    }
    moves.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, CoflowInstance, Flow};
    use crate::schedule::SlotTransfer;
    use coflow_netgraph::{topology, EdgeId};

    fn line_instance_with_release(release: u32) -> CoflowInstance {
        let topo = topology::line(2, 10.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        CoflowInstance::new(
            g,
            vec![Coflow::new(vec![Flow::released(v0, v1, 2.0, release)])],
        )
        .unwrap()
    }

    fn transfer(slot: u32, volume: f64) -> SlotTransfer {
        SlotTransfer {
            slot,
            volume,
            edges: vec![(EdgeId::from_index(0), volume)],
        }
    }

    #[test]
    fn gaps_close_to_the_front() {
        let inst = line_instance_with_release(0);
        let mut sched = Schedule {
            flows: vec![vec![vec![transfer(3, 1.0), transfer(7, 1.0)]]],
        };
        let moves = compact(&mut sched, &inst);
        assert!(moves >= 2);
        let slots: Vec<u32> = sched.flows[0][0].iter().map(|s| s.slot).collect();
        assert_eq!(slots, vec![1, 2]);
        assert_eq!(
            sched.completions(&inst).unwrap().per_coflow,
            vec![2],
            "completion should improve from 7 to 2"
        );
    }

    #[test]
    fn release_times_block_early_moves() {
        let inst = line_instance_with_release(4);
        let mut sched = Schedule {
            flows: vec![vec![vec![transfer(6, 1.0), transfer(9, 1.0)]]],
        };
        compact(&mut sched, &inst);
        let slots: Vec<u32> = sched.flows[0][0].iter().map(|s| s.slot).collect();
        // Earliest legal slot is 5 (release 4 ⇒ slots > 4).
        assert_eq!(slots, vec![5, 6]);
    }

    #[test]
    fn occupied_slots_do_not_merge() {
        // Two flows in separate slots with full capacity each; compaction
        // must not merge them into one slot (only empty targets).
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v0, v1, 1.0)]),
                Coflow::new(vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let mut sched = Schedule {
            flows: vec![vec![vec![transfer(1, 1.0)]], vec![vec![transfer(3, 1.0)]]],
        };
        compact(&mut sched, &inst);
        let s0 = sched.flows[0][0][0].slot;
        let s1 = sched.flows[1][0][0].slot;
        assert_ne!(s0, s1, "slots must stay distinct");
        assert_eq!((s0, s1), (1, 2));
    }

    #[test]
    fn already_compact_schedule_is_untouched() {
        let inst = line_instance_with_release(0);
        let mut sched = Schedule {
            flows: vec![vec![vec![transfer(1, 1.0), transfer(2, 1.0)]]],
        };
        let before = sched.clone();
        assert_eq!(compact(&mut sched, &inst), 0);
        assert_eq!(sched, before);
    }

    #[test]
    fn fixpoint_needs_multiple_passes() {
        // Slot 2 occupied, slot 5 occupied; pass 1 moves 2->1 and 5->2?
        // Ascending pass: t=2 -> target 1; t=5 -> target 2 (freed in the
        // same pass). A second pass finds nothing.
        let inst = line_instance_with_release(0);
        let mut sched = Schedule {
            flows: vec![vec![vec![transfer(2, 1.0), transfer(5, 1.0)]]],
        };
        compact(&mut sched, &inst);
        let slots: Vec<u32> = sched.flows[0][0].iter().map(|s| s.slot).collect();
        assert_eq!(slots, vec![1, 2]);
    }
}
