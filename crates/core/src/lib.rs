//! Near-optimal coflow scheduling in networks — the core library.
//!
//! This crate reproduces the primary contribution of Chowdhury, Khuller,
//! Purohit, Yang & You, *Near Optimal Coflow Scheduling in Networks*
//! (SPAA 2019): time-indexed and geometric-interval LP relaxations for
//! coflow scheduling over general graphs, and the randomized **Stretch**
//! rounding that turns an LP solution into a feasible schedule with
//! expected weighted completion time at most twice the LP lower bound
//! (2-approximation; (2+ε) for super-polynomial horizons).
//!
//! # Pipeline
//!
//! ```text
//! CoflowInstance + Routing
//!        │  crate::timeidx (§3) or crate::interval (Appendix A)
//!        │  (cached per instance by crate::solve::SolveContext)
//!        ▼
//! LpRelaxation { objective = lower bound, plan: RatePlan }
//!        │  crate::stretch (§4.1, λ ~ 2v)  /  crate::heuristic (λ = 1)
//!        ▼
//! Schedule ──► crate::validate (feasibility referee)
//!        │  crate::compact (§6.1 idle-slot compaction)
//!        ▼
//! Completions { Σ w_j C_j }
//! ```
//!
//! Every algorithm — this pipeline in all its `Algorithm` ×
//! `Relaxation` combinations, and every baseline in `coflow-baselines`
//! — implements the [`solve::CoflowSolver`] trait and returns a
//! validated [`solve::SolveOutcome`]; the name→constructor registry
//! over all of them lives in `coflow-baselines::registry`. The
//! builder-style front end is [`solver::Scheduler`]; each stage is also
//! public for direct use.
//!
//! # Example
//!
//! ```
//! use coflow_core::model::{Coflow, CoflowInstance, Flow};
//! use coflow_core::routing::Routing;
//! use coflow_core::solver::{Algorithm, Scheduler};
//! use coflow_netgraph::topology;
//!
//! // Two coflows crossing the paper's Figure-2 network.
//! let topo = topology::fig2_example();
//! let g = topo.graph;
//! let s = g.node_by_label("s").unwrap();
//! let t = g.node_by_label("t").unwrap();
//! let inst = CoflowInstance::new(
//!     g,
//!     vec![Coflow::new(vec![Flow::new(s, t, 3.0)])],
//! ).unwrap();
//!
//! let report = Scheduler::new(Algorithm::LpHeuristic)
//!     .solve(&inst, &Routing::FreePath)
//!     .unwrap();
//! assert!(report.cost >= report.lower_bound - 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// LP builders index flow/path/variable tables in lockstep by position;
// zip-rewrites of those loops obscure the indexing structure.
#![allow(clippy::needless_range_loop)]

pub mod compact;
pub mod derand;
mod error;
pub mod flowtime;
pub mod greedy;
pub mod heuristic;
pub mod horizon;
pub mod interval;
pub mod io;
pub mod loads;
pub mod model;
pub mod online;
pub mod rateplan;
pub mod resolver;
pub mod routing;
pub mod schedule;
pub mod sensitivity;
pub mod solve;
pub mod solver;
pub mod stretch;
pub mod timeidx;
pub mod validate;

pub use error::CoflowError;
