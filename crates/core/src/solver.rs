//! High-level scheduling API tying the pipeline together.
//!
//! [`Scheduler`] wraps: horizon selection → LP relaxation (time-indexed
//! or geometric-interval) → rounding (Stretch with sampled λ, a fixed λ,
//! or the λ=1 heuristic) → validation → a [`SolveReport`] with the LP
//! lower bound and the achieved cost. This is the API the examples and
//! the figure harnesses use.

use crate::error::CoflowError;
use crate::horizon::{horizon, HorizonMode};
use crate::interval::solve_interval;
use crate::model::CoflowInstance;
use crate::routing::Routing;
use crate::schedule::Schedule;
use crate::solve::{CoflowSolver, LpRoundingSolver, SolveContext};
use crate::stretch::{LambdaSweep, StretchOptions};
use crate::timeidx::{solve_time_indexed, LpRelaxation, LpSize};
use crate::validate::{Tolerance, ValidationReport};
use coflow_lp::SolverOptions;

/// Which relaxation to solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Relaxation {
    /// Unit-slot time-indexed LP (§3) — the tightest bound.
    TimeIndexed,
    /// Geometric-interval LP (Appendix A) with parameter ε.
    Interval {
        /// Interval growth parameter (smaller = tighter = bigger LP).
        epsilon: f64,
    },
}

/// Which rounding to apply to the LP plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Stretch with λ sampled from `f(v) = 2v`, `samples` times; the
    /// report carries the best/average statistics (paper §6.1: 20
    /// samples).
    Stretch {
        /// Number of independent λ draws.
        samples: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Stretch with one fixed λ.
    FixedLambda(
        /// The stretch factor in `(0, 1]`.
        f64,
    ),
    /// The λ=1 LP-heuristic (paper §6.2) — best in practice.
    LpHeuristic,
}

/// Everything a figure harness needs from one solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// LP optimum `Σ w_j C*_j` — the "LP (lower bound)" series.
    pub lower_bound: f64,
    /// Weighted completion time of the returned schedule.
    pub cost: f64,
    /// Unweighted total completion time (Terra comparisons).
    pub unweighted_cost: f64,
    /// The feasible schedule that achieved `cost`.
    pub schedule: Schedule,
    /// Full validation output (completions, utilization).
    pub validation: ValidationReport,
    /// λ-sweep statistics when [`Algorithm::Stretch`] ran.
    pub sweep: Option<LambdaSweep>,
    /// Horizon used by the relaxation.
    pub horizon: u32,
    /// LP dimensions (rows/cols/nonzeros).
    pub lp_size: LpSize,
    /// Simplex iterations.
    pub lp_iterations: usize,
}

/// Configurable solving pipeline; construct with [`Scheduler::new`] and
/// chain the `with_*` builders.
#[derive(Clone, Debug)]
pub struct Scheduler {
    relaxation: Relaxation,
    algorithm: Algorithm,
    horizon_mode: HorizonMode,
    stretch_opts: StretchOptions,
    lp_opts: SolverOptions,
    tolerance: Tolerance,
}

impl Scheduler {
    /// A scheduler using the time-indexed LP and default options.
    pub fn new(algorithm: Algorithm) -> Self {
        Scheduler {
            relaxation: Relaxation::TimeIndexed,
            algorithm,
            horizon_mode: HorizonMode::default(),
            stretch_opts: StretchOptions::default(),
            lp_opts: SolverOptions::default(),
            tolerance: Tolerance::default(),
        }
    }

    /// Selects the relaxation (time-indexed or interval).
    pub fn with_relaxation(mut self, relaxation: Relaxation) -> Self {
        self.relaxation = relaxation;
        self
    }

    /// Selects the horizon mode.
    pub fn with_horizon(mut self, mode: HorizonMode) -> Self {
        self.horizon_mode = mode;
        self
    }

    /// Toggles idle-slot compaction.
    pub fn with_compaction(mut self, compact: bool) -> Self {
        self.stretch_opts = StretchOptions { compact };
        self
    }

    /// Overrides LP solver options.
    pub fn with_lp_options(mut self, opts: SolverOptions) -> Self {
        self.lp_opts = opts;
        self
    }

    /// Solves the relaxation only, returning the LP outcome (the paper's
    /// lower-bound series without any rounding).
    ///
    /// # Errors
    ///
    /// Propagates instance/routing/LP errors.
    pub fn relax(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
    ) -> Result<LpRelaxation, CoflowError> {
        let t = horizon(inst, routing, self.horizon_mode)?;
        match self.relaxation {
            Relaxation::TimeIndexed => solve_time_indexed(inst, routing, t, &self.lp_opts),
            Relaxation::Interval { epsilon } => {
                solve_interval(inst, routing, t, epsilon, &self.lp_opts).map(|r| r.lp)
            }
        }
    }

    /// Runs the full pipeline: relax, round, validate.
    ///
    /// # Errors
    ///
    /// Propagates instance/routing/LP errors; validation failure of a
    /// rounded schedule indicates an internal bug and also surfaces as an
    /// error.
    pub fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
    ) -> Result<SolveReport, CoflowError> {
        let mut ctx = SolveContext::new()
            .with_horizon_mode(self.horizon_mode)
            .with_lp_options(self.lp_opts.clone())
            .with_tolerance(self.tolerance);
        let solver = LpRoundingSolver {
            relaxation: self.relaxation,
            rounding: self.algorithm,
            options: self.stretch_opts,
        };
        let out = solver.solve(inst, routing, &mut ctx)?;
        Ok(SolveReport {
            lower_bound: out.lower_bound.expect("LP pipeline reports a bound"),
            cost: out.cost,
            unweighted_cost: out.unweighted_cost,
            schedule: out.schedule,
            validation: out.validation,
            sweep: out.sweep,
            horizon: out.horizon.expect("LP pipeline reports a horizon"),
            lp_size: out.lp_size.expect("LP pipeline reports LP dimensions"),
            lp_iterations: out.lp_iterations.expect("LP pipeline reports iterations"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use coflow_netgraph::topology;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn heuristic_reaches_fig4_optimum_on_free_path() {
        let inst = fig2_instance();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        // Optimal total weighted completion time is 5 (Figure 4); the
        // LP heuristic with compaction matches it on this instance.
        assert!(report.cost <= 5.0 + 1e-6, "cost {}", report.cost);
        assert!(report.lower_bound <= report.cost + 1e-6);
    }

    #[test]
    fn stretch_sweep_reports_statistics() {
        let inst = fig2_instance();
        let report = Scheduler::new(Algorithm::Stretch {
            samples: 10,
            seed: 42,
        })
        .solve(&inst, &Routing::FreePath)
        .unwrap();
        let sweep = report.sweep.as_ref().unwrap();
        assert_eq!(sweep.samples.len(), 10);
        // The report carries the best sample's schedule.
        assert!(report.cost <= sweep.average() + 1e-9);
        assert!((report.cost - sweep.best().weighted_cost).abs() < 1e-9);
        // Every sample is bounded below by the LP.
        for s in &sweep.samples {
            assert!(s.weighted_cost >= report.lower_bound - 1e-6);
        }
    }

    #[test]
    fn interval_relaxation_pipeline_works() {
        let inst = fig2_instance();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .with_relaxation(Relaxation::Interval { epsilon: 0.5 })
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        assert!(report.cost >= 4.0);
        assert!(report.lp_size.cols > 0);
    }

    #[test]
    fn fixed_lambda_pipeline_works() {
        let inst = fig2_instance();
        let report = Scheduler::new(Algorithm::FixedLambda(0.5))
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        assert!(report.cost >= report.lower_bound - 1e-6);
    }
}
