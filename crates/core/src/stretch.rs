//! The Stretch algorithm (paper §4.1) — a randomized 2-approximation.
//!
//! 1. Solve the LP relaxation (§3) → a fractional [`RatePlan`].
//! 2. Draw `λ ∈ (0,1)` with density `f(v) = 2v` (i.e. `λ = √U`).
//! 3. Stretch the plan by `1/λ`: whatever the LP schedules in `[a, b]`
//!    runs in `[a/λ, b/λ]`.
//! 4. Once a flow's demand is met, leave the remaining slots empty.
//!
//! §4.2 shows `E[C_j(alg)] ≤ 2 C*_j` for every coflow, which with
//! linearity of expectation gives the randomized 2-approximation
//! (Theorem 4.4). The implementation additionally applies the paper's
//! §6.1 idle-slot compaction, which "does not improve the theoretical
//! bound, but is beneficial in practice".

use crate::compact::compact;
use crate::model::CoflowInstance;
use crate::rateplan::RatePlan;
use crate::schedule::Schedule;
use rand::Rng;

/// Draws `λ` from the density `f(v) = 2v` on `(0, 1)` via inverse-CDF
/// sampling (`F(v) = v²` ⇒ `λ = √U`).
pub fn sample_lambda<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    u.sqrt()
}

/// Options for [`stretch_schedule`].
#[derive(Clone, Copy, Debug)]
pub struct StretchOptions {
    /// Apply §6.1 idle-slot compaction after rounding (paper default).
    pub compact: bool,
}

impl Default for StretchOptions {
    fn default() -> Self {
        StretchOptions { compact: true }
    }
}

/// Rounds an LP rate plan into a feasible slotted schedule with a fixed
/// stretch factor `λ ∈ (0, 1]`; `λ = 1` is the paper's LP-heuristic.
pub fn stretch_schedule(
    inst: &CoflowInstance,
    plan: &RatePlan,
    lambda: f64,
    opts: StretchOptions,
) -> Schedule {
    let stretched = if lambda < 1.0 {
        plan.stretch(lambda)
    } else {
        plan.clone()
    };
    let truncated = stretched.truncate(inst);
    let mut schedule = truncated.discretize();
    if opts.compact {
        compact(&mut schedule, inst);
    }
    schedule
}

/// One sampled rounding: the λ drawn and the resulting cost.
#[derive(Clone, Debug)]
pub struct LambdaSample {
    /// The sampled stretch factor.
    pub lambda: f64,
    /// Weighted completion time of the rounded schedule.
    pub weighted_cost: f64,
    /// Unweighted (total) completion time.
    pub unweighted_cost: f64,
}

/// Summary of repeated sampling (the paper samples 20 λ values and
/// reports "Best λ" and "Average λ").
#[derive(Clone, Debug)]
pub struct LambdaSweep {
    /// All samples in draw order.
    pub samples: Vec<LambdaSample>,
}

impl LambdaSweep {
    /// The sample with the smallest weighted cost ("Best λ").
    pub fn best(&self) -> &LambdaSample {
        self.samples
            .iter()
            .min_by(|a, b| {
                a.weighted_cost
                    .partial_cmp(&b.weighted_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("sweep has at least one sample")
    }

    /// Mean weighted cost over samples ("Average λ").
    pub fn average(&self) -> f64 {
        self.samples.iter().map(|s| s.weighted_cost).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean unweighted cost over samples.
    pub fn average_unweighted(&self) -> f64 {
        self.samples.iter().map(|s| s.unweighted_cost).sum::<f64>() / self.samples.len() as f64
    }
}

/// Runs `n_samples` independent Stretch roundings with λ drawn from the
/// paper's distribution, in parallel across threads.
///
/// Each sample validates implicitly through completion computation; use
/// [`crate::validate::validate`] on a specific rounded schedule for the
/// full feasibility audit.
pub fn lambda_sweep(
    inst: &CoflowInstance,
    plan: &RatePlan,
    n_samples: usize,
    seed: u64,
    opts: StretchOptions,
) -> LambdaSweep {
    assert!(n_samples >= 1);
    // Draw all λ values up front (deterministic given the seed), then
    // evaluate in parallel.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let lambdas: Vec<f64> = (0..n_samples).map(|_| sample_lambda(&mut rng)).collect();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(n_samples);
    let mut samples: Vec<Option<LambdaSample>> = vec![None; n_samples];
    if threads <= 1 {
        for (k, &lambda) in lambdas.iter().enumerate() {
            samples[k] = Some(evaluate(inst, plan, lambda, opts));
        }
    } else {
        let chunks: Vec<(usize, f64)> = lambdas.iter().copied().enumerate().collect();
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in chunks.chunks(n_samples.div_ceil(threads)) {
                let chunk = chunk.to_vec();
                handles.push(scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(k, lambda)| (k, evaluate(inst, plan, lambda, opts)))
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("stretch worker panicked"))
                .collect::<Vec<_>>()
        });
        for (k, s) in results {
            samples[k] = Some(s);
        }
    }
    LambdaSweep {
        samples: samples.into_iter().map(|s| s.expect("filled")).collect(),
    }
}

fn evaluate(
    inst: &CoflowInstance,
    plan: &RatePlan,
    lambda: f64,
    opts: StretchOptions,
) -> LambdaSample {
    let schedule = stretch_schedule(inst, plan, lambda, opts);
    let completions = schedule
        .completions(inst)
        .expect("stretched schedules are complete by construction");
    LambdaSample {
        lambda,
        weighted_cost: completions.weighted_total,
        unweighted_cost: completions.unweighted_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::routing::Routing;
    use crate::timeidx::solve_time_indexed;
    use crate::validate::{validate, Tolerance};
    use coflow_lp::SolverOptions;
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lambda_distribution_matches_2v() {
        let mut rng = StdRng::seed_from_u64(9);
        const N: usize = 20_000;
        let mut mean = 0.0;
        let mut below_half = 0usize;
        for _ in 0..N {
            let l = sample_lambda(&mut rng);
            assert!(l > 0.0 && l < 1.0);
            mean += l;
            if l < 0.5 {
                below_half += 1;
            }
        }
        mean /= N as f64;
        // E[λ] = ∫ 2v² dv = 2/3; P(λ < 1/2) = 1/4.
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean {mean}");
        let frac = below_half as f64 / N as f64;
        assert!((frac - 0.25).abs() < 0.02, "P(<0.5) = {frac}");
    }

    #[test]
    fn stretched_schedules_are_feasible_for_many_lambdas() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        for lambda in [0.1, 0.3, 0.5, 0.77, 0.99, 1.0] {
            for compact in [false, true] {
                let sched = stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact });
                let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default())
                    .unwrap_or_else(|e| panic!("λ={lambda} compact={compact}: {e}"));
                assert!(rep.peak_utilization <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn compaction_never_hurts() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        for lambda in [0.25, 0.5, 0.9] {
            let plain =
                stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact: false });
            let packed =
                stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact: true });
            let c_plain = plain.completions(&inst).unwrap().weighted_total;
            let c_packed = packed.completions(&inst).unwrap().weighted_total;
            assert!(
                c_packed <= c_plain + 1e-9,
                "λ={lambda}: compaction worsened {c_plain} -> {c_packed}"
            );
        }
    }

    #[test]
    fn sweep_statistics_are_consistent() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let sweep = lambda_sweep(&inst, &lp.plan, 20, 7, StretchOptions::default());
        assert_eq!(sweep.samples.len(), 20);
        let best = sweep.best().weighted_cost;
        let avg = sweep.average();
        assert!(best <= avg + 1e-9);
        // Every rounded schedule costs at least the LP bound.
        for s in &sweep.samples {
            assert!(s.weighted_cost >= lp.objective - 1e-6);
        }
    }

    #[test]
    fn expected_cost_is_within_twice_the_lp_bound() {
        // Theorem 4.4: E_λ[Σ w_j C_j(alg)] ≤ 2 Σ w_j C*_j. The sample
        // mean of 1/λ has infinite variance under f(v)=2v, so instead of
        // random draws we integrate cost(λ)·f(λ) over a fine λ-grid —
        // a deterministic check of the expectation itself. Compaction is
        // disabled: the theorem is about the pure stretched schedule.
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let grid = 400;
        let lo = 0.02; // tail [0, lo] bounded separately below
        let mut expectation = 0.0;
        for k in 0..grid {
            let lambda = lo + (1.0 - lo) * (k as f64 + 0.5) / grid as f64;
            let sched =
                stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact: false });
            let cost = sched.completions(&inst).unwrap().weighted_total;
            expectation += 2.0 * lambda * cost * (1.0 - lo) / grid as f64;
        }
        // Tail bound: cost(λ) ≤ Σ w_j (T/λ + 1), so the [0, lo] mass
        // contributes at most Σ w_j (T·2·lo + lo²).
        let w_sum: f64 = inst.coflows.iter().map(|c| c.weight).sum();
        let tail = w_sum * ((lp.horizon as f64) * 2.0 * lo + lo * lo);
        expectation += tail;
        assert!(
            expectation <= 2.0 * lp.objective + 0.75,
            "E[cost] ≈ {expectation} vs 2·LP = {} (+slot-rounding slack)",
            2.0 * lp.objective
        );
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let a = lambda_sweep(&inst, &lp.plan, 8, 123, StretchOptions::default());
        let b = lambda_sweep(&inst, &lp.plan, 8, 123, StretchOptions::default());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.lambda, y.lambda);
            assert_eq!(x.weighted_cost, y.weighted_cost);
        }
    }
}
