//! The unified solving API: one trait every algorithm implements.
//!
//! The paper's experiments (§6) are head-to-head comparisons — the LP
//! lower bound vs Stretch vs the λ=1 heuristic vs the baselines — so the
//! suite needs a common notion of "an algorithm". [`CoflowSolver`] is
//! that notion: every scheduler (the paper pipeline in this crate, the
//! baselines in `coflow-baselines`) takes an instance, a routing model,
//! and a [`SolveContext`], and returns a validated [`SolveOutcome`].
//!
//! ```text
//! CoflowSolver::solve(inst, routing, ctx)
//!        │                         │
//!        │        ┌────────────────┴──────────────┐
//!        │        │ SolveContext caches, per       │
//!        │        │ (instance, routing) pair:      │
//!        │        │  · horizon T                   │
//!        │        │  · time-indexed LP relaxation  │
//!        │        │  · interval LP per ε           │
//!        ▼        └───────────────────────────────┘
//! SolveOutcome { cost, schedule, validation, lower bound?, LP stats? }
//! ```
//!
//! The context is the speed win: a figure point that runs five
//! algorithms on one instance solves each LP relaxation once, not once
//! per algorithm. The name→constructor registry over these solvers lives
//! in `coflow-baselines::registry` (it can see both this crate and the
//! baselines).
//!
//! # Example
//!
//! Run two pipeline variants on the paper's Figure-2 network through
//! one shared context — the second solve reuses the first's cached
//! time-indexed LP:
//!
//! ```
//! use coflow_core::model::{Coflow, CoflowInstance, Flow};
//! use coflow_core::routing::Routing;
//! use coflow_core::solve::{CoflowSolver, LpRoundingSolver, SolveContext};
//! use coflow_core::solver::Algorithm;
//! use coflow_netgraph::topology;
//!
//! let topo = topology::fig2_example();
//! let g = topo.graph;
//! let (s, t) = (g.node_by_label("s").unwrap(), g.node_by_label("t").unwrap());
//! let inst = CoflowInstance::new(
//!     g,
//!     vec![
//!         Coflow::new(vec![Flow::new(s, t, 3.0)]),
//!         Coflow::weighted(2.0, vec![Flow::new(s, t, 1.0)]),
//!     ],
//! )
//! .unwrap();
//!
//! // One context per (instance, routing) pair.
//! let mut ctx = SolveContext::new();
//! let heuristic = LpRoundingSolver::new(Algorithm::LpHeuristic)
//!     .solve(&inst, &Routing::FreePath, &mut ctx)
//!     .unwrap();
//! let stretch = LpRoundingSolver::new(Algorithm::Stretch { samples: 4, seed: 7 })
//!     .solve(&inst, &Routing::FreePath, &mut ctx)
//!     .unwrap();
//!
//! // Outcomes are validated certificates: both respect the shared LP
//! // lower bound, and both report it identically (same cached LP).
//! let lb = heuristic.lower_bound.unwrap();
//! assert_eq!(stretch.lower_bound, Some(lb));
//! assert!(heuristic.cost >= lb - 1e-9);
//! assert!(stretch.cost >= lb - 1e-9);
//! assert_eq!(stretch.sweep.as_ref().unwrap().samples.len(), 4);
//! ```

use crate::derand::derandomize;
use crate::error::CoflowError;
use crate::flowtime::interval_batch_online_with;
use crate::horizon::{horizon, HorizonMode};
use crate::interval::{solve_interval, solve_interval_chained, IntervalChain, IntervalRelaxation};
use crate::model::CoflowInstance;
use crate::online::{online_heuristic_with, OnlineOptions};
use crate::routing::Routing;
use crate::schedule::Schedule;
use crate::solver::{Algorithm, Relaxation};
use crate::stretch::{lambda_sweep, stretch_schedule, LambdaSweep, StretchOptions};
use crate::timeidx::{solve_time_indexed, LpRelaxation, LpSize};
use crate::validate::{validate, Tolerance, ValidationReport};
use coflow_lp::SolverOptions;
use std::sync::Arc;

/// A coflow scheduling algorithm: anything that can turn an instance
/// plus a routing model into a feasible, validated schedule.
///
/// Implementations must *validate* the schedule they return (the
/// [`SolveOutcome::from_schedule`] helper does this); a `SolveOutcome`
/// is a certificate, not a claim. Algorithms that only support one
/// routing model (e.g. Terra is free-path only) return
/// [`CoflowError::BadRouting`] for the others.
pub trait CoflowSolver {
    /// Solves `inst` under `routing`, reusing (and populating) the
    /// cached per-instance work in `ctx`.
    ///
    /// # Errors
    ///
    /// Routing mismatches, LP failures, or validation failures of the
    /// produced schedule (the latter indicates an algorithm bug).
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError>;
}

/// Everything a comparison harness needs from one solve, for any
/// algorithm: the validated schedule and its cost, plus the LP side
/// (lower bound, model size) when the algorithm has one.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Weighted completion time `Σ w_j C_j` of the returned schedule.
    pub cost: f64,
    /// Unweighted total completion time (Terra comparisons).
    pub unweighted_cost: f64,
    /// The feasible schedule that achieved `cost`.
    pub schedule: Schedule,
    /// Full validation output (completions, utilization).
    pub validation: ValidationReport,
    /// LP optimum of the algorithm's own relaxation. For the
    /// time-indexed LP this is an exact lower bound on the optimal
    /// cost; geometric-interval relaxations can overshoot the optimum
    /// by their interval resolution (coarse ε plus release-boundary
    /// rounding), so anchor soundness checks on the time-indexed bound.
    /// `None` for LP-free algorithms.
    pub lower_bound: Option<f64>,
    /// Dimensions of the LP the algorithm solved, when it solved one.
    pub lp_size: Option<LpSize>,
    /// Simplex iterations, when an LP was solved.
    pub lp_iterations: Option<usize>,
    /// Horizon the algorithm worked with, when it needed one.
    pub horizon: Option<u32>,
    /// λ-sweep statistics, for sampled-Stretch solvers.
    pub sweep: Option<LambdaSweep>,
    /// Algorithm-specific scalar extras (`("resolves", 3.0)`, `("best_lambda", 0.7)`, …).
    pub aux: Vec<(&'static str, f64)>,
}

impl SolveOutcome {
    /// Validates `schedule` and wraps it into an outcome with the costs
    /// filled in and every optional field empty. Solvers layer their LP
    /// stats and extras on top.
    ///
    /// # Errors
    ///
    /// [`CoflowError::InvalidSchedule`] when validation fails.
    pub fn from_schedule(
        inst: &CoflowInstance,
        routing: &Routing,
        schedule: Schedule,
        tolerance: Tolerance,
    ) -> Result<SolveOutcome, CoflowError> {
        let validation = validate(inst, routing, &schedule, tolerance)?;
        // Deadline-miss accounting rides along whenever the instance
        // carries deadlines, for any solver (most ignore them when
        // scheduling; the metric still shows what that costs).
        let mut aux = Vec::new();
        let total = inst.coflows.iter().filter(|c| c.deadline.is_some()).count();
        if total > 0 {
            let missed = inst
                .coflows
                .iter()
                .zip(&validation.completions.per_coflow)
                .filter(|(cf, &c)| cf.deadline.is_some_and(|d| c > d))
                .count();
            aux.push(("deadline_total", total as f64));
            aux.push(("deadline_missed", missed as f64));
            aux.push(("deadline_miss_rate", missed as f64 / total as f64));
        }
        Ok(SolveOutcome {
            cost: validation.completions.weighted_total,
            unweighted_cost: validation.completions.unweighted_total,
            schedule,
            validation,
            lower_bound: None,
            lp_size: None,
            lp_iterations: None,
            horizon: None,
            sweep: None,
            aux,
        })
    }

    /// Looks up an algorithm-specific extra by key.
    pub fn aux(&self, key: &str) -> Option<f64> {
        self.aux.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// Per-instance cache shared by every solver run on the same
/// `(instance, routing)` pair: the horizon and each LP relaxation are
/// computed once and reused, so a figure point comparing five algorithms
/// pays for each relaxation once.
///
/// A context is only valid for **one** `(instance, routing)` pair —
/// create a fresh one per pair (cheap: all fields start empty). A debug
/// assertion catches accidental reuse across instances or routings
/// (path-based routings are identified by their path table; free-path
/// routings are interchangeable).
#[derive(Clone, Debug, Default)]
pub struct SolveContext {
    horizon_mode: HorizonMode,
    lp_opts: SolverOptions,
    tolerance: Tolerance,
    horizon: Option<u32>,
    time_indexed: Option<Arc<LpRelaxation>>,
    interval: Vec<(u64, Arc<IntervalRelaxation>)>,
    /// Warm-start state chained across interval solves at different ε
    /// (the basis cache of this `(relaxation family, routing)` pair): the
    /// first interval solve takes the ordinary presolved path, every
    /// later ε crashes from the previous optimal basis. Identical-ε
    /// re-solves never happen — the `interval` cache above returns the
    /// `Arc` — so this only fires when a shoot-out mixes ε values.
    interval_chain: Option<IntervalChain>,
    interval_solves: usize,
    // The LP half of each interval relaxation, shared so repeated
    // `relaxation()` calls at one ε clone the plan only once.
    interval_lp: Vec<(u64, Arc<LpRelaxation>)>,
    #[cfg(debug_assertions)]
    bound_to: Option<(usize, usize)>,
}

impl SolveContext {
    /// An empty context with default settings (greedy horizon with
    /// margin 1.25, default LP options and tolerance).
    pub fn new() -> SolveContext {
        SolveContext::default()
    }

    /// Selects how the horizon `T` is picked (shared by every solver
    /// using this context).
    pub fn with_horizon_mode(mut self, mode: HorizonMode) -> Self {
        self.horizon_mode = mode;
        self
    }

    /// Overrides LP solver options.
    pub fn with_lp_options(mut self, opts: SolverOptions) -> Self {
        self.lp_opts = opts;
        self
    }

    /// Overrides the validation tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The LP options solvers should use for any LP they build
    /// themselves (per-coflow CCT LPs, online re-solves, …).
    pub fn lp_options(&self) -> &SolverOptions {
        &self.lp_opts
    }

    /// The validation tolerance solvers should use.
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    #[cfg(debug_assertions)]
    fn check_binding(&mut self, inst: &CoflowInstance, routing: &Routing) {
        // Free-path routings carry no state and are interchangeable;
        // path-based routings are identified by their path tables.
        let r_key = match routing {
            Routing::FreePath => 1,
            Routing::SinglePath(paths) => paths.as_ptr() as usize,
            Routing::MultiPath(sets) => sets.as_ptr() as usize,
        };
        let key = (std::ptr::from_ref(inst) as usize, r_key);
        match self.bound_to {
            None => self.bound_to = Some(key),
            Some(k) => debug_assert!(
                k == key,
                "SolveContext reused across instances or routings — \
                 create one context per (instance, routing) pair"
            ),
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_binding(&mut self, _inst: &CoflowInstance, _routing: &Routing) {}

    /// The horizon `T` for this instance (cached).
    ///
    /// # Errors
    ///
    /// Propagates greedy-witness errors from horizon estimation.
    pub fn horizon(
        &mut self,
        inst: &CoflowInstance,
        routing: &Routing,
    ) -> Result<u32, CoflowError> {
        self.check_binding(inst, routing);
        if let Some(t) = self.horizon {
            return Ok(t);
        }
        let t = horizon(inst, routing, self.horizon_mode)?;
        self.horizon = Some(t);
        Ok(t)
    }

    /// The time-indexed LP relaxation (§3) of this instance (cached).
    ///
    /// # Errors
    ///
    /// Propagates horizon and LP errors.
    pub fn time_indexed(
        &mut self,
        inst: &CoflowInstance,
        routing: &Routing,
    ) -> Result<Arc<LpRelaxation>, CoflowError> {
        self.check_binding(inst, routing);
        if let Some(lp) = &self.time_indexed {
            return Ok(Arc::clone(lp));
        }
        let t = self.horizon(inst, routing)?;
        let lp = Arc::new(solve_time_indexed(inst, routing, t, &self.lp_opts)?);
        self.time_indexed = Some(Arc::clone(&lp));
        Ok(lp)
    }

    /// The geometric-interval LP relaxation (Appendix A) at `epsilon`
    /// (cached per ε).
    ///
    /// # Errors
    ///
    /// Propagates horizon and LP errors.
    pub fn interval(
        &mut self,
        inst: &CoflowInstance,
        routing: &Routing,
        epsilon: f64,
    ) -> Result<Arc<IntervalRelaxation>, CoflowError> {
        self.check_binding(inst, routing);
        let key = epsilon.to_bits();
        if let Some((_, iv)) = self.interval.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(iv));
        }
        let t = self.horizon(inst, routing)?;
        let iv = if self.interval_solves == 0 {
            // First interval LP of this context: the presolved cold path
            // (fastest when there is nothing to chain from).
            Arc::new(solve_interval(inst, routing, t, epsilon, &self.lp_opts)?)
        } else {
            // Later ε values crash from the previous optimal basis.
            let (rel, chain) = solve_interval_chained(
                inst,
                routing,
                t,
                epsilon,
                &self.lp_opts,
                self.interval_chain.as_ref(),
            )?;
            self.interval_chain = Some(chain);
            Arc::new(rel)
        };
        self.interval_solves += 1;
        self.interval.push((key, Arc::clone(&iv)));
        Ok(iv)
    }

    /// The LP relaxation selected by `relaxation`, through the cache.
    ///
    /// # Errors
    ///
    /// Propagates horizon and LP errors.
    pub fn relaxation(
        &mut self,
        inst: &CoflowInstance,
        routing: &Routing,
        relaxation: Relaxation,
    ) -> Result<Arc<LpRelaxation>, CoflowError> {
        match relaxation {
            Relaxation::TimeIndexed => self.time_indexed(inst, routing),
            Relaxation::Interval { epsilon } => {
                let key = epsilon.to_bits();
                if let Some((_, lp)) = self.interval_lp.iter().find(|(k, _)| *k == key) {
                    return Ok(Arc::clone(lp));
                }
                let lp = Arc::new(self.interval(inst, routing, epsilon)?.lp.clone());
                self.interval_lp.push((key, Arc::clone(&lp)));
                Ok(lp)
            }
        }
    }
}

/// The paper pipeline as a [`CoflowSolver`]: an LP relaxation
/// (time-indexed or geometric-interval) followed by a rounding (Stretch
/// with sampled λ, a fixed λ, or the λ=1 heuristic). Covers every
/// `Algorithm` × `Relaxation` combination of [`crate::solver`].
#[derive(Clone, Copy, Debug)]
pub struct LpRoundingSolver {
    /// Which relaxation to solve.
    pub relaxation: Relaxation,
    /// Which rounding to apply.
    pub rounding: Algorithm,
    /// Stretch options (idle-slot compaction).
    pub options: StretchOptions,
}

impl LpRoundingSolver {
    /// Time-indexed LP + the given rounding, default options.
    pub fn new(rounding: Algorithm) -> LpRoundingSolver {
        LpRoundingSolver {
            relaxation: Relaxation::TimeIndexed,
            rounding,
            options: StretchOptions::default(),
        }
    }

    /// Selects the relaxation.
    pub fn with_relaxation(mut self, relaxation: Relaxation) -> Self {
        self.relaxation = relaxation;
        self
    }
}

impl CoflowSolver for LpRoundingSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let lp = ctx.relaxation(inst, routing, self.relaxation)?;
        let (schedule, sweep) = match self.rounding {
            Algorithm::LpHeuristic => (stretch_schedule(inst, &lp.plan, 1.0, self.options), None),
            Algorithm::FixedLambda(lambda) => {
                (stretch_schedule(inst, &lp.plan, lambda, self.options), None)
            }
            Algorithm::Stretch { samples, seed } => {
                let sweep = lambda_sweep(inst, &lp.plan, samples, seed, self.options);
                // Return the best sample's schedule (re-round at its λ).
                let best = sweep.best().lambda;
                (
                    stretch_schedule(inst, &lp.plan, best, self.options),
                    Some(sweep),
                )
            }
        };
        let mut out = SolveOutcome::from_schedule(inst, routing, schedule, ctx.tolerance())?;
        out.lower_bound = Some(lp.objective);
        out.lp_size = Some(lp.size);
        out.lp_iterations = Some(lp.lp_iterations);
        out.horizon = Some(lp.horizon);
        out.sweep = sweep;
        Ok(out)
    }
}

/// Derandomized Stretch as a [`CoflowSolver`]: computes the exact best
/// stretch factor λ* over `(0, 1]` ([`crate::derand`]) and returns the
/// *pure* (uncompacted) stretched schedule at λ*. Extras carry the
/// derandomization statistics: `best_lambda`, `best_cost` (the exact
/// profile cost at λ*), `heuristic_cost`, `expected_cost`, and
/// `candidates`.
#[derive(Clone, Copy, Debug)]
pub struct DerandSolver {
    /// Which relaxation feeds the profiles.
    pub relaxation: Relaxation,
}

impl Default for DerandSolver {
    fn default() -> Self {
        DerandSolver {
            relaxation: Relaxation::TimeIndexed,
        }
    }
}

impl CoflowSolver for DerandSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let lp = ctx.relaxation(inst, routing, self.relaxation)?;
        let d = derandomize(inst, &lp.plan);
        // The derand optimum is over pure stretches — no compaction.
        let schedule = stretch_schedule(
            inst,
            &lp.plan,
            d.best_lambda,
            StretchOptions { compact: false },
        );
        let mut out = SolveOutcome::from_schedule(inst, routing, schedule, ctx.tolerance())?;
        out.lower_bound = Some(lp.objective);
        out.lp_size = Some(lp.size);
        out.lp_iterations = Some(lp.lp_iterations);
        out.horizon = Some(lp.horizon);
        out.aux.extend([
            ("best_lambda", d.best_lambda),
            ("best_cost", d.best_cost),
            ("heuristic_cost", d.heuristic_cost),
            ("expected_cost", d.expected_cost),
            ("candidates", d.candidates as f64),
        ]);
        Ok(out)
    }
}

/// The event-driven online re-solver ([`crate::online`]) as a
/// [`CoflowSolver`]: a persistent warm-started LP by default, all-slack
/// re-solves with `cold` (the `--cold` A/B escape hatch). Extras:
/// `resolves` — LP re-solves performed; `lp_iterations` — total simplex
/// iterations across them; `rebuilds` — horizon-growth rebuilds.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineSolver {
    /// Re-solve every epoch from the all-slack crash basis.
    pub cold: bool,
}

impl CoflowSolver for OnlineSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let opts = OnlineOptions {
            cold: self.cold,
            shadow_cold: false,
        };
        let run = online_heuristic_with(inst, routing, ctx.lp_options(), &opts)?;
        let mut out = SolveOutcome::from_schedule(inst, routing, run.schedule, ctx.tolerance())?;
        out.lp_iterations = Some(run.lp_iterations);
        out.aux.extend([
            ("resolves", run.resolves as f64),
            ("lp_iterations", run.lp_iterations as f64),
            ("rebuilds", run.rebuilds as f64),
        ]);
        Ok(out)
    }
}

/// The doubling-batch online framework ([`crate::flowtime`]) as a
/// [`CoflowSolver`]: each batch appends onto one persistent warm-started
/// LP (`cold` re-solves each batch from the all-slack basis). Extras:
/// `batches` — offline solves performed; `lp_iterations` — total
/// simplex iterations across them.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOnlineSolver {
    /// Re-solve every batch from the all-slack crash basis.
    pub cold: bool,
}

impl CoflowSolver for BatchOnlineSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let run = interval_batch_online_with(inst, routing, ctx.lp_options(), !self.cold)?;
        let mut out = SolveOutcome::from_schedule(inst, routing, run.schedule, ctx.tolerance())?;
        out.lp_iterations = Some(run.lp_iterations);
        out.aux.extend([
            ("batches", run.batches as f64),
            ("lp_iterations", run.lp_iterations as f64),
        ]);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use coflow_netgraph::topology;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn context_caches_the_time_indexed_relaxation() {
        let inst = fig2_instance();
        let mut ctx = SolveContext::new();
        let a = ctx.time_indexed(&inst, &Routing::FreePath).unwrap();
        let b = ctx.time_indexed(&inst, &Routing::FreePath).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
    }

    #[test]
    fn context_caches_interval_relaxations_per_epsilon() {
        let inst = fig2_instance();
        let mut ctx = SolveContext::new();
        let a = ctx.interval(&inst, &Routing::FreePath, 0.5).unwrap();
        let b = ctx.interval(&inst, &Routing::FreePath, 0.5).unwrap();
        let c = ctx.interval(&inst, &Routing::FreePath, 0.25).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c), "different ε is a different LP");
    }

    #[test]
    fn trait_solve_matches_the_legacy_scheduler() {
        use crate::solver::Scheduler;
        let inst = fig2_instance();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        let mut ctx = SolveContext::new();
        let out = LpRoundingSolver::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath, &mut ctx)
            .unwrap();
        assert_eq!(out.cost, report.cost);
        assert_eq!(out.lower_bound, Some(report.lower_bound));
        assert_eq!(out.horizon, Some(report.horizon));
    }

    #[test]
    fn outcomes_are_validated_and_bounded() {
        let inst = fig2_instance();
        let mut ctx = SolveContext::new();
        let solvers: Vec<Box<dyn CoflowSolver>> = vec![
            Box::new(LpRoundingSolver::new(Algorithm::LpHeuristic)),
            Box::new(LpRoundingSolver::new(Algorithm::Stretch {
                samples: 5,
                seed: 7,
            })),
            Box::new(DerandSolver::default()),
            Box::new(OnlineSolver::default()),
            Box::new(BatchOnlineSolver::default()),
        ];
        let lb = ctx
            .time_indexed(&inst, &Routing::FreePath)
            .unwrap()
            .objective;
        for s in solvers {
            let out = s.solve(&inst, &Routing::FreePath, &mut ctx).unwrap();
            assert!(out.cost >= lb - 1e-6, "cost {} below LP {lb}", out.cost);
            assert!(out.validation.peak_utilization <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn derand_extras_expose_the_exact_optimum() {
        let inst = fig2_instance();
        let mut ctx = SolveContext::new();
        let out = DerandSolver::default()
            .solve(&inst, &Routing::FreePath, &mut ctx)
            .unwrap();
        let best = out.aux("best_cost").unwrap();
        let lambda = out.aux("best_lambda").unwrap();
        assert!(lambda > 0.0 && lambda <= 1.0);
        // The materialized pure-stretch schedule realizes the profile cost.
        assert!((out.cost - best).abs() < 1e-6 * (1.0 + best));
    }
}
