//! Numerical-distress guard tests: non-finite solutions and exhausted
//! rescue ladders must surface as typed [`LpError::NumericalDistress`]
//! values — never panics — and healthy solves must not pay for the
//! guard (zero rescue counters).

use coflow_lp::{Cmp, DistressKind, LpError, Model, Sense, SolveStats, SolverOptions};

/// An LP whose optimal objective overflows f64: both variables sit at
/// their upper bound 2 with objective weight 1e308, so `Σ c_j x_j = ∞`.
/// Internal scaling keeps the *solve* finite; the guard must catch the
/// non-finite reported objective on the way out.
fn overflow_model() -> Model {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, 2.0, 1e308);
    let y = m.add_var("y", 0.0, 2.0, 1e308);
    m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
    m
}

#[test]
fn non_finite_objective_is_typed_distress() {
    let m = overflow_model();
    match m.solve() {
        Err(LpError::NumericalDistress { kind, .. }) => {
            assert_eq!(kind, DistressKind::NonFiniteObjective);
        }
        other => panic!("expected typed distress, got {other:?}"),
    }
}

#[test]
fn warm_path_surfaces_typed_distress() {
    let m = overflow_model();
    match m.solve_warm(None, &SolverOptions::default()) {
        Err(LpError::NumericalDistress { kind, .. }) => {
            assert_eq!(kind, DistressKind::NonFiniteObjective);
        }
        other => panic!("expected typed distress, got {:?}", other.map(|(s, _)| s)),
    }
}

#[test]
fn distress_display_carries_kind_label() {
    let e = LpError::NumericalDistress {
        kind: DistressKind::SingularBasis,
        detail: "refactorization found a zero pivot".into(),
    };
    let msg = e.to_string();
    assert!(msg.contains("singular-basis"), "got: {msg}");
    assert!(msg.contains("zero pivot"), "got: {msg}");
}

#[test]
fn healthy_solve_pays_nothing_for_the_guard() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, 10.0, 1.0);
    let y = m.add_var("y", 0.0, 10.0, 2.0);
    m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
    let sol = m.solve().expect("small LP solves");
    assert!((sol.objective - 3.0).abs() < 1e-9);
    assert_eq!(sol.stats.distress_retries, 0);
    assert_eq!(sol.stats.dense_fallbacks, 0);
}

#[test]
fn merge_accumulates_rescue_counters() {
    let mut a = SolveStats {
        distress_retries: 1,
        dense_fallbacks: 0,
        ..Default::default()
    };
    let b = SolveStats {
        distress_retries: 2,
        dense_fallbacks: 1,
        ..Default::default()
    };
    a.merge(&b);
    assert_eq!(a.distress_retries, 3);
    assert_eq!(a.dense_fallbacks, 1);
}
