//! Property-based tests (proptest) for the LP solver.

use coflow_lp::{Cmp, Model, Sense};
use proptest::prelude::*;

/// Strategy: a bounded-feasible LP built around a known interior point.
/// Returns (model, witness point).
fn bounded_feasible_lp() -> impl Strategy<Value = (Model, Vec<f64>)> {
    let dims = (1usize..6, 0usize..6);
    dims.prop_flat_map(|(nvars, nrows)| {
        let var_strat = proptest::collection::vec(
            (
                -5.0f64..5.0, // lb
                0.1f64..6.0,  // span
                -3.0f64..3.0, // obj
                0.0f64..1.0,  // witness position within [lb, ub]
            ),
            nvars,
        );
        let row_strat = proptest::collection::vec(
            (
                proptest::collection::vec((-2.0f64..2.0, 0usize..nvars), 1..4),
                0u8..3,      // cmp selector
                0.0f64..2.0, // slack margin
            ),
            nrows,
        );
        (var_strat, row_strat).prop_map(|(vars, rows)| {
            let mut m = Model::new(Sense::Minimize);
            let mut ids = Vec::new();
            let mut x0 = Vec::new();
            for (lb, span, obj, pos) in &vars {
                let ub = lb + span;
                ids.push(m.add_var("v", *lb, ub, *obj));
                x0.push(lb + pos * span);
            }
            for (terms, cmp, margin) in &rows {
                let mut lhs = 0.0;
                let t: Vec<_> = terms
                    .iter()
                    .map(|&(a, j)| {
                        lhs += a * x0[j];
                        (ids[j], a)
                    })
                    .collect();
                match cmp % 3 {
                    0 => m.add_constraint(t, Cmp::Le, lhs + margin),
                    1 => m.add_constraint(t, Cmp::Ge, lhs - margin),
                    _ => m.add_constraint(t, Cmp::Eq, lhs),
                };
            }
            (m, x0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bounded feasible LPs must solve; the solution must be feasible and
    /// at least as good as the construction witness.
    #[test]
    fn solves_feasible_bounded_lps((model, x0) in bounded_feasible_lp()) {
        let sol = model.solve().expect("bounded feasible LP must solve");
        prop_assert!(model.max_violation(&sol.x) < 1e-6,
            "violation {}", model.max_violation(&sol.x));
        let obj0 = model.objective_at(&x0);
        prop_assert!(sol.objective <= obj0 + 1e-6 * (1.0 + obj0.abs()),
            "solver {} worse than witness {}", sol.objective, obj0);
    }

    /// The sparse solver agrees with the dense oracle wherever both
    /// return an optimum.
    #[test]
    fn agrees_with_dense_oracle((model, _x0) in bounded_feasible_lp()) {
        let a = model.solve().expect("solvable");
        let b = coflow_lp::dense::solve(&model).expect("oracle solvable");
        let scale = 1.0 + a.objective.abs().max(b.objective.abs());
        prop_assert!((a.objective - b.objective).abs() / scale < 1e-6,
            "sparse {} oracle {}", a.objective, b.objective);
    }

    /// Scaling a model's objective by a positive constant scales the
    /// optimum by the same constant (sanity on cost handling).
    #[test]
    fn objective_scaling_is_linear((model, _x0) in bounded_feasible_lp(), k in 0.1f64..10.0) {
        let base = model.solve().expect("solvable").objective;
        let mut scaled = Model::new(Sense::Minimize);
        for j in 0..model.num_vars() {
            let v = coflow_lp::VarId::from_index(j);
            let (lb, ub) = model.var_bounds(v);
            scaled.add_var("v", lb, ub, k * model.var_obj(v));
        }
        // Rebuild rows verbatim.
        for c in model.constraints_iter() {
            let terms: Vec<_> = c.terms().collect();
            scaled.add_constraint(terms, c.cmp(), c.rhs());
        }
        let s = scaled.solve().expect("solvable").objective;
        prop_assert!((s - k * base).abs() < 1e-5 * (1.0 + s.abs()),
            "scaled {} base {}", s, base);
    }
}
