//! Differential and property tests for the revised simplex solver.
//!
//! Strategy: generate random LPs that are feasible *by construction*
//! (pick an interior point first, then set right-hand sides around it),
//! solve with both the sparse revised simplex and the dense tableau
//! oracle, and require matching objectives. Separately, check optimality
//! against random feasible points and agreement across solver options.

#![allow(clippy::needless_range_loop)] // parallel-array test fixtures

use coflow_lp::{dense, Cmp, LpEngine, LpError, Model, Sense, SolverOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random feasible LP together with the feasible point used to
/// construct it. With `finite_bounds` the LP is also bounded, so a solve
/// must succeed.
fn random_feasible_lp_with(
    rng: &mut StdRng,
    nvars: usize,
    nrows: usize,
    finite_bounds: bool,
) -> (Model, Vec<f64>) {
    let sense = if rng.gen_bool(0.5) {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut x0 = Vec::with_capacity(nvars);
    let mut vars = Vec::with_capacity(nvars);
    for j in 0..nvars {
        // Mix of bound shapes.
        let shape = if finite_bounds {
            rng.gen_range(1..3)
        } else {
            rng.gen_range(0..5)
        };
        let (lb, ub) = match shape {
            0 => (0.0, f64::INFINITY),
            1 => (0.0, rng.gen_range(0.5..5.0)),
            2 => (rng.gen_range(-5.0..-0.5), rng.gen_range(0.5..5.0)),
            3 => (f64::NEG_INFINITY, rng.gen_range(0.0..4.0)),
            _ => {
                let lb = rng.gen_range(-3.0..3.0);
                (lb, lb + rng.gen_range(0.0..4.0))
            }
        };
        let obj = rng.gen_range(-3.0..3.0);
        vars.push(m.add_var(format!("x{j}"), lb, ub, obj));
        // A point within bounds.
        let lo = if lb.is_finite() {
            lb
        } else {
            ub.min(0.0) - 2.0
        };
        let hi = if ub.is_finite() {
            ub
        } else {
            lb.max(0.0) + 2.0
        };
        x0.push(if lo < hi { rng.gen_range(lo..hi) } else { lo });
    }
    for _ in 0..nrows {
        let nnz = rng.gen_range(1..=nvars.min(4));
        let mut terms = Vec::with_capacity(nnz);
        let mut lhs = 0.0;
        for _ in 0..nnz {
            let j = rng.gen_range(0..nvars);
            let a = rng.gen_range(-2.0..2.0);
            if a == 0.0 {
                continue;
            }
            terms.push((vars[j], a));
            lhs += a * x0[j];
        }
        if terms.is_empty() {
            continue;
        }
        // Right-hand side keeps x0 feasible; equalities pass exactly
        // through x0 so the LP always has a feasible point.
        match rng.gen_range(0..3) {
            0 => {
                m.add_constraint(terms, Cmp::Le, lhs + rng.gen_range(0.0..2.0));
            }
            1 => {
                m.add_constraint(terms, Cmp::Ge, lhs - rng.gen_range(0.0..2.0));
            }
            _ => {
                m.add_constraint(terms, Cmp::Eq, lhs);
            }
        }
    }
    (m, x0)
}

fn random_feasible_lp(rng: &mut StdRng, nvars: usize, nrows: usize) -> (Model, Vec<f64>) {
    random_feasible_lp_with(rng, nvars, nrows, false)
}

#[test]
fn sparse_matches_dense_oracle_on_random_lps() {
    let mut rng = StdRng::seed_from_u64(20_190_622); // SPAA'19 dates
    let mut optimal = 0;
    for trial in 0..400 {
        let nvars = rng.gen_range(1..8);
        let nrows = rng.gen_range(1..8);
        let (model, _x0) = random_feasible_lp(&mut rng, nvars, nrows);
        let sparse = model.solve();
        let oracle = dense::solve(&model);
        match (sparse, oracle) {
            (Ok(s), Ok(o)) => {
                optimal += 1;
                let scale = 1.0 + s.objective.abs().max(o.objective.abs());
                assert!(
                    (s.objective - o.objective).abs() / scale < 1e-6,
                    "trial {trial}: sparse {} vs oracle {}",
                    s.objective,
                    o.objective
                );
                assert!(
                    model.max_violation(&s.x) < 1e-6,
                    "trial {trial}: infeasible sparse solution"
                );
            }
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            (s, o) => panic!("trial {trial}: status mismatch sparse={s:?} oracle={o:?}"),
        }
    }
    // The generator produces mostly bounded LPs; make sure the test has
    // teeth and is not vacuously passing on disagreement-free errors.
    assert!(optimal > 200, "only {optimal} optimal instances");
}

#[test]
fn options_do_not_change_the_answer() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..100 {
        let (model, _) = random_feasible_lp(&mut rng, 6, 6);
        let variants = [
            SolverOptions::default(),
            SolverOptions {
                presolve: false,
                ..Default::default()
            },
            SolverOptions {
                scale: false,
                ..Default::default()
            },
            SolverOptions {
                presolve: false,
                scale: false,
                refactor_interval: 1,
                ..Default::default()
            },
        ];
        let results: Vec<_> = variants.iter().map(|o| model.solve_with(o)).collect();
        let first = &results[0];
        for (vi, r) in results.iter().enumerate() {
            match (first, r) {
                (Ok(a), Ok(b)) => {
                    let scale = 1.0 + a.objective.abs();
                    assert!(
                        (a.objective - b.objective).abs() / scale < 1e-6,
                        "trial {trial} variant {vi}: {} vs {}",
                        a.objective,
                        b.objective
                    );
                }
                (Err(ea), Err(eb)) => assert_eq!(
                    std::mem::discriminant(ea),
                    std::mem::discriminant(eb),
                    "trial {trial} variant {vi}"
                ),
                other => panic!("trial {trial} variant {vi}: {other:?}"),
            }
        }
    }
}

#[test]
fn optimum_beats_random_feasible_points() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..200 {
        let (model, x0) = random_feasible_lp(&mut rng, 5, 5);
        let Ok(sol) = model.solve() else {
            continue; // unbounded instances have nothing to check
        };
        // x0 is feasible by construction; the solver's objective must be
        // at least as good.
        assert!(model.max_violation(&x0) < 1e-9, "trial {trial}");
        let obj0 = model.objective_at(&x0);
        let better = match model.sense() {
            Sense::Minimize => sol.objective <= obj0 + 1e-6 * (1.0 + obj0.abs()),
            Sense::Maximize => sol.objective >= obj0 - 1e-6 * (1.0 + obj0.abs()),
        };
        assert!(
            better,
            "trial {trial}: solver {} worse than known point {}",
            sol.objective, obj0
        );
    }
}

#[test]
fn medium_sparse_lp_solves_and_is_feasible() {
    // A larger random-but-feasible LP to exercise refactorization, eta
    // updates, and Devex on something beyond toy size. Finite bounds on
    // every variable keep it bounded as well as feasible.
    let mut rng = StdRng::seed_from_u64(1234);
    let (model, x0) = random_feasible_lp_with(&mut rng, 300, 220, true);
    let sol = model.solve().expect("feasible by construction");
    assert!(model.max_violation(&sol.x) < 1e-5);
    let obj0 = model.objective_at(&x0);
    match model.sense() {
        Sense::Minimize => assert!(sol.objective <= obj0 + 1e-5 * (1.0 + obj0.abs())),
        Sense::Maximize => assert!(sol.objective >= obj0 - 1e-5 * (1.0 + obj0.abs())),
    }
}

#[test]
fn transportation_problem_known_optimum() {
    // Classic balanced transportation instance; optimum known by
    // inspection/solver: supplies [20, 30], demands [10, 25, 15], costs
    // [[8,6,10],[9,12,13]]. Optimal cost = 10*6 + ... compute: ship from
    // s0: 20 units to cheapest lanes (6 -> d1 x20); s1: d0 x10 (9), d1 x5
    // (12), d2 x15 (13) -> 120 + 90 + 60 + 195 = 465.
    let mut m = Model::new(Sense::Minimize);
    let costs = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
    let supplies = [20.0, 30.0];
    let demands = [10.0, 25.0, 15.0];
    let mut x = [[None; 3]; 2];
    for i in 0..2 {
        for j in 0..3 {
            x[i][j] = Some(m.add_nonneg(format!("x{i}{j}"), costs[i][j]));
        }
    }
    for i in 0..2 {
        m.add_constraint(
            (0..3).map(|j| (x[i][j].unwrap(), 1.0)),
            Cmp::Eq,
            supplies[i],
        );
    }
    for j in 0..3 {
        m.add_constraint((0..2).map(|i| (x[i][j].unwrap(), 1.0)), Cmp::Eq, demands[j]);
    }
    let s = m.solve().unwrap();
    assert!(
        (s.objective - 465.0).abs() < 1e-6,
        "objective {}",
        s.objective
    );
}

#[test]
fn lp_with_wide_magnitude_range_needs_scaling() {
    // Coefficients spanning 1e-4..1e5, still must solve correctly.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 1e4);
    let y = m.add_nonneg("y", 1.0);
    m.add_constraint([(x, 1e5), (y, 1e-4)], Cmp::Ge, 10.0);
    m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1e5);
    let s = m.solve().unwrap();
    assert!(m.max_violation(&s.x) < 1e-6);
    // Cheapest: satisfy row 1 with x = 1e-4 (cost 1.0) vs y = 1e5 (cost
    // 1e5). So x = 1e-4, objective 1.0.
    assert!(
        (s.objective - 1.0).abs() < 1e-4,
        "objective {}",
        s.objective
    );
}

#[test]
fn degenerate_assignment_polytope() {
    // Assignment LP (Birkhoff polytope) is highly degenerate; 6x6.
    let n = 6;
    let mut rng = StdRng::seed_from_u64(5);
    let mut m = Model::new(Sense::Minimize);
    let mut cost = vec![vec![0.0; n]; n];
    let mut v = vec![vec![None; n]; n];
    for i in 0..n {
        for j in 0..n {
            cost[i][j] = rng.gen_range(0.0..10.0);
            v[i][j] = Some(m.add_var(format!("a{i}{j}"), 0.0, 1.0, cost[i][j]));
        }
    }
    for i in 0..n {
        m.add_constraint((0..n).map(|j| (v[i][j].unwrap(), 1.0)), Cmp::Eq, 1.0);
        m.add_constraint((0..n).map(|j| (v[j][i].unwrap(), 1.0)), Cmp::Eq, 1.0);
    }
    let s = m.solve().unwrap();
    // Compare against brute-force best permutation (LP optimum of the
    // assignment polytope is integral).
    let mut best = f64::INFINITY;
    let mut perm: Vec<usize> = (0..n).collect();
    // Heap's algorithm, 720 permutations.
    fn heaps(k: usize, perm: &mut Vec<usize>, cost: &[Vec<f64>], best: &mut f64) {
        if k == 1 {
            let c: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if c < *best {
                *best = c;
            }
            return;
        }
        for i in 0..k {
            heaps(k - 1, perm, cost, best);
            if k.is_multiple_of(2) {
                perm.swap(i, k - 1);
            } else {
                perm.swap(0, k - 1);
            }
        }
    }
    heaps(n, &mut perm, &cost, &mut best);
    assert!(
        (s.objective - best).abs() < 1e-6,
        "LP {} vs exact {best}",
        s.objective
    );
}

#[test]
fn beale_cycling_example_terminates() {
    // Beale (1955): the classic LP on which Dantzig's rule cycles under
    // naive tie-breaking. Any anti-cycling safeguard must reach the
    // optimum 0.05 at (x1..x4) = (1/25, 0, 1, 0).
    //   min -0.75x1 + 150x2 - 0.02x3 + 6x4
    //   s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
    //        0.50x1 - 90x2 - 0.02x3 + 3x4 <= 0
    //        x3 <= 1,   x >= 0
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_nonneg("x1", -0.75);
    let x2 = m.add_nonneg("x2", 150.0);
    let x3 = m.add_nonneg("x3", -0.02);
    let x4 = m.add_nonneg("x4", 6.0);
    m.add_constraint(
        [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint(
        [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint([(x3, 1.0)], Cmp::Le, 1.0);
    for pricing in [
        coflow_lp::Pricing::Devex,
        coflow_lp::Pricing::Dantzig,
        coflow_lp::Pricing::SteepestEdge,
    ] {
        let opts = SolverOptions {
            pricing,
            presolve: false,
            scale: false,
            ..Default::default()
        };
        let s = m.solve_with(&opts).expect("must terminate");
        assert!(
            (s.objective + 0.05).abs() < 1e-9,
            "{pricing:?}: objective {}",
            s.objective
        );
    }
}

#[test]
fn partial_pricing_matches_full_pricing() {
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..60 {
        let (model, _) = random_feasible_lp(&mut rng, 8, 8);
        let full = model.solve_with(&SolverOptions {
            partial_pricing_block: 0,
            ..Default::default()
        });
        let partial = model.solve_with(&SolverOptions {
            partial_pricing_block: 3,
            ..Default::default()
        });
        match (full, partial) {
            (Ok(a), Ok(b)) => {
                let scale = 1.0 + a.objective.abs();
                assert!(
                    (a.objective - b.objective).abs() / scale < 1e-6,
                    "trial {trial}: full {} vs partial {}",
                    a.objective,
                    b.objective
                );
            }
            (Err(ea), Err(eb)) => {
                assert_eq!(std::mem::discriminant(&ea), std::mem::discriminant(&eb))
            }
            other => panic!("trial {trial}: {other:?}"),
        }
    }
}

#[test]
fn engines_agree_on_presolved_random_lps() {
    // Full-pipeline equivalence through the public engine knob: the
    // sparse revised simplex with presolve and scaling on vs the dense
    // tableau selected via `LpEngine::Dense`. Both land on a vertex
    // optimum of the same polytope, so objectives must agree to 1e-9
    // relative — an order of magnitude tighter than the generic oracle
    // test above.
    let mut rng = StdRng::seed_from_u64(20_190_624);
    let sparse_opts = SolverOptions::default();
    let dense_opts = SolverOptions {
        engine: LpEngine::Dense,
        ..Default::default()
    };
    let mut optimal = 0;
    for trial in 0..200 {
        let nvars = rng.gen_range(2..10);
        let nrows = rng.gen_range(1..10);
        let (model, _x0) = random_feasible_lp(&mut rng, nvars, nrows);
        match (
            model.solve_with(&sparse_opts),
            model.solve_with(&dense_opts),
        ) {
            (Ok(s), Ok(d)) => {
                optimal += 1;
                let scale = 1.0 + s.objective.abs().max(d.objective.abs());
                assert!(
                    (s.objective - d.objective).abs() / scale < 1e-9,
                    "trial {trial}: sparse {} vs dense {}",
                    s.objective,
                    d.objective
                );
                assert!(
                    model.max_violation(&s.x) < 1e-7,
                    "trial {trial}: infeasible sparse solution"
                );
                assert!(
                    model.max_violation(&d.x) < 1e-7,
                    "trial {trial}: infeasible dense solution"
                );
            }
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            (s, d) => panic!("trial {trial}: status mismatch sparse={s:?} dense={d:?}"),
        }
    }
    assert!(optimal > 100, "only {optimal} optimal instances");
}

#[test]
fn warm_epochs_match_dense_oracle() {
    // The resolver's epoch loop at the LP layer: grow a feasible LP over
    // several epochs — append bounded columns stitched into existing
    // rows, append rows cutting near the current optimum — re-solving
    // warm from the previous basis each time, exactly like
    // `TimeIndexedResolver` does at every arrival. After every epoch the
    // warm objective must match the dense tableau solving the mutated
    // model from scratch, to 1e-9.
    let mut rng = StdRng::seed_from_u64(190_617);
    let opts = SolverOptions::default();
    for trial in 0..40 {
        let nvars = rng.gen_range(3..7);
        let nrows = rng.gen_range(2..6);
        let (mut model, mut x0) = random_feasible_lp_with(&mut rng, nvars, nrows, true);
        let Ok((_, mut basis)) = model.solve_warm(None, &opts) else {
            continue; // bounded by construction, but stay defensive
        };
        for epoch in 0..4 {
            // Append a boxed column, nonbasic at lower bound zero, wired
            // into up to two existing rows (the resolver's column shape).
            let nv = model.num_vars();
            let v = model.add_var(
                format!("e{epoch}v{nv}"),
                0.0,
                rng.gen_range(0.5..3.0),
                rng.gen_range(-2.0..2.0),
            );
            x0.push(0.0);
            for _ in 0..rng.gen_range(1..=2usize) {
                let c =
                    coflow_lp::ConstraintId::from_index(rng.gen_range(0..model.num_constraints()));
                model.add_term(c, v, rng.gen_range(-2.0..2.0));
            }
            // Append a ≤ row that keeps the construction point feasible
            // but cuts close to it, so the dual step has real work.
            let nnz = rng.gen_range(1..=3usize);
            let mut terms = Vec::with_capacity(nnz);
            let mut lhs = 0.0;
            for _ in 0..nnz {
                let j = rng.gen_range(0..model.num_vars());
                let a = rng.gen_range(-2.0..2.0);
                terms.push((coflow_lp::VarId::from_index(j), a));
                lhs += a * x0[j];
            }
            model.add_constraint(terms, Cmp::Le, lhs + rng.gen_range(0.1..1.0));

            let (warm, next) = model
                .solve_warm(Some(&basis), &opts)
                .unwrap_or_else(|e| panic!("trial {trial} epoch {epoch}: warm failed: {e}"));
            let cold = dense::solve(&model)
                .unwrap_or_else(|e| panic!("trial {trial} epoch {epoch}: dense failed: {e}"));
            let scale = 1.0 + warm.objective.abs().max(cold.objective.abs());
            assert!(
                (warm.objective - cold.objective).abs() / scale < 1e-9,
                "trial {trial} epoch {epoch}: warm {} vs dense {}",
                warm.objective,
                cold.objective
            );
            assert!(
                model.max_violation(&warm.x) < 1e-7,
                "trial {trial} epoch {epoch}: warm solution infeasible"
            );
            basis = next;
        }
    }
}

#[test]
fn ft_eta_and_full_refactor_epoch_chains_agree() {
    // The same epoch chains as `warm_epochs_match_dense_oracle`, run
    // three ways in lock-step: Forrest–Tomlin updates (the default), the
    // eta-file oracle, and refactorize-every-pivot (`refactor_interval:
    // 1`, the no-update-file ground truth). All three must match the
    // dense tableau to 1e-9 at every epoch and hand back structurally
    // valid bases (exactly one basic variable per row).
    let variants = [
        SolverOptions {
            basis_update: coflow_lp::BasisUpdate::ForrestTomlin,
            ..Default::default()
        },
        SolverOptions {
            basis_update: coflow_lp::BasisUpdate::Eta,
            ..Default::default()
        },
        SolverOptions {
            refactor_interval: 1,
            ..Default::default()
        },
    ];
    let mut rng = StdRng::seed_from_u64(190_617);
    for trial in 0..40 {
        let nvars = rng.gen_range(3..7);
        let nrows = rng.gen_range(2..6);
        let (mut model, mut x0) = random_feasible_lp_with(&mut rng, nvars, nrows, true);
        let mut bases: Vec<_> = Vec::new();
        for opts in &variants {
            let Ok((_, b)) = model.solve_warm(None, opts) else {
                panic!("trial {trial}: bounded LP failed to solve");
            };
            bases.push(b);
        }
        for epoch in 0..4 {
            // Same mutation shape as the resolver's arrival epochs.
            let nv = model.num_vars();
            let v = model.add_var(
                format!("e{epoch}v{nv}"),
                0.0,
                rng.gen_range(0.5..3.0),
                rng.gen_range(-2.0..2.0),
            );
            x0.push(0.0);
            for _ in 0..rng.gen_range(1..=2usize) {
                let c =
                    coflow_lp::ConstraintId::from_index(rng.gen_range(0..model.num_constraints()));
                model.add_term(c, v, rng.gen_range(-2.0..2.0));
            }
            let nnz = rng.gen_range(1..=3usize);
            let mut terms = Vec::with_capacity(nnz);
            let mut lhs = 0.0;
            for _ in 0..nnz {
                let j = rng.gen_range(0..model.num_vars());
                let a = rng.gen_range(-2.0..2.0);
                terms.push((coflow_lp::VarId::from_index(j), a));
                lhs += a * x0[j];
            }
            model.add_constraint(terms, Cmp::Le, lhs + rng.gen_range(0.1..1.0));

            let oracle = dense::solve(&model)
                .unwrap_or_else(|e| panic!("trial {trial} epoch {epoch}: dense failed: {e}"));
            for (k, opts) in variants.iter().enumerate() {
                bases[k].grow(model.num_vars(), model.num_constraints());
                let (sol, next) = model.solve_warm(Some(&bases[k]), opts).unwrap_or_else(|e| {
                    panic!("trial {trial} epoch {epoch} variant {k}: warm failed: {e}")
                });
                let scale = 1.0 + sol.objective.abs().max(oracle.objective.abs());
                assert!(
                    (sol.objective - oracle.objective).abs() / scale < 1e-9,
                    "trial {trial} epoch {epoch} variant {k}: {} vs dense {}",
                    sol.objective,
                    oracle.objective
                );
                assert!(
                    model.max_violation(&sol.x) < 1e-7,
                    "trial {trial} epoch {epoch} variant {k}: infeasible solution"
                );
                // Structural basis validation: the bounded-variable
                // simplex keeps exactly one basic variable per row.
                assert_eq!(
                    next.num_basic(),
                    model.num_constraints(),
                    "trial {trial} epoch {epoch} variant {k}: invalid basis"
                );
                bases[k] = next;
            }
        }
    }
}

#[test]
fn slot_block_detection_fires_exactly_on_the_block_signature() {
    // Property: `detect_slot_blocks` fires iff the model carries the
    // per-slot capacity signature — every `≤` row all-positive with a
    // positive rhs over lb=0 variables, splitting into ≥ 2 variable-
    // disjoint components. Random LPs here have signed coefficients and
    // mixed bound shapes, so the reference predicate (recomputed
    // independently below) almost always says no — and the pass must
    // agree exactly, never firing on non-time-indexed structure. When it
    // does fire, the crash point must respect every capacity row.
    fn signature(m: &Model) -> bool {
        let le_rows: Vec<Vec<(usize, f64)>> = m
            .constraints_iter()
            .filter(|c| c.cmp() == Cmp::Le)
            .map(|c| {
                if c.rhs() <= 0.0 {
                    vec![]
                } else {
                    c.terms().map(|(v, a)| (v.index(), a)).collect()
                }
            })
            .collect();
        if le_rows.len() < 2 || le_rows.iter().any(Vec::is_empty) {
            return false;
        }
        for row in &le_rows {
            for &(v, a) in row {
                if a <= 0.0 || m.var_bounds(coflow_lp::VarId::from_index(v)).0 != 0.0 {
                    return false;
                }
            }
        }
        // Count connected components by repeated merging (O(r²) is fine
        // at test sizes) — deliberately a different algorithm from the
        // union-find inside the pass.
        let mut comps: Vec<std::collections::BTreeSet<usize>> = le_rows
            .iter()
            .map(|r| r.iter().map(|&(v, _)| v).collect())
            .collect();
        let mut merged = true;
        while merged {
            merged = false;
            'outer: for i in 0..comps.len() {
                for j in i + 1..comps.len() {
                    if !comps[i].is_disjoint(&comps[j]) {
                        let other = comps.remove(j);
                        comps[i].extend(other);
                        merged = true;
                        break 'outer;
                    }
                }
            }
        }
        comps.len() >= 2
    }

    let mut rng = StdRng::seed_from_u64(20_190_625);
    let mut fired = 0;
    for trial in 0..300 {
        let nvars = rng.gen_range(1..8);
        let nrows = rng.gen_range(1..8);
        let (model, _x0) = random_feasible_lp(&mut rng, nvars, nrows);
        let detected = coflow_lp::detect_slot_blocks(&model);
        assert_eq!(
            detected.is_some(),
            signature(&model),
            "trial {trial}: detection disagrees with the signature predicate"
        );
        if detected.is_some() {
            fired += 1;
            let x = coflow_lp::slot_block_crash(&model).expect("crash follows detection");
            for c in model.constraints_iter() {
                if c.cmp() == Cmp::Le {
                    let act: f64 = c.terms().map(|(v, a)| a * x[v.index()]).sum();
                    assert!(act <= c.rhs() + 1e-9, "trial {trial}: crash violates a row");
                }
            }
        }
    }
    // The generator produces signed general LPs: firing must stay the
    // rare exception, not the rule.
    assert!(
        fired < 30,
        "slot-block pass fired on {fired}/300 random LPs"
    );
}

#[test]
fn kuhn_degenerate_lp() {
    // A strongly degenerate LP (multiple zero-RHS rows through the
    // origin); checks the Bland fallback path engages and terminates.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", -2.0);
    let y = m.add_nonneg("y", -3.0);
    let z = m.add_nonneg("z", 1.0);
    m.add_constraint([(x, 1.0), (y, -1.0), (z, 1.0)], Cmp::Le, 0.0);
    m.add_constraint([(x, -1.0), (y, 1.0), (z, 1.0)], Cmp::Le, 0.0);
    m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
    let s = m.solve().expect("terminates");
    // Optimum: x = y = 2 (z = 0): objective -10.
    assert!(
        (s.objective + 10.0).abs() < 1e-7,
        "objective {}",
        s.objective
    );
}
