//! Tests for row duals (shadow prices): textbook values, complementary
//! slackness, sign conventions, and the predictive property
//! `Δobjective ≈ y·Δrhs` checked against actual re-solves.

use coflow_lp::{Cmp, Model, Sense, SolverOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn no_presolve() -> SolverOptions {
    SolverOptions {
        presolve: false,
        ..Default::default()
    }
}

#[test]
fn dantzig_example_duals_are_textbook() {
    // max 3x + 5y st x ≤ 4 (y₁), 2y ≤ 12 (y₂), 3x + 2y ≤ 18 (y₃).
    // Known optimal duals: y₁ = 0, y₂ = 3/2, y₃ = 1.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 3.0);
    let y = m.add_nonneg("y", 5.0);
    let c1 = m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
    let c2 = m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
    let c3 = m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let s = m.solve_with(&no_presolve()).unwrap();
    let duals = s.duals.as_ref().expect("presolve off → duals available");
    assert_eq!(duals.len(), 3);
    assert!(
        (s.dual(c1).unwrap() - 0.0).abs() < 1e-7,
        "y1 = {:?}",
        s.dual(c1)
    );
    assert!(
        (s.dual(c2).unwrap() - 1.5).abs() < 1e-7,
        "y2 = {:?}",
        s.dual(c2)
    );
    assert!(
        (s.dual(c3).unwrap() - 1.0).abs() < 1e-7,
        "y3 = {:?}",
        s.dual(c3)
    );
    // Strong duality (all variables at lower bound 0 contribute nothing):
    // yᵀb = objective.
    let ytb = 0.0 * 4.0 + 1.5 * 12.0 + 1.0 * 18.0;
    assert!((ytb - s.objective).abs() < 1e-7);
}

#[test]
fn duals_from_warm_solves_match_plain_solves() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..40 {
        let mut m = Model::new(Sense::Minimize);
        let n = rng.gen_range(2..6);
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_var(format!("x{j}"), 0.0, 5.0, rng.gen_range(0.1..3.0)))
            .collect();
        for _ in 0..rng.gen_range(1..5) {
            let terms: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.1..2.0))).collect();
            // Keep the row satisfiable: an independent rhs draw can exceed
            // the best achievable lhs (e.g. two 0.1 coefficients cap the
            // lhs at 1.0 with x ≤ 5), making the whole LP infeasible. Draw
            // the rhs as a fraction of the lhs at the upper bounds so
            // x = ub is always a witness.
            let max_lhs: f64 = terms.iter().map(|&(_, a)| a * 5.0).sum();
            m.add_constraint(terms, Cmp::Ge, max_lhs * rng.gen_range(0.05..0.8));
        }
        let plain = m.solve_with(&no_presolve()).unwrap();
        let (warm, _) = m.solve_warm(None, &SolverOptions::default()).unwrap();
        let (dp, dw) = (plain.duals.unwrap(), warm.duals.unwrap());
        // Degenerate LPs can have several optimal dual vectors, but
        // yᵀb must agree by strong duality.
        let ytb = |d: &[f64]| -> f64 {
            d.iter()
                .zip(m.constraints_iter())
                .map(|(y, c)| y * c.rhs())
                .sum()
        };
        assert!(
            (ytb(&dp) - ytb(&dw)).abs() < 1e-6 * (1.0 + plain.objective.abs()),
            "dual objectives differ: {} vs {}",
            ytb(&dp),
            ytb(&dw)
        );
    }
}

#[test]
fn complementary_slackness_on_random_lps() {
    let mut rng = StdRng::seed_from_u64(55);
    for trial in 0..60 {
        let mut m = Model::new(Sense::Minimize);
        let n = rng.gen_range(2..6);
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_var(format!("x{j}"), 0.0, 4.0, rng.gen_range(-1.0..3.0)))
            .collect();
        let mut rows = Vec::new();
        for _ in 0..rng.gen_range(1..5) {
            let mut terms = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.7) {
                    terms.push((v, rng.gen_range(0.2..2.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            rows.push(m.add_constraint(terms, Cmp::Le, rng.gen_range(1.0..6.0)));
        }
        let Ok(s) = m.solve_with(&no_presolve()) else {
            continue;
        };
        let duals = s.duals.as_ref().unwrap();
        for (i, c) in m.constraints_iter().enumerate() {
            let lhs: f64 = c.terms().map(|(v, a)| a * s.value(v)).sum();
            let slack = c.rhs() - lhs;
            // Le row in a minimize problem: dual ≤ 0; slack > 0 ⇒ dual = 0.
            assert!(
                duals[i] <= 1e-7,
                "trial {trial} row {i}: Le dual {} > 0 in minimize",
                duals[i]
            );
            if slack > 1e-5 {
                assert!(
                    duals[i].abs() < 1e-6,
                    "trial {trial} row {i}: slack {slack} but dual {}",
                    duals[i]
                );
            }
        }
        let _ = rows;
    }
}

#[test]
fn duals_predict_objective_change_under_rhs_nudge() {
    // Non-degenerate production LP: nudging a binding rhs by δ moves the
    // objective by y·δ while the basis stays optimal.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_nonneg("x", 3.0);
    let y = m.add_nonneg("y", 5.0);
    m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
    let c2 = m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
    let c3 = m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let opts = SolverOptions::default();
    let (base, basis) = m.solve_warm(None, &opts).unwrap();
    let duals = base.duals.clone().unwrap();
    for (c, delta) in [(c2, 0.5), (c3, -0.4), (c2, -0.25)] {
        let mut m2 = m.clone();
        m2.set_rhs(c, m.constraint(c).rhs() + delta);
        let (nudged, _) = m2.solve_warm(Some(&basis), &opts).unwrap();
        let predicted = base.objective + duals[c.index()] * delta;
        assert!(
            (nudged.objective - predicted).abs() < 1e-6,
            "rhs {c:?} {delta:+}: predicted {predicted}, got {}",
            nudged.objective
        );
    }
}

#[test]
fn ge_rows_have_nonnegative_duals_in_minimize() {
    // min x + y st x + y ≥ 4 (binding, dual 1), x ≥ 1 (binding, dual 0
    // via degeneracy or positive — must be ≥ 0 either way).
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 1.0);
    let y = m.add_nonneg("y", 1.0);
    let c1 = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
    let c2 = m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0);
    let s = m.solve_with(&no_presolve()).unwrap();
    assert!(s.dual(c1).unwrap() >= -1e-9);
    assert!(s.dual(c2).unwrap() >= -1e-9);
    // Raising the ≥ 4 rhs by 1 costs exactly 1 (the objective slope).
    assert!((s.dual(c1).unwrap() - 1.0).abs() < 1e-7);
}

#[test]
fn scaling_does_not_change_duals() {
    // Coefficients spanning orders of magnitude: duals must come back in
    // original units whether or not equilibration ran.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 1e4);
    let y = m.add_nonneg("y", 1.0);
    let c = m.add_constraint([(x, 1e5), (y, 1e-4)], Cmp::Ge, 10.0);
    let scaled = m
        .solve_with(&SolverOptions {
            presolve: false,
            scale: true,
            ..Default::default()
        })
        .unwrap();
    let unscaled = m
        .solve_with(&SolverOptions {
            presolve: false,
            scale: false,
            ..Default::default()
        })
        .unwrap();
    let (a, b) = (scaled.dual(c).unwrap(), unscaled.dual(c).unwrap());
    assert!(
        (a - b).abs() < 1e-6 * (1.0 + a.abs()),
        "scaled {a} vs unscaled {b}"
    );
    // The analytic shadow price: cheapest satisfaction is x = 1e-4 at
    // cost 1e4·1e-4 = 1 per 10 rhs units → 0.1 per unit.
    assert!((a - 0.1).abs() < 1e-6, "dual {a}");
}

#[test]
fn presolved_solves_report_no_duals() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 1.0);
    m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
    let s = m.solve().unwrap(); // default: presolve on
    assert!(s.duals.is_none());
}
