//! Differential tests for warm-started re-solves.
//!
//! Strategy: build a random feasible LP, solve it cold to obtain a basis
//! snapshot, apply a random perturbation (right-hand sides, objective
//! coefficients, or variable bounds), then require the warm re-solve to
//! agree with a cold solve of the perturbed model — same objective, same
//! feasibility, same infeasible/unbounded verdicts.

use coflow_lp::{Basis, BasisStatus, Cmp, LpError, Model, Sense, SolverOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random feasible-by-construction LP with finite bounds on every
/// variable (feasible AND bounded, so the cold solve must succeed).
fn random_lp(
    rng: &mut StdRng,
    nvars: usize,
    nrows: usize,
) -> (Model, Vec<coflow_lp::VarId>, Vec<coflow_lp::ConstraintId>) {
    let sense = if rng.gen_bool(0.5) {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let mut x0 = Vec::with_capacity(nvars);
    let mut vars = Vec::with_capacity(nvars);
    for j in 0..nvars {
        let lb = rng.gen_range(-4.0..1.0);
        let ub = lb + rng.gen_range(0.5..6.0);
        vars.push(m.add_var(format!("x{j}"), lb, ub, rng.gen_range(-3.0..3.0)));
        x0.push(rng.gen_range(lb..ub));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let nnz = rng.gen_range(1..=nvars.min(4));
        let mut terms = Vec::with_capacity(nnz);
        let mut lhs = 0.0;
        for _ in 0..nnz {
            let j = rng.gen_range(0..nvars);
            let a = rng.gen_range(-2.0..2.0);
            if a == 0.0 {
                continue;
            }
            terms.push((vars[j], a));
            lhs += a * x0[j];
        }
        if terms.is_empty() {
            continue;
        }
        let id = match rng.gen_range(0..3) {
            0 => m.add_constraint(terms, Cmp::Le, lhs + rng.gen_range(0.0..2.0)),
            1 => m.add_constraint(terms, Cmp::Ge, lhs - rng.gen_range(0.0..2.0)),
            _ => m.add_constraint(terms, Cmp::Eq, lhs),
        };
        rows.push(id);
    }
    (m, vars, rows)
}

/// Applies a random perturbation; the result may be infeasible, which
/// both solvers must then agree on.
fn perturb(
    rng: &mut StdRng,
    m: &mut Model,
    vars: &[coflow_lp::VarId],
    rows: &[coflow_lp::ConstraintId],
) {
    for _ in 0..rng.gen_range(1..4) {
        match rng.gen_range(0..3) {
            0 if !rows.is_empty() => {
                let c = rows[rng.gen_range(0..rows.len())];
                let old = m.constraint(c).rhs();
                m.set_rhs(c, old + rng.gen_range(-1.5..1.5));
            }
            1 => {
                let v = vars[rng.gen_range(0..vars.len())];
                m.set_obj(v, rng.gen_range(-3.0..3.0));
            }
            _ => {
                let v = vars[rng.gen_range(0..vars.len())];
                let (lb, ub) = m.var_bounds(v);
                let nlb = lb + rng.gen_range(-0.5..0.5);
                let nub = (ub + rng.gen_range(-0.5..0.5)).max(nlb);
                m.set_bounds(v, nlb, nub);
            }
        }
    }
}

#[test]
fn warm_resolve_matches_cold_after_random_perturbations() {
    let mut rng = StdRng::seed_from_u64(0xC0F10);
    let opts = SolverOptions::default();
    let mut solved = 0;
    let mut infeasible = 0;
    for trial in 0..300 {
        let nvars = rng.gen_range(2..8);
        let nrows = rng.gen_range(1..8);
        let (mut m, vars, rows) = random_lp(&mut rng, nvars, nrows);
        let Ok((_, basis)) = m.solve_warm(None, &opts) else {
            continue; // random row subset degenerated to empty
        };
        perturb(&mut rng, &mut m, &vars, &rows);
        let warm = m.solve_warm(Some(&basis), &opts);
        let cold = m.solve_with(&SolverOptions {
            presolve: false, // match the warm path's model view
            ..Default::default()
        });
        match (warm, cold) {
            (Ok((w, _)), Ok(c)) => {
                solved += 1;
                let scale = 1.0 + w.objective.abs().max(c.objective.abs());
                assert!(
                    (w.objective - c.objective).abs() / scale < 1e-6,
                    "trial {trial}: warm {} vs cold {}",
                    w.objective,
                    c.objective
                );
                assert!(
                    m.max_violation(&w.x) < 1e-6,
                    "trial {trial}: warm solution infeasible"
                );
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {
                infeasible += 1;
            }
            (w, c) => panic!("trial {trial}: verdict mismatch warm={w:?} cold={c:?}"),
        }
    }
    assert!(
        solved > 150,
        "only {solved} optimal trials — generator broken?"
    );
    assert!(infeasible > 5, "perturbations never went infeasible");
}

#[test]
fn chained_warm_resolves_track_a_moving_rhs() {
    // One model, twenty successive RHS nudges, basis carried through the
    // whole chain; each step compared against a cold solve.
    let mut rng = StdRng::seed_from_u64(42);
    let (mut m, _, rows) = random_lp(&mut rng, 6, 6);
    if rows.is_empty() {
        return;
    }
    let opts = SolverOptions::default();
    let (_, mut basis) = m.solve_warm(None, &opts).unwrap();
    let mut checked = 0;
    for step in 0..20 {
        let c = rows[step % rows.len()];
        let old = m.constraint(c).rhs();
        m.set_rhs(c, old + if step % 2 == 0 { 0.4 } else { -0.3 });
        match (m.solve_warm(Some(&basis), &opts), m.solve()) {
            (Ok((w, nb)), Ok(c)) => {
                basis = nb;
                let scale = 1.0 + c.objective.abs();
                assert!(
                    (w.objective - c.objective).abs() / scale < 1e-6,
                    "step {step}: warm {} cold {}",
                    w.objective,
                    c.objective
                );
                checked += 1;
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {
                // Chain broken by infeasibility: restart cold.
                let (_, nb) = match m.solve_warm(None, &opts) {
                    Ok(v) => v,
                    Err(_) => return,
                };
                basis = nb;
            }
            (w, c) => panic!("step {step}: warm={w:?} cold={c:?}"),
        }
    }
    assert!(checked >= 10, "chain rarely solvable ({checked})");
}

#[test]
fn basis_snapshot_shape_and_count_invariants() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..50 {
        let nvars = rng.gen_range(2..8);
        let nrows = rng.gen_range(1..8);
        let (m, _, _) = random_lp(&mut rng, nvars, nrows);
        let Ok((_, basis)) = m.solve_warm(None, &SolverOptions::default()) else {
            continue;
        };
        assert_eq!(basis.vars.len(), m.num_vars());
        assert_eq!(basis.rows.len(), m.num_constraints());
        // A basic solution has exactly one basic column per row.
        assert_eq!(basis.num_basic(), m.num_constraints());
    }
}

#[test]
fn all_slack_snapshot_is_a_valid_warm_start() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..50 {
        let (m, _, _) = random_lp(&mut rng, 5, 5);
        let cold = m.solve();
        let warm = m.solve_warm(
            Some(&Basis::all_slack(m.num_vars(), m.num_constraints())),
            &SolverOptions::default(),
        );
        match (cold, warm) {
            (Ok(a), Ok((b, _))) => {
                let scale = 1.0 + a.objective.abs();
                assert!((a.objective - b.objective).abs() / scale < 1e-6);
            }
            (Err(ea), Err(eb)) => {
                assert_eq!(std::mem::discriminant(&ea), std::mem::discriminant(&eb));
            }
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn degenerate_snapshot_statuses_are_sanitized() {
    // Feed a deliberately nonsensical snapshot: everything Basic, or
    // everything Upper on variables without finite upper bounds.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_nonneg("x", 1.0);
    let y = m.add_nonneg("y", 2.0);
    m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
    let every_basic = Basis {
        vars: vec![BasisStatus::Basic; 2],
        rows: vec![BasisStatus::Basic; 1],
    };
    let (s, _) = m
        .solve_warm(Some(&every_basic), &SolverOptions::default())
        .unwrap();
    assert!((s.objective - 4.0).abs() < 1e-7);
    let every_upper = Basis {
        vars: vec![BasisStatus::Upper; 2], // ub = ∞: must be sanitized
        rows: vec![BasisStatus::Basic; 1],
    };
    let (s, _) = m
        .solve_warm(Some(&every_upper), &SolverOptions::default())
        .unwrap();
    assert!((s.objective - 4.0).abs() < 1e-7);
}
