//! Solver-level warm-start benchmarks: cold vs warm re-solves after the
//! two mutations the coflow pipeline performs every epoch — an RHS
//! perturbation (capacity/executed-work change) and a column append (a
//! newly arrived flow stitched into existing rows). Criterion measures
//! time; the printed pivot counts tell the algorithmic story.

use coflow_lp::{BasisUpdate, Cmp, Model, Sense, SolverOptions, VarId};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A coflow-LP-shaped model: bounded columns chained through shared
/// `≥` rows, mimicking prefix chains crossing capacity rows.
fn chained_lp(n: usize, seed: u64) -> (Model, Vec<VarId>, Vec<coflow_lp::ConstraintId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let xs: Vec<VarId> = (0..n)
        .map(|j| m.add_var(format!("x{j}"), 0.0, 8.0, rng.gen_range(0.5..5.0)))
        .collect();
    let mut rows = Vec::new();
    for i in 0..n - 1 {
        rows.push(m.add_constraint(
            [(xs[i], 1.0), (xs[i + 1], 1.0), (xs[(i * 5 + 2) % n], 0.4)],
            Cmp::Ge,
            2.0 + (i % 7) as f64,
        ));
    }
    (m, xs, rows)
}

fn bench_rhs_perturbation(c: &mut Criterion) {
    let (model, _, rows) = chained_lp(200, 42);
    let opts = SolverOptions::default();
    let (_, basis) = model.solve_warm(None, &opts).expect("solves");
    let mid = rows[rows.len() / 2];

    let mut group = c.benchmark_group("warm_start_rhs");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut m = model.clone();
            m.set_rhs(mid, 3.7);
            m.solve_warm(Some(&basis), &opts).expect("resolves")
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut m = model.clone();
            m.set_rhs(mid, 3.7);
            m.solve_warm(None, &opts).expect("resolves")
        })
    });
    group.finish();

    let mut m = model.clone();
    m.set_rhs(mid, 3.7);
    let (warm, _) = m.solve_warm(Some(&basis), &opts).expect("resolves");
    let (cold, _) = m.solve_warm(None, &opts).expect("resolves");
    println!(
        "warm_start_rhs pivots: warm {} (refactors {}) vs cold {} (refactors {})",
        warm.iterations, warm.refactorizations, cold.iterations, cold.refactorizations
    );
}

/// Appends `k` new columns stitched into existing rows plus one new
/// coupling row — the arrival-epoch mutation.
fn append_columns(model: &mut Model, rows: &[coflow_lp::ConstraintId], k: usize) {
    for a in 0..k {
        let z = model.add_var(format!("z{a}"), 0.0, 4.0, 0.8 + a as f64 * 0.1);
        model.add_term(rows[(a * 13 + 7) % rows.len()], z, 1.0);
        model.add_term(rows[(a * 29 + 3) % rows.len()], z, 0.5);
        model.add_constraint([(z, 1.0)], Cmp::Le, 3.0);
    }
}

fn bench_column_append(c: &mut Criterion) {
    let (model, _, rows) = chained_lp(200, 7);
    let opts = SolverOptions::default();
    let (_, basis) = model.solve_warm(None, &opts).expect("solves");

    let mut group = c.benchmark_group("warm_start_append");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut m = model.clone();
            append_columns(&mut m, &rows, 8);
            let mut grown = basis.clone();
            grown.grow(m.num_vars(), m.num_constraints());
            m.solve_warm(Some(&grown), &opts).expect("resolves")
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut m = model.clone();
            append_columns(&mut m, &rows, 8);
            m.solve_warm(None, &opts).expect("resolves")
        })
    });
    group.finish();

    let mut m = model.clone();
    append_columns(&mut m, &rows, 8);
    let mut grown = basis.clone();
    grown.grow(m.num_vars(), m.num_constraints());
    let (warm, _) = m.solve_warm(Some(&grown), &opts).expect("resolves");
    let (cold, _) = m.solve_warm(None, &opts).expect("resolves");
    println!(
        "warm_start_append pivots: warm {} vs cold {} ({:.1}x fewer); objectives {} vs {}",
        warm.iterations,
        cold.iterations,
        cold.iterations as f64 / warm.iterations.max(1) as f64,
        warm.objective,
        cold.objective
    );
    assert!(
        (warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()),
        "warm append drifted from the cold optimum"
    );
}

/// Forrest–Tomlin vs eta-file basis updates on the column-append warm
/// re-solve: same pivots, different update files. The printed counters
/// are the FT story in miniature — refactorizations and update-file
/// nonzeros should both drop, objectives must agree.
fn bench_ft_vs_eta_append(c: &mut Criterion) {
    let (model, _, rows) = chained_lp(200, 7);
    let ft_opts = SolverOptions {
        basis_update: BasisUpdate::ForrestTomlin,
        ..Default::default()
    };
    let eta_opts = SolverOptions {
        basis_update: BasisUpdate::Eta,
        ..Default::default()
    };
    let (_, basis) = model.solve_warm(None, &ft_opts).expect("solves");

    let resolve = |opts: &SolverOptions| {
        let mut m = model.clone();
        append_columns(&mut m, &rows, 8);
        let mut grown = basis.clone();
        grown.grow(m.num_vars(), m.num_constraints());
        m.solve_warm(Some(&grown), opts).expect("resolves").0
    };

    let mut group = c.benchmark_group("warm_start_ft_vs_eta");
    group.bench_function("ft", |b| b.iter(|| resolve(&ft_opts)));
    group.bench_function("eta", |b| b.iter(|| resolve(&eta_opts)));
    group.finish();

    let ft = resolve(&ft_opts);
    let eta = resolve(&eta_opts);
    println!(
        "warm_start_ft_vs_eta: ft {} pivots / {} refactors / {} update nnz ({} FT updates, {} spike nnz) \
         vs eta {} pivots / {} refactors / {} update nnz",
        ft.iterations,
        ft.refactorizations,
        ft.stats.update_nnz,
        ft.stats.ft_updates,
        ft.stats.spike_nnz,
        eta.iterations,
        eta.refactorizations,
        eta.stats.update_nnz
    );
    assert!(
        (ft.objective - eta.objective).abs() < 1e-9 * (1.0 + eta.objective.abs()),
        "FT and eta disagree: {} vs {}",
        ft.objective,
        eta.objective
    );
}

criterion_group!(
    benches,
    bench_rhs_perturbation,
    bench_column_append,
    bench_ft_vs_eta_append
);
criterion_main!(benches);
