//! Solve results.

use crate::model::VarId;

/// Termination status of a successful solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic solution was found.
    Optimal,
}

/// An optimal solution to a [`Model`](crate::Model).
#[derive(Clone, Debug)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value in the model's original sense.
    pub objective: f64,
    /// Primal values, indexed by [`VarId::index`].
    pub x: Vec<f64>,
    /// Row duals (shadow prices), indexed by
    /// [`ConstraintId::index`](crate::ConstraintId::index), in the
    /// model's original sense and units: `duals[i] ≈ ∂objective/∂rhs_i`
    /// at the optimal basis. `None` when the solve path cannot map duals
    /// back to the original rows (currently: solves that ran presolve —
    /// use [`Model::solve_warm`](crate::Model::solve_warm) or disable
    /// presolve to obtain them).
    pub duals: Option<Vec<f64>>,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
    /// Basis refactorizations performed (including the initial
    /// factorization). Together with `iterations` this is the cost
    /// model of a solve: warm re-solves should show both collapsing
    /// relative to a cold start on the same model.
    pub refactorizations: usize,
}

impl Solution {
    /// Value of variable `v`.
    #[inline]
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }

    /// Shadow price of constraint `c`, if duals are available.
    #[inline]
    pub fn dual(&self, c: crate::ConstraintId) -> Option<f64> {
        self.duals.as_ref().map(|d| d[c.index()])
    }
}
