//! Solve results.

use crate::model::VarId;

/// Termination status of a successful solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic solution was found.
    Optimal,
}

/// An optimal solution to a [`Model`](crate::Model).
#[derive(Clone, Debug)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value in the model's original sense.
    pub objective: f64,
    /// Primal values, indexed by [`VarId::index`].
    pub x: Vec<f64>,
    /// Row duals (shadow prices), indexed by
    /// [`ConstraintId::index`](crate::ConstraintId::index), in the
    /// model's original sense and units: `duals[i] ≈ ∂objective/∂rhs_i`
    /// at the optimal basis. `None` when the solve path cannot map duals
    /// back to the original rows (currently: solves that ran presolve —
    /// use [`Model::solve_warm`](crate::Model::solve_warm) or disable
    /// presolve to obtain them).
    pub duals: Option<Vec<f64>>,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
    /// Basis refactorizations performed (including the initial
    /// factorization). Together with `iterations` this is the cost
    /// model of a solve: warm re-solves should show both collapsing
    /// relative to a cold start on the same model.
    pub refactorizations: usize,
    /// Engine-level cost counters (zeroed for the dense engine and
    /// other paths that bypass the sparse LU core).
    pub stats: SolveStats,
}

/// Low-level cost counters of the sparse LP engine, accumulated across
/// every FTRAN/BTRAN of a solve. `*_nnz` totals count result nonzeros —
/// the work a hyper-sparse solve actually performs — so
/// `ftran_nnz / ftran_solves` near the row count means the solves ran
/// dense, while small quotients confirm hyper-sparsity is paying off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// FTRAN (forward) solves performed.
    pub ftran_solves: usize,
    /// Total result nonzeros across all FTRANs.
    pub ftran_nnz: usize,
    /// BTRAN (transpose) solves performed.
    pub btran_solves: usize,
    /// Total result nonzeros across all BTRANs.
    pub btran_nnz: usize,
    /// Workspace high-water estimate in bytes (LU factors, eta file,
    /// and solver scratch, measured from vector capacities).
    pub peak_alloc_bytes: usize,
    /// Forrest–Tomlin basis updates absorbed without refactorizing
    /// (zero when the eta update path is selected).
    pub ft_updates: usize,
    /// Total spike-column nonzeros across all FT updates.
    pub spike_nnz: usize,
    /// Total update-file nonzeros appended between refactorizations:
    /// eta-column entries, or FT spike + row-eta multiplier entries.
    /// The fill ledger the FT-vs-eta comparison is judged on.
    pub update_nnz: usize,
    /// Refactorizations triggered by the fixed update-count cadence.
    pub refactor_interval: usize,
    /// Refactorizations triggered early by update-file fill outgrowing
    /// the LU factors.
    pub refactor_fill: usize,
    /// Refactorizations forced by the FT stability monitor declining a
    /// spike.
    pub refactor_unstable: usize,
    /// Numerical-distress rescues that re-ran the solve with
    /// conservative options (tighter tolerances, eta updates, eager
    /// refactorization) after the first attempt produced a non-finite
    /// point or an unstable factorization.
    pub distress_retries: usize,
    /// Rescues that fell all the way through to the dense tableau
    /// oracle after the conservative sparse retry also failed.
    pub dense_fallbacks: usize,
}

impl SolveStats {
    /// Accumulates another solve's counters into this one (solve/nnz
    /// totals add; the peak-workspace estimate takes the max). Used by
    /// harnesses that aggregate effort across a sequence of re-solves.
    pub fn merge(&mut self, other: &SolveStats) {
        self.ftran_solves += other.ftran_solves;
        self.ftran_nnz += other.ftran_nnz;
        self.btran_solves += other.btran_solves;
        self.btran_nnz += other.btran_nnz;
        self.peak_alloc_bytes = self.peak_alloc_bytes.max(other.peak_alloc_bytes);
        self.ft_updates += other.ft_updates;
        self.spike_nnz += other.spike_nnz;
        self.update_nnz += other.update_nnz;
        self.refactor_interval += other.refactor_interval;
        self.refactor_fill += other.refactor_fill;
        self.refactor_unstable += other.refactor_unstable;
        self.distress_retries += other.distress_retries;
        self.dense_fallbacks += other.dense_fallbacks;
    }
}

impl Solution {
    /// Value of variable `v`.
    #[inline]
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }

    /// Shadow price of constraint `c`, if duals are available.
    #[inline]
    pub fn dual(&self, c: crate::ConstraintId) -> Option<f64> {
        self.duals.as_ref().map(|d| d[c.index()])
    }
}
