//! Sparse LU factorization of the simplex basis (Gilbert–Peierls) with
//! Forrest–Tomlin or product-form (eta) updates and hyper-sparse solves.
//!
//! The basis matrix `B` consists of `m` columns of the constraint matrix.
//! We factorize `P·B·Q = L·U` where `Q` orders columns by increasing
//! nonzero count and `P` permutes rows by a Markowitz-style threshold
//! rule: among rows whose pivot candidate is within a fixed factor of
//! the largest magnitude, take the one with the fewest nonzeros across
//! the basis columns (stability first, fill second).
//!
//! After each simplex pivot the factorization is *updated*, not rebuilt,
//! in one of two ways selected by [`BasisUpdate`]:
//!
//! * **Forrest–Tomlin** (default): `U` is maintained explicitly in a
//!   dynamic column/row representation. Replacing the column pivoted at
//!   step `t` records its *spike* `s = U·d` as the new column, then
//!   eliminates row `t` against the trailing rows — a sparse triangular
//!   solve yields the multipliers, stored as one row eta — and cyclically
//!   permutes `t` to the last ordinal so `U` stays triangular. A
//!   stability monitor compares the recomputed diagonal against its
//!   product-form prediction `d_pos·u_tt` and declines the update (the
//!   caller refactorizes) on disagreement.
//! * **Eta**: the update `B' = B·E` is recorded as a sparse eta matrix
//!   `E` (identity with one replaced column) — the extended product-form
//!   of the inverse, kept as the differential oracle. FTRAN/BTRAN apply
//!   the eta file around the LU solve.
//!
//! Either update file is discarded at the next refactorization.
//!
//! Solves are **hyper-sparse**: right-hand sides, intermediates, and
//! results live in indexed [`WorkVec`]s. A depth-first symbolic reach
//! over the triangular factors (both held in forward and transposed
//! adjacency) enumerates exactly the entries a solve can touch, so the
//! cost of an FTRAN/BTRAN is proportional to the size of its *result*,
//! not to `m`. Dense right-hand sides short-circuit to plain dense
//! triangular solves (the reach would visit everything anyway).

use crate::sparse::{CscMatrix, WorkVec};

/// Index marker for "not yet pivoted".
const UNSET: u32 = u32::MAX;

/// Relative threshold for Markowitz-style pivoting: candidates within
/// this factor of the column's largest magnitude compete on row count.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Right-hand sides denser than `m / DENSE_CUTOFF` skip the symbolic
/// reach and solve densely.
const DENSE_CUTOFF: usize = 8;

/// A Forrest–Tomlin update is declined (forcing refactorization) when
/// the eliminated diagonal disagrees with its product-form prediction
/// `|d_pos · u_tt|` by more than this relative gap — the Forrest–Tomlin
/// cancellation test.
const FT_STAB_REL: f64 = 1e-6;

/// ... or is absolutely smaller than this times the spike magnitude.
const FT_STAB_ABS: f64 = 1e-10;

/// How the factorization absorbs a basis column replacement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BasisUpdate {
    /// Forrest–Tomlin row-spike updates: `U` maintained explicitly,
    /// spike recorded, row eliminated, permuted to the last ordinal.
    #[default]
    ForrestTomlin,
    /// Product-form eta file (the differential oracle).
    Eta,
}

/// Why a refactorization was triggered (ledger for `SolveStats`).
#[derive(Clone, Copy, Debug)]
pub enum RefactorCause {
    /// The periodic update-count interval elapsed.
    Interval,
    /// The update file outgrew the factors (fill monitor).
    Fill,
    /// A Forrest–Tomlin update failed its stability test.
    Unstable,
}

/// A singular basis: the step at which no acceptable pivot existed.
#[derive(Clone, Copy, Debug)]
pub struct Singular {
    /// Elimination step that failed.
    pub step: usize,
    /// Basis position of the offending column.
    pub basis_pos: usize,
}

/// One product-form update: basis position `pos` was replaced by a column
/// whose FTRAN image (in basis-position space) is `d`.
struct Eta {
    pos: usize,
    /// Sparse `d`, excluding the `pos` entry.
    d: Vec<(u32, f64)>,
    /// `d[pos]`, the pivot element.
    dp: f64,
}

/// Running operation counters (monotone across refactorizations).
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCounts {
    /// Sparse/dense FTRAN solves performed.
    pub ftran_solves: usize,
    /// Total result nonzeros across all FTRANs.
    pub ftran_nnz: usize,
    /// Sparse/dense BTRAN solves performed.
    pub btran_solves: usize,
    /// Total result nonzeros across all BTRANs.
    pub btran_nnz: usize,
    /// Forrest–Tomlin updates applied.
    pub ft_updates: usize,
    /// Total spike nonzeros (diagonal included) across FT updates.
    pub spike_nnz: usize,
    /// Total nonzeros pushed into the update file: eta columns, or FT
    /// spikes plus row-eta multipliers — the basis-update fill ledger.
    pub update_nnz: usize,
    /// Refactorizations triggered by the update-count interval.
    pub refactor_interval: usize,
    /// Refactorizations triggered by the fill monitor.
    pub refactor_fill: usize,
    /// Refactorizations triggered by a declined (unstable) FT update.
    pub refactor_unstable: usize,
}

/// One Forrest–Tomlin row eta: after the column pivoted at step `t` was
/// replaced by its spike, row `t` of `U` was eliminated against the
/// trailing rows with these multipliers (step, value).
struct RowEta {
    t: u32,
    m: Vec<(u32, f64)>,
}

/// Forrest–Tomlin state: `U` maintained explicitly in dynamic form.
/// Column and row adjacency both carry values and are kept exactly in
/// sync (no stale entries), so solves never search.
#[derive(Default)]
struct Ft {
    /// Built for the current factors (mode is Forrest–Tomlin and
    /// `refactor` succeeded).
    active: bool,
    /// Column entries `(row step, value)`, diagonal apart.
    ucols: Vec<Vec<(u32, f64)>>,
    /// Row entries `(column step, value)` — the transpose of `ucols`.
    urows: Vec<Vec<(u32, f64)>>,
    /// Diagonal per column step.
    udiag: Vec<f64>,
    /// ordinal -> step: the triangular elimination order of the current
    /// `U` (identity at refactorization, rotated by each update).
    ord: Vec<u32>,
    /// step -> ordinal.
    ord_of: Vec<u32>,
    /// Row etas, chronological.
    row_etas: Vec<RowEta>,
    /// Updates applied since the last refactorization.
    updates: usize,
    /// `U` nonzeros (off-diagonal) at the last refactorization.
    base_nnz: usize,
    /// Current `U` nonzeros (off-diagonal), maintained incrementally.
    live_nnz: usize,
}

/// LU factors plus eta file. Sparse solves work on [`WorkVec`]s; the
/// dense entry points remain for inherently dense right-hand sides
/// (basic-value and reduced-cost recomputation).
pub struct Factorization {
    m: usize,
    /// orig row -> elimination step.
    rpos: Vec<u32>,
    /// step -> orig row.
    rinv: Vec<u32>,
    /// step -> basis position.
    cinv: Vec<u32>,
    /// basis position -> step.
    cpos: Vec<u32>,
    // L columns (per step): original-row indices and values; implicit unit
    // diagonal. Entries' rows are pivoted at later steps.
    l_start: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// `l_rows` mapped through `rpos` once factorization completes:
    /// the step each L entry updates during a forward solve.
    l_steps: Vec<u32>,
    // U columns (per step): step indices (< k) and values; diagonal apart.
    u_start: Vec<usize>,
    u_steps: Vec<u32>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    // Transposed adjacency (indices only) for BTRAN symbolic reach:
    // step s -> steps k whose column holds an entry at s.
    ut_start: Vec<usize>,
    ut_cols: Vec<u32>,
    lt_start: Vec<usize>,
    lt_cols: Vec<u32>,
    etas: Vec<Eta>,
    /// Basis-update mode; [`Ft`] is maintained when Forrest–Tomlin.
    mode: BasisUpdate,
    ft: Ft,
    counts: OpCounts,
    // Scratch buffers reused across factorizations and solves.
    work: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Nonzeros per row across the basis columns (Markowitz row counts).
    row_count: Vec<u32>,
    dfs_stack: Vec<(u32, usize)>,
    reach_out: Vec<u32>,
    perm_scratch: Vec<(u32, f64)>,
    dense_out: Vec<f64>,
    /// Scratch for the FT multiplier solve (step space).
    ft_rhs: WorkVec,
    /// Scratch pattern for the FT spike.
    ft_pat: Vec<u32>,
}

impl Factorization {
    /// Creates an empty factorization sized for `m` rows.
    pub fn new(m: usize) -> Self {
        Factorization {
            m,
            rpos: vec![UNSET; m],
            rinv: vec![0; m],
            cinv: vec![0; m],
            cpos: vec![0; m],
            l_start: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            l_steps: Vec::new(),
            u_start: vec![0],
            u_steps: Vec::new(),
            u_vals: Vec::new(),
            u_diag: Vec::new(),
            ut_start: Vec::new(),
            ut_cols: Vec::new(),
            lt_start: Vec::new(),
            lt_cols: Vec::new(),
            etas: Vec::new(),
            mode: BasisUpdate::Eta,
            ft: Ft::default(),
            counts: OpCounts::default(),
            work: vec![0.0; m],
            stamp: vec![0; m],
            epoch: 0,
            row_count: vec![0; m],
            dfs_stack: Vec::new(),
            reach_out: Vec::new(),
            perm_scratch: Vec::new(),
            dense_out: Vec::new(),
            ft_rhs: WorkVec::with_dim(m),
            ft_pat: Vec::new(),
        }
    }

    /// Selects the basis-update scheme. Takes effect at the next
    /// [`refactor`](Factorization::refactor); call before the first one.
    pub fn set_mode(&mut self, mode: BasisUpdate) {
        self.mode = mode;
    }

    /// Total nonzeros across the eta file (fill indicator for the
    /// update chain; drives early refactorization).
    pub fn eta_nnz(&self) -> usize {
        self.etas.iter().map(|e| e.d.len() + 1).sum()
    }

    /// Basis updates absorbed since the last refactorization, whichever
    /// the scheme (drives the periodic refactorization interval).
    #[inline]
    pub fn update_count(&self) -> usize {
        if self.ft.active {
            self.ft.updates
        } else {
            self.etas.len()
        }
    }

    /// Fill added by the update file since the last refactorization:
    /// eta-file nonzeros, or FT row-eta multipliers plus net `U` growth.
    pub fn update_fill(&self) -> usize {
        if self.ft.active {
            let row_eta: usize = self.ft.row_etas.iter().map(|e| e.m.len() + 1).sum();
            row_eta + self.ft.live_nnz.saturating_sub(self.ft.base_nnz)
        } else {
            self.eta_nnz()
        }
    }

    /// Ledger hook: records what triggered a refactorization.
    pub fn count_refactor(&mut self, cause: RefactorCause) {
        match cause {
            RefactorCause::Interval => self.counts.refactor_interval += 1,
            RefactorCause::Fill => self.counts.refactor_fill += 1,
            RefactorCause::Unstable => self.counts.refactor_unstable += 1,
        }
    }

    /// Total nonzeros in L and U (fill indicator).
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_steps.len() + self.u_diag.len()
    }

    /// Monotone FTRAN/BTRAN operation counters.
    #[inline]
    pub fn op_counts(&self) -> OpCounts {
        self.counts
    }

    /// Heap bytes currently held by factors, eta file, and scratch
    /// (allocation accounting for the solver's workspace ledger).
    pub fn heap_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        let u = std::mem::size_of::<u32>();
        let us = std::mem::size_of::<usize>();
        (self.l_vals.capacity() + self.u_vals.capacity() + self.u_diag.capacity()) * f
            + (self.l_rows.capacity()
                + self.l_steps.capacity()
                + self.u_steps.capacity()
                + self.ut_cols.capacity()
                + self.lt_cols.capacity()
                + self.rpos.capacity()
                + self.rinv.capacity()
                + self.cinv.capacity()
                + self.cpos.capacity()
                + self.stamp.capacity()
                + self.row_count.capacity()
                + self.reach_out.capacity())
                * u
            + (self.l_start.capacity()
                + self.u_start.capacity()
                + self.ut_start.capacity()
                + self.lt_start.capacity())
                * us
            + (self.work.capacity() + self.dense_out.capacity()) * f
            + self
                .etas
                .iter()
                .map(|e| e.d.capacity() * (u as usize + f as usize))
                .sum::<usize>()
            + self.ft_heap_bytes()
    }

    /// Heap bytes of the Forrest–Tomlin state.
    fn ft_heap_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(u32, f64)>();
        let u = std::mem::size_of::<u32>();
        let f = std::mem::size_of::<f64>();
        let cols: usize = self.ft.ucols.iter().map(Vec::capacity).sum();
        let rows: usize = self.ft.urows.iter().map(Vec::capacity).sum();
        let etas: usize = self.ft.row_etas.iter().map(|e| e.m.capacity()).sum();
        (cols + rows + etas) * pair
            + (self.ft.ord.capacity() + self.ft.ord_of.capacity() + self.ft_pat.capacity()) * u
            + self.ft.udiag.capacity() * f
    }

    /// Refactorizes from scratch: `basis[pos]` is the column index of `a`
    /// occupying basis position `pos`.
    ///
    /// # Errors
    ///
    /// [`Singular`] when a column turns out linearly dependent (pivot
    /// below `pivot_tol`).
    pub fn refactor(
        &mut self,
        a: &CscMatrix,
        basis: &[usize],
        pivot_tol: f64,
    ) -> Result<(), Singular> {
        let m = self.m;
        assert_eq!(basis.len(), m, "basis size must equal row count");
        self.rpos.iter_mut().for_each(|r| *r = UNSET);
        self.l_start.clear();
        self.l_start.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_start.clear();
        self.u_start.push(0);
        self.u_steps.clear();
        self.u_vals.clear();
        self.u_diag.clear();
        self.etas.clear();
        self.ft.active = false;

        // Markowitz row counts: nonzeros per row across the basis.
        self.row_count.iter_mut().for_each(|c| *c = 0);
        for &col in basis {
            for (row, _) in a.col(col) {
                self.row_count[row as usize] += 1;
            }
        }

        // Static column order: increasing nonzero count.
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&p| a.col_nnz(basis[p as usize]));

        // Gilbert–Peierls per column.
        let mut pattern: Vec<u32> = Vec::with_capacity(64);
        let mut dfs_stack = std::mem::take(&mut self.dfs_stack);
        for (k, &p) in order.iter().enumerate() {
            let col = basis[p as usize];
            self.epoch += 1;
            let epoch = self.epoch;
            pattern.clear();

            // Symbolic: reach of the column's pattern through pivoted rows,
            // collected in DFS postorder. A pivoted row `i` (eliminated at
            // step `rpos[i]`) propagates to the rows of L's column
            // `rpos[i]`; unpivoted rows are leaves.
            for (row, _) in a.col(col) {
                if self.stamp[row as usize] == epoch {
                    continue;
                }
                self.stamp[row as usize] = epoch;
                dfs_stack.push((row, 0));
                while let Some(&(node, cursor)) = dfs_stack.last() {
                    let step = self.rpos[node as usize];
                    let (lo, hi) = if step == UNSET {
                        (0, 0) // leaf
                    } else {
                        (self.l_start[step as usize], self.l_start[step as usize + 1])
                    };
                    let mut c = cursor;
                    let mut next_child = None;
                    while lo + c < hi {
                        let child = self.l_rows[lo + c];
                        c += 1;
                        if self.stamp[child as usize] != epoch {
                            next_child = Some(child);
                            break;
                        }
                    }
                    dfs_stack.last_mut().expect("non-empty").1 = c;
                    match next_child {
                        Some(child) => {
                            self.stamp[child as usize] = epoch;
                            dfs_stack.push((child, 0));
                        }
                        None => {
                            dfs_stack.pop();
                            pattern.push(node);
                        }
                    }
                }
            }

            // Numeric: scatter, then eliminate in topological order
            // (reverse postorder).
            for (row, val) in a.col(col) {
                self.work[row as usize] += val;
            }
            for idx in (0..pattern.len()).rev() {
                let node = pattern[idx];
                let step = self.rpos[node as usize];
                if step == UNSET {
                    continue;
                }
                let x = self.work[node as usize];
                if x != 0.0 {
                    let lo = self.l_start[step as usize];
                    let hi = self.l_start[step as usize + 1];
                    for t in lo..hi {
                        let r = self.l_rows[t] as usize;
                        self.work[r] -= self.l_vals[t] * x;
                    }
                }
            }

            // Pivot: Markowitz-style threshold rule over unpivoted
            // pattern rows — stability gate on magnitude, fewest row
            // nonzeros among those admitted, magnitude as tie-break.
            let mut vmax = 0.0f64;
            for &node in &pattern {
                if self.rpos[node as usize] == UNSET {
                    vmax = vmax.max(self.work[node as usize].abs());
                }
            }
            let mut piv_row = UNSET;
            let mut piv_val = 0.0f64;
            let mut piv_count = u32::MAX;
            if vmax >= pivot_tol {
                let gate = vmax * PIVOT_THRESHOLD;
                for &node in &pattern {
                    if self.rpos[node as usize] != UNSET {
                        continue;
                    }
                    let v = self.work[node as usize].abs();
                    if v < gate {
                        continue;
                    }
                    let cnt = self.row_count[node as usize];
                    if cnt < piv_count || (cnt == piv_count && v > piv_val) {
                        piv_count = cnt;
                        piv_val = v;
                        piv_row = node;
                    }
                }
            }
            if piv_row == UNSET || piv_val < pivot_tol {
                // Clear work before bailing.
                for &node in &pattern {
                    self.work[node as usize] = 0.0;
                }
                self.dfs_stack = dfs_stack;
                return Err(Singular {
                    step: k,
                    basis_pos: p as usize,
                });
            }
            let diag = self.work[piv_row as usize];

            // Emit U column k (pivoted rows) and L column k (unpivoted).
            for &node in &pattern {
                let v = self.work[node as usize];
                self.work[node as usize] = 0.0;
                if v == 0.0 || node == piv_row {
                    continue;
                }
                let step = self.rpos[node as usize];
                if step != UNSET {
                    self.u_steps.push(step);
                    self.u_vals.push(v);
                } else {
                    self.l_rows.push(node);
                    self.l_vals.push(v / diag);
                }
            }
            self.u_diag.push(diag);
            self.u_start.push(self.u_steps.len());
            self.l_start.push(self.l_rows.len());
            self.rpos[piv_row as usize] = k as u32;
            self.rinv[k] = piv_row;
            self.cinv[k] = p;
        }
        self.dfs_stack = dfs_stack;
        for k in 0..m {
            self.cpos[self.cinv[k] as usize] = k as u32;
        }
        // Resolve L entry rows to their elimination steps and build the
        // transposed adjacency both factors need for BTRAN reach.
        self.l_steps.clear();
        self.l_steps
            .extend(self.l_rows.iter().map(|&r| self.rpos[r as usize]));
        build_transpose(
            m,
            &self.l_start,
            &self.l_steps,
            &mut self.lt_start,
            &mut self.lt_cols,
        );
        build_transpose(
            m,
            &self.u_start,
            &self.u_steps,
            &mut self.ut_start,
            &mut self.ut_cols,
        );
        if self.mode == BasisUpdate::ForrestTomlin {
            self.ft_rebuild();
        }
        Ok(())
    }

    /// (Re)builds the dynamic `U` representation from the fresh factors.
    fn ft_rebuild(&mut self) {
        let m = self.m;
        let ft = &mut self.ft;
        ft.ucols.resize_with(m, Vec::new);
        ft.urows.resize_with(m, Vec::new);
        for c in &mut ft.ucols {
            c.clear();
        }
        for r in &mut ft.urows {
            r.clear();
        }
        ft.udiag.clear();
        ft.udiag.extend_from_slice(&self.u_diag);
        for k in 0..m {
            for t in self.u_start[k]..self.u_start[k + 1] {
                let j = self.u_steps[t];
                let v = self.u_vals[t];
                ft.ucols[k].push((j, v));
                ft.urows[j as usize].push((k as u32, v));
            }
        }
        ft.ord.clear();
        ft.ord.extend(0..m as u32);
        ft.ord_of.clear();
        ft.ord_of.extend(0..m as u32);
        ft.row_etas.clear();
        ft.updates = 0;
        ft.base_nnz = self.u_steps.len();
        ft.live_nnz = self.u_steps.len();
        ft.active = true;
    }

    /// Sparse FTRAN: solves `B x = v` in place. Input `v` is in
    /// original-row space; the result is in basis-position space with
    /// its nonzero pattern maintained.
    pub fn ftran(&mut self, v: &mut WorkVec) {
        debug_assert_eq!(v.dim(), self.m);
        self.counts.ftran_solves += 1;
        if v.nnz() * DENSE_CUTOFF >= self.m {
            self.ftran_dense_branch(v);
            self.counts.ftran_nnz += v.nnz();
            return;
        }
        // Row space -> step space.
        self.permute(v, PermMap::RowToStep);
        debug_check_pattern(v, "after perm row->step");
        // L forward over its symbolic reach.
        self.solve_lower(v);
        debug_check_pattern(v, "after L");
        if self.ft.active {
            // Row etas chronological (gather form), then the dynamic U.
            self.ft_apply_row_etas(v);
            debug_check_pattern(v, "after FT row etas");
            self.ft_solve_u(v);
            debug_check_pattern(v, "after FT U");
            self.permute(v, PermMap::StepToPos);
            debug_check_pattern(v, "after perm step->pos");
            self.counts.ftran_nnz += v.nnz();
            return;
        }
        // U backward over its symbolic reach.
        self.solve_upper(v);
        debug_check_pattern(v, "after U");
        // Step space -> position space.
        self.permute(v, PermMap::StepToPos);
        debug_check_pattern(v, "after perm step->pos");
        // Eta file, chronological. New fill is added to the pattern via
        // stamps so duplicates cannot arise.
        self.epoch += 1;
        let epoch = self.epoch;
        for &i in &v.pattern {
            self.stamp[i as usize] = epoch;
        }
        for eta in &self.etas {
            let t = v.vals[eta.pos] / eta.dp;
            if t != 0.0 {
                for &(i, di) in &eta.d {
                    v.vals[i as usize] -= di * t;
                    if self.stamp[i as usize] != epoch {
                        self.stamp[i as usize] = epoch;
                        v.pattern.push(i);
                    }
                }
            }
            v.vals[eta.pos] = t;
        }
        self.counts.ftran_nnz += v.nnz();
    }

    /// Sparse FTRAN of constraint-matrix column `col`: seeds the work
    /// vector from the column and solves in place.
    pub fn ftran_col(&mut self, a: &CscMatrix, col: usize, v: &mut WorkVec) {
        v.clear_to_dim(self.m);
        for (row, val) in a.col(col) {
            v.vals[row as usize] = val;
            v.pattern.push(row);
        }
        self.ftran(v);
    }

    /// Sparse BTRAN: solves `Bᵀ y = v` in place. Input `v` is in
    /// basis-position space; the result is in original-row space with
    /// its nonzero pattern maintained.
    pub fn btran_sparse(&mut self, v: &mut WorkVec) {
        debug_assert_eq!(v.dim(), self.m);
        self.counts.btran_solves += 1;
        if v.nnz() * DENSE_CUTOFF >= self.m {
            self.btran_dense_branch(v);
            self.counts.btran_nnz += v.nnz();
            return;
        }
        if self.ft.active {
            // Dynamic Uᵀ, then row-eta transposes newest first.
            self.permute(v, PermMap::PosToStep);
            debug_check_pattern(v, "btran after perm pos->step");
            self.ft_solve_ut(v);
            debug_check_pattern(v, "btran after FT Ut");
            self.ft_apply_row_etas_t(v);
            debug_check_pattern(v, "btran after FT row etas");
            self.solve_lower_t(v);
            debug_check_pattern(v, "btran after Lt");
            self.permute(v, PermMap::StepToRow);
            debug_check_pattern(v, "btran after perm step->row");
            self.counts.btran_nnz += v.nnz();
            return;
        }
        // Eta transposes, newest first (gather form: each eta reads its
        // own sparse entries, so the pass costs O(eta nnz) regardless of
        // the vector's density).
        self.epoch += 1;
        let epoch = self.epoch;
        for &i in &v.pattern {
            self.stamp[i as usize] = epoch;
        }
        for eta in self.etas.iter().rev() {
            let mut acc = v.vals[eta.pos];
            for &(i, di) in &eta.d {
                acc -= di * v.vals[i as usize];
            }
            if acc != 0.0 || self.stamp[eta.pos] == epoch {
                if self.stamp[eta.pos] != epoch {
                    self.stamp[eta.pos] = epoch;
                    v.pattern.push(eta.pos as u32);
                }
                v.vals[eta.pos] = acc / eta.dp;
            }
        }
        // Position space -> step space.
        self.permute(v, PermMap::PosToStep);
        debug_check_pattern(v, "btran after perm pos->step");
        // Uᵀ forward, Lᵀ backward, over the transposed-adjacency reach.
        self.solve_upper_t(v);
        debug_check_pattern(v, "btran after Ut");
        self.solve_lower_t(v);
        debug_check_pattern(v, "btran after Lt");
        // Step space -> original-row space.
        self.permute(v, PermMap::StepToRow);
        debug_check_pattern(v, "btran after perm step->row");
        self.counts.btran_nnz += v.nnz();
    }

    /// Sparse BTRAN of the `r`-th unit vector (basis-position space):
    /// the pivot-row solve `rho = B⁻ᵀ e_r`.
    pub fn btran_unit(&mut self, r: usize, v: &mut WorkVec) {
        v.clear_to_dim(self.m);
        v.vals[r] = 1.0;
        v.pattern.push(r as u32);
        self.btran_sparse(v);
    }

    /// FTRAN with a dense right-hand side: solves `B x = rhs` where `rhs`
    /// is dense in original-row space. Output `x` is dense in
    /// basis-position space.
    pub fn ftran_dense(&mut self, rhs: &[f64], x: &mut Vec<f64>) {
        debug_assert_eq!(rhs.len(), self.m);
        self.counts.ftran_solves += 1;
        self.counts.ftran_nnz += self.m;
        x.clear();
        x.resize(self.m, 0.0);
        for k in 0..self.m {
            x[k] = rhs[self.rinv[k] as usize];
        }
        if self.ft.active {
            self.dense_lower(x);
            for re in &self.ft.row_etas {
                let mut acc = x[re.t as usize];
                for &(j, mj) in &re.m {
                    acc -= mj * x[j as usize];
                }
                x[re.t as usize] = acc;
            }
            // Dynamic U backward, descending ordinals.
            for i in (0..self.m).rev() {
                let k = self.ft.ord[i] as usize;
                let xv = x[k] / self.ft.udiag[k];
                x[k] = xv;
                if xv != 0.0 {
                    for &(j, u) in &self.ft.ucols[k] {
                        x[j as usize] -= u * xv;
                    }
                }
            }
            self.steps_to_positions(x);
            return;
        }
        self.lu_solve_in_step_space(x);
        self.steps_to_positions(x);
        for eta in &self.etas {
            let t = x[eta.pos] / eta.dp;
            if t != 0.0 {
                for &(i, di) in &eta.d {
                    x[i as usize] -= di * t;
                }
            }
            x[eta.pos] = t;
        }
    }

    /// BTRAN: solves `Bᵀ y = c` where `c` is dense in basis-position
    /// space. Output `y` is dense in *original row* space.
    pub fn btran(&mut self, c: &[f64], y: &mut Vec<f64>) {
        debug_assert_eq!(c.len(), self.m);
        self.counts.btran_solves += 1;
        self.counts.btran_nnz += self.m;
        y.clear();
        y.extend_from_slice(c);
        if self.ft.active {
            self.positions_to_steps(y);
            // Dynamic Uᵀ forward, ascending ordinals (scatter form).
            for i in 0..self.m {
                let k = self.ft.ord[i] as usize;
                let yv = y[k] / self.ft.udiag[k];
                y[k] = yv;
                if yv != 0.0 {
                    for &(cstep, u) in &self.ft.urows[k] {
                        y[cstep as usize] -= u * yv;
                    }
                }
            }
            // Row-eta transposes, newest first.
            for re in self.ft.row_etas.iter().rev() {
                let t = y[re.t as usize];
                if t != 0.0 {
                    for &(j, mj) in &re.m {
                        y[j as usize] -= mj * t;
                    }
                }
            }
            self.dense_lower_t(y);
            let m = self.m;
            self.work[..m].copy_from_slice(&y[..m]);
            for k in 0..m {
                y[self.rinv[k] as usize] = self.work[k];
            }
            for k in 0..m {
                self.work[k] = 0.0;
            }
            return;
        }
        // Eta transposes, newest first.
        for eta in self.etas.iter().rev() {
            let mut acc = y[eta.pos];
            for &(i, di) in &eta.d {
                acc -= di * y[i as usize];
            }
            y[eta.pos] = acc / eta.dp;
        }
        // Position -> step space: z[k] = y[cinv[k]].
        self.positions_to_steps(y);
        // U^T forward solve.
        for k in 0..self.m {
            let lo = self.u_start[k];
            let hi = self.u_start[k + 1];
            let mut acc = y[k];
            for t in lo..hi {
                acc -= self.u_vals[t] * y[self.u_steps[t] as usize];
            }
            y[k] = acc / self.u_diag[k];
        }
        // L^T backward solve.
        for k in (0..self.m).rev() {
            let lo = self.l_start[k];
            let hi = self.l_start[k + 1];
            let mut acc = y[k];
            for t in lo..hi {
                acc -= self.l_vals[t] * y[self.l_steps[t] as usize];
            }
            y[k] = acc;
        }
        // Step -> original-row space: out[rinv[k]] = y[k].
        let m = self.m;
        self.work[..m].copy_from_slice(&y[..m]);
        for k in 0..m {
            y[self.rinv[k] as usize] = self.work[k];
        }
        for k in 0..m {
            self.work[k] = 0.0;
        }
    }

    /// Records the pivot `basis[pos] := entering`, given the entering
    /// column's FTRAN image `d` (position space, sparse).
    ///
    /// `d[pos]` must be the pivot element (caller guarantees it exceeds
    /// the pivot tolerance).
    pub fn push_eta(&mut self, pos: usize, d: &WorkVec, keep_tol: f64) {
        let dp = d.vals[pos];
        debug_assert!(dp != 0.0);
        let mut sparse = Vec::with_capacity(d.nnz());
        for &i in &d.pattern {
            let v = d.vals[i as usize];
            if i as usize != pos && v.abs() > keep_tol {
                sparse.push((i, v));
            }
        }
        self.counts.update_nnz += sparse.len() + 1;
        self.etas.push(Eta { pos, d: sparse, dp });
    }

    /// Absorbs the pivot `basis[pos] := entering` using the configured
    /// update scheme; `d` is the entering column's FTRAN image (position
    /// space, sparse) with `d[pos]` the pivot element.
    ///
    /// Returns `false` when a Forrest–Tomlin update was declined by the
    /// stability monitor: the factorization then still represents the
    /// *old* basis and the caller must refactorize before the next solve.
    #[must_use]
    pub fn push_update(&mut self, pos: usize, d: &WorkVec, keep_tol: f64) -> bool {
        if self.ft.active {
            self.push_ft(pos, d, keep_tol)
        } else {
            self.push_eta(pos, d, keep_tol);
            true
        }
    }

    /// Forrest–Tomlin update: records the spike `s = U·d` as the new
    /// column at step `t` (the step pivoting basis position `pos`),
    /// eliminates row `t` against the trailing rows (one row eta), and
    /// rotates `t` to the last ordinal.
    fn push_ft(&mut self, pos: usize, d: &WorkVec, keep_tol: f64) -> bool {
        let m = self.m;
        let t = self.cpos[pos] as usize;
        let dp = d.vals[pos];
        debug_assert!(dp != 0.0);

        // Spike s = U·d in step space, scattered into `work` with its
        // pattern in `ft_pat` (d arrives in position space).
        self.epoch += 1;
        let epoch = self.epoch;
        let mut s_pat = std::mem::take(&mut self.ft_pat);
        s_pat.clear();
        for &p in &d.pattern {
            let xk = d.vals[p as usize];
            if xk == 0.0 {
                continue;
            }
            let k = self.cpos[p as usize] as usize;
            self.work[k] += self.ft.udiag[k] * xk;
            if self.stamp[k] != epoch {
                self.stamp[k] = epoch;
                s_pat.push(k as u32);
            }
            for &(j, u) in &self.ft.ucols[k] {
                self.work[j as usize] += u * xk;
                if self.stamp[j as usize] != epoch {
                    self.stamp[j as usize] = epoch;
                    s_pat.push(j);
                }
            }
        }
        let s_t = self.work[t];
        let mut s_inf = 0.0f64;
        for &j in &s_pat {
            s_inf = s_inf.max(self.work[j as usize].abs());
        }

        // Multipliers: row t of U against the trailing submatrix,
        // mᵀ·U_TT = u_{t,·}, i.e. one sparse transposed-U solve seeded
        // by the row's current entries.
        let mut mvec = std::mem::take(&mut self.ft_rhs);
        mvec.clear_to_dim(m);
        for &(c, val) in &self.ft.urows[t] {
            mvec.vals[c as usize] = val;
            mvec.pattern.push(c);
        }
        self.ft_solve_ut(&mut mvec);

        // New diagonal after eliminating row t of the spike column, and
        // the Forrest–Tomlin stability test: the same value is predicted
        // by the product form as d[pos]·u_tt; cancellation shows up as
        // disagreement and declines the update.
        let mut new_diag = s_t;
        for &c in &mvec.pattern {
            new_diag -= mvec.vals[c as usize] * self.work[c as usize];
        }
        let predicted = (dp * self.ft.udiag[t]).abs();
        let gap = (new_diag.abs() - predicted).abs();
        if new_diag.abs() <= FT_STAB_ABS * (1.0 + s_inf)
            || gap > FT_STAB_REL * predicted.max(new_diag.abs()).max(1.0)
        {
            for &j in &s_pat {
                self.work[j as usize] = 0.0;
            }
            self.ft_pat = s_pat;
            self.ft_rhs = mvec;
            self.count_refactor(RefactorCause::Unstable);
            return false;
        }

        // Commit. Remove row t from its columns (both adjacency sides)…
        let row_t = std::mem::take(&mut self.ft.urows[t]);
        for &(c, _) in &row_t {
            let col = &mut self.ft.ucols[c as usize];
            if let Some(i) = col.iter().position(|e| e.0 == t as u32) {
                col.swap_remove(i);
                self.ft.live_nnz -= 1;
            }
        }
        drop(row_t);
        // …drop the replaced column…
        let mut col = std::mem::take(&mut self.ft.ucols[t]);
        for &(j, _) in &col {
            let rw = &mut self.ft.urows[j as usize];
            if let Some(i) = rw.iter().position(|e| e.0 == t as u32) {
                rw.swap_remove(i);
                self.ft.live_nnz -= 1;
            }
        }
        col.clear();
        // …and insert the spike (row t lives on the diagonal).
        for &j in &s_pat {
            let v = self.work[j as usize];
            self.work[j as usize] = 0.0;
            if j as usize != t && v.abs() > keep_tol {
                col.push((j, v));
                self.ft.urows[j as usize].push((t as u32, v));
                self.ft.live_nnz += 1;
            }
        }
        let spike_len = col.len() + 1;
        self.ft.ucols[t] = col;
        self.ft.udiag[t] = new_diag;
        let mut multipliers = Vec::with_capacity(mvec.nnz());
        for &c in &mvec.pattern {
            let v = mvec.vals[c as usize];
            if v.abs() > keep_tol {
                multipliers.push((c, v));
            }
        }
        self.counts.ft_updates += 1;
        self.counts.spike_nnz += spike_len;
        self.counts.update_nnz += spike_len + multipliers.len();
        if !multipliers.is_empty() {
            self.ft.row_etas.push(RowEta {
                t: t as u32,
                m: multipliers,
            });
        }
        // Rotate t to the last ordinal (cyclic permutation keeps the
        // trailing rows' relative order, so U stays triangular).
        let pi = self.ft.ord_of[t] as usize;
        for i in pi..m - 1 {
            let s = self.ft.ord[i + 1];
            self.ft.ord[i] = s;
            self.ft.ord_of[s as usize] = i as u32;
        }
        self.ft.ord[m - 1] = t as u32;
        self.ft.ord_of[t] = (m - 1) as u32;
        self.ft.updates += 1;
        mvec.clear_to_dim(m);
        self.ft_rhs = mvec;
        s_pat.clear();
        self.ft_pat = s_pat;
        true
    }

    // ------------------------------------------------------------------
    // Hyper-sparse internals
    // ------------------------------------------------------------------

    /// Dense fallback for [`ftran`](Factorization::ftran): plain dense
    /// solve, pattern rebuilt by a scan.
    fn ftran_dense_branch(&mut self, v: &mut WorkVec) {
        self.counts.ftran_solves -= 1; // ftran_dense re-counts
        let mut out = std::mem::take(&mut self.dense_out);
        self.ftran_dense(&v.vals, &mut out);
        self.counts.ftran_nnz -= self.m; // counted by the caller instead
        std::mem::swap(&mut v.vals, &mut out);
        self.dense_out = out;
        rebuild_pattern(v);
    }

    /// Dense fallback for [`btran_sparse`](Factorization::btran_sparse).
    fn btran_dense_branch(&mut self, v: &mut WorkVec) {
        self.counts.btran_solves -= 1;
        let mut out = std::mem::take(&mut self.dense_out);
        self.btran(&v.vals, &mut out);
        self.counts.btran_nnz -= self.m;
        std::mem::swap(&mut v.vals, &mut out);
        self.dense_out = out;
        rebuild_pattern(v);
    }

    /// Symbolic reach + numeric forward solve with L (step space).
    fn solve_lower(&mut self, v: &mut WorkVec) {
        self.reach(&v.pattern, Graph::L);
        let mut order = std::mem::take(&mut self.reach_out);
        for idx in (0..order.len()).rev() {
            let k = order[idx] as usize;
            let x = v.vals[k];
            if x != 0.0 {
                for t in self.l_start[k]..self.l_start[k + 1] {
                    v.vals[self.l_steps[t] as usize] -= self.l_vals[t] * x;
                }
            }
        }
        std::mem::swap(&mut v.pattern, &mut order);
        self.reach_out = order;
    }

    /// Symbolic reach + numeric backward solve with U (step space).
    fn solve_upper(&mut self, v: &mut WorkVec) {
        self.reach(&v.pattern, Graph::U);
        let mut order = std::mem::take(&mut self.reach_out);
        for idx in (0..order.len()).rev() {
            let k = order[idx] as usize;
            let x = v.vals[k] / self.u_diag[k];
            v.vals[k] = x;
            if x != 0.0 {
                for t in self.u_start[k]..self.u_start[k + 1] {
                    v.vals[self.u_steps[t] as usize] -= self.u_vals[t] * x;
                }
            }
        }
        std::mem::swap(&mut v.pattern, &mut order);
        self.reach_out = order;
    }

    /// Symbolic reach + numeric forward solve with Uᵀ (step space).
    /// Reach follows the transposed adjacency; the numeric pass gathers
    /// through U's own columns.
    fn solve_upper_t(&mut self, v: &mut WorkVec) {
        self.reach(&v.pattern, Graph::Ut);
        let mut order = std::mem::take(&mut self.reach_out);
        for idx in (0..order.len()).rev() {
            let k = order[idx] as usize;
            let mut acc = v.vals[k];
            for t in self.u_start[k]..self.u_start[k + 1] {
                acc -= self.u_vals[t] * v.vals[self.u_steps[t] as usize];
            }
            v.vals[k] = acc / self.u_diag[k];
        }
        std::mem::swap(&mut v.pattern, &mut order);
        self.reach_out = order;
    }

    /// Symbolic reach + numeric backward solve with Lᵀ (step space).
    fn solve_lower_t(&mut self, v: &mut WorkVec) {
        self.reach(&v.pattern, Graph::Lt);
        let mut order = std::mem::take(&mut self.reach_out);
        for idx in (0..order.len()).rev() {
            let k = order[idx] as usize;
            let mut acc = v.vals[k];
            for t in self.l_start[k]..self.l_start[k + 1] {
                acc -= self.l_vals[t] * v.vals[self.l_steps[t] as usize];
            }
            v.vals[k] = acc;
        }
        std::mem::swap(&mut v.pattern, &mut order);
        self.reach_out = order;
    }

    /// Applies the FT row etas chronologically during FTRAN (gather
    /// form: each eta reads its own sparse entries). Step space.
    fn ft_apply_row_etas(&mut self, v: &mut WorkVec) {
        if self.ft.row_etas.is_empty() {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        for &i in &v.pattern {
            self.stamp[i as usize] = epoch;
        }
        for re in &self.ft.row_etas {
            let mut acc = v.vals[re.t as usize];
            for &(j, mj) in &re.m {
                acc -= mj * v.vals[j as usize];
            }
            if acc != 0.0 || self.stamp[re.t as usize] == epoch {
                if self.stamp[re.t as usize] != epoch {
                    self.stamp[re.t as usize] = epoch;
                    v.pattern.push(re.t);
                }
                v.vals[re.t as usize] = acc;
            }
        }
    }

    /// Applies the FT row-eta transposes newest-first during BTRAN
    /// (scatter form). Step space.
    fn ft_apply_row_etas_t(&mut self, v: &mut WorkVec) {
        if self.ft.row_etas.is_empty() {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        for &i in &v.pattern {
            self.stamp[i as usize] = epoch;
        }
        for re in self.ft.row_etas.iter().rev() {
            let t = v.vals[re.t as usize];
            if t != 0.0 {
                for &(j, mj) in &re.m {
                    v.vals[j as usize] -= mj * t;
                    if self.stamp[j as usize] != epoch {
                        self.stamp[j as usize] = epoch;
                        v.pattern.push(j);
                    }
                }
            }
        }
    }

    /// Symbolic reach + numeric backward solve with the dynamic `U`
    /// (step space): reverse DFS postorder finalizes each entry before
    /// it propagates down its column.
    fn ft_solve_u(&mut self, v: &mut WorkVec) {
        self.ft_reach(&v.pattern, false);
        let mut order = std::mem::take(&mut self.reach_out);
        for idx in (0..order.len()).rev() {
            let k = order[idx] as usize;
            let x = v.vals[k] / self.ft.udiag[k];
            v.vals[k] = x;
            if x != 0.0 {
                for &(j, u) in &self.ft.ucols[k] {
                    v.vals[j as usize] -= u * x;
                }
            }
        }
        std::mem::swap(&mut v.pattern, &mut order);
        self.reach_out = order;
    }

    /// Symbolic reach + numeric forward solve with the dynamic `Uᵀ`
    /// (step space), propagating through the row adjacency.
    fn ft_solve_ut(&mut self, v: &mut WorkVec) {
        self.ft_reach(&v.pattern, true);
        let mut order = std::mem::take(&mut self.reach_out);
        for idx in (0..order.len()).rev() {
            let k = order[idx] as usize;
            let y = v.vals[k] / self.ft.udiag[k];
            v.vals[k] = y;
            if y != 0.0 {
                for &(c, u) in &self.ft.urows[k] {
                    v.vals[c as usize] -= u * y;
                }
            }
        }
        std::mem::swap(&mut v.pattern, &mut order);
        self.reach_out = order;
    }

    /// DFS reach over the dynamic `U` adjacency (columns for FTRAN,
    /// rows for BTRAN), mirroring [`reach`](Factorization::reach).
    fn ft_reach(&mut self, seeds: &[u32], transposed: bool) {
        self.epoch += 1;
        let epoch = self.epoch;
        let adj = if transposed {
            &self.ft.urows
        } else {
            &self.ft.ucols
        };
        let stamp = &mut self.stamp;
        let stack = &mut self.dfs_stack;
        let out = &mut self.reach_out;
        out.clear();
        for &seed in seeds {
            if stamp[seed as usize] == epoch {
                continue;
            }
            stamp[seed as usize] = epoch;
            stack.push((seed, 0));
            while let Some(&(node, cursor)) = stack.last() {
                let list = &adj[node as usize];
                let mut c = cursor;
                let mut next_child = None;
                while c < list.len() {
                    let child = list[c].0;
                    c += 1;
                    if stamp[child as usize] != epoch {
                        next_child = Some(child);
                        break;
                    }
                }
                stack.last_mut().expect("non-empty").1 = c;
                match next_child {
                    Some(child) => {
                        stamp[child as usize] = epoch;
                        stack.push((child, 0));
                    }
                    None => {
                        stack.pop();
                        out.push(node);
                    }
                }
            }
        }
    }

    /// Dense L forward solve (step space).
    fn dense_lower(&self, x: &mut [f64]) {
        for k in 0..self.m {
            let v = x[k];
            if v != 0.0 {
                for t in self.l_start[k]..self.l_start[k + 1] {
                    x[self.l_steps[t] as usize] -= self.l_vals[t] * v;
                }
            }
        }
    }

    /// Dense Lᵀ backward solve (step space).
    fn dense_lower_t(&self, x: &mut [f64]) {
        for k in (0..self.m).rev() {
            let mut acc = x[k];
            for t in self.l_start[k]..self.l_start[k + 1] {
                acc -= self.l_vals[t] * x[self.l_steps[t] as usize];
            }
            x[k] = acc;
        }
    }

    /// DFS reach from `seeds` over one of the four triangular-solve
    /// dependency graphs. Leaves the closed pattern in `self.reach_out`
    /// in DFS postorder; reverse postorder is a topological order of the
    /// solve, so numeric passes can finalize each entry before it
    /// propagates.
    fn reach(&mut self, seeds: &[u32], graph: Graph) {
        self.epoch += 1;
        let epoch = self.epoch;
        let (start, idx): (&[usize], &[u32]) = match graph {
            Graph::L => (&self.l_start, &self.l_steps),
            Graph::U => (&self.u_start, &self.u_steps),
            Graph::Ut => (&self.ut_start, &self.ut_cols),
            Graph::Lt => (&self.lt_start, &self.lt_cols),
        };
        let stamp = &mut self.stamp;
        let stack = &mut self.dfs_stack;
        let out = &mut self.reach_out;
        out.clear();
        for &seed in seeds {
            if stamp[seed as usize] == epoch {
                continue;
            }
            stamp[seed as usize] = epoch;
            stack.push((seed, 0));
            while let Some(&(node, cursor)) = stack.last() {
                let lo = start[node as usize];
                let hi = start[node as usize + 1];
                let mut c = cursor;
                let mut next_child = None;
                while lo + c < hi {
                    let child = idx[lo + c];
                    c += 1;
                    if stamp[child as usize] != epoch {
                        next_child = Some(child);
                        break;
                    }
                }
                stack.last_mut().expect("non-empty").1 = c;
                match next_child {
                    Some(child) => {
                        stamp[child as usize] = epoch;
                        stack.push((child, 0));
                    }
                    None => {
                        stack.pop();
                        out.push(node);
                    }
                }
            }
        }
    }

    /// Permutes a work vector between index spaces, touching only its
    /// pattern.
    fn permute(&mut self, v: &mut WorkVec, map: PermMap) {
        let scratch = &mut self.perm_scratch;
        scratch.clear();
        for &i in &v.pattern {
            let to = match map {
                PermMap::RowToStep => self.rpos[i as usize],
                PermMap::StepToPos => self.cinv[i as usize],
                PermMap::PosToStep => self.cpos[i as usize],
                PermMap::StepToRow => self.rinv[i as usize],
            };
            scratch.push((to, v.vals[i as usize]));
            v.vals[i as usize] = 0.0;
        }
        v.pattern.clear();
        for &(i, val) in scratch.iter() {
            v.vals[i as usize] = val;
            v.pattern.push(i);
        }
    }

    /// Forward+backward dense LU solve with the vector in step space.
    fn lu_solve_in_step_space(&self, x: &mut [f64]) {
        // L forward.
        for k in 0..self.m {
            let v = x[k];
            if v != 0.0 {
                let lo = self.l_start[k];
                let hi = self.l_start[k + 1];
                for t in lo..hi {
                    x[self.l_steps[t] as usize] -= self.l_vals[t] * v;
                }
            }
        }
        // U backward.
        for k in (0..self.m).rev() {
            let v = x[k] / self.u_diag[k];
            x[k] = v;
            if v != 0.0 {
                let lo = self.u_start[k];
                let hi = self.u_start[k + 1];
                for t in lo..hi {
                    x[self.u_steps[t] as usize] -= self.u_vals[t] * v;
                }
            }
        }
    }

    /// In-place permute: step-space vector to position space.
    fn steps_to_positions(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.work[..m].copy_from_slice(&x[..m]);
        for k in 0..m {
            x[self.cinv[k] as usize] = self.work[k];
        }
        for k in 0..m {
            self.work[k] = 0.0;
        }
    }

    /// In-place permute: position-space vector to step space.
    fn positions_to_steps(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.work[..m].copy_from_slice(&x[..m]);
        for k in 0..m {
            x[k] = self.work[self.cinv[k] as usize];
        }
        for k in 0..m {
            self.work[k] = 0.0;
        }
    }
}

/// Which triangular-solve dependency graph a reach runs over.
#[derive(Clone, Copy)]
enum Graph {
    L,
    U,
    Ut,
    Lt,
}

/// Index-space maps for [`Factorization::permute`].
#[derive(Clone, Copy)]
enum PermMap {
    RowToStep,
    StepToPos,
    PosToStep,
    StepToRow,
}

/// Test-build invariant check on a hyper-sparse work vector: the
/// pattern holds no duplicates and every nonzero is on it. Violations
/// here mean a solve stage leaked values outside its symbolic reach —
/// the class of bug the stamped-pattern design exists to prevent.
#[cfg(test)]
fn debug_check_pattern(v: &WorkVec, stage: &str) {
    let mut seen = vec![false; v.dim()];
    for &i in &v.pattern {
        if seen[i as usize] {
            panic!("{stage}: duplicate pattern entry {i}");
        }
        seen[i as usize] = true;
    }
    for (i, &x) in v.vals.iter().enumerate() {
        if x != 0.0 && !seen[i] {
            panic!("{stage}: nonzero {x} at {i} off pattern");
        }
    }
}

/// No-op outside test builds: the checks scan the full dimension, which
/// would defeat hyper-sparsity in production.
#[cfg(not(test))]
fn debug_check_pattern(_v: &WorkVec, _stage: &str) {}

/// Rebuilds a work vector's pattern by scanning its dense values.
fn rebuild_pattern(v: &mut WorkVec) {
    v.pattern.clear();
    for (i, &x) in v.vals.iter().enumerate() {
        if x != 0.0 {
            v.pattern.push(i as u32);
        }
    }
}

/// Builds the transposed (indices-only) adjacency of a step-indexed
/// column structure: `out[s]` lists the columns holding an entry at `s`.
fn build_transpose(
    m: usize,
    start: &[usize],
    idx: &[u32],
    out_start: &mut Vec<usize>,
    out_cols: &mut Vec<u32>,
) {
    out_start.clear();
    out_start.resize(m + 1, 0);
    for &s in idx {
        out_start[s as usize + 1] += 1;
    }
    for i in 0..m {
        out_start[i + 1] += out_start[i];
    }
    out_cols.clear();
    out_cols.resize(idx.len(), 0);
    let mut cursor: Vec<usize> = out_start[..m].to_vec();
    for k in 0..m {
        for t in start[k]..start[k + 1] {
            let s = idx[t] as usize;
            out_cols[cursor[s]] = k as u32;
            cursor[s] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds an m x n CSC matrix from dense rows.
    fn csc_from_dense(rows: &[Vec<f64>]) -> CscMatrix {
        let m = rows.len();
        let n = rows[0].len();
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    cols[j].push((i as u32, v));
                }
            }
        }
        CscMatrix::from_columns(m, &cols)
    }

    /// Dense B·x for basis columns of a.
    fn basis_matvec(a: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows];
        for (pos, &col) in basis.iter().enumerate() {
            a.axpy_col(col, x[pos], &mut y);
        }
        y
    }

    /// Dense Bᵀ·y.
    fn basis_matvec_t(a: &CscMatrix, basis: &[usize], y: &[f64]) -> Vec<f64> {
        basis.iter().map(|&col| a.dot_col(col, y)).collect()
    }

    /// Asserts a work vector's pattern covers all its nonzeros and holds
    /// no duplicates.
    fn check_pattern(v: &WorkVec) {
        let mut seen = vec![false; v.dim()];
        for &i in &v.pattern {
            assert!(!seen[i as usize], "duplicate pattern entry {i}");
            seen[i as usize] = true;
        }
        for (i, &x) in v.vals.iter().enumerate() {
            assert!(
                x == 0.0 || seen[i],
                "nonzero {x} at {i} missing from pattern"
            );
        }
    }

    #[test]
    fn identity_basis() {
        let a = csc_from_dense(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let mut f = Factorization::new(3);
        f.refactor(&a, &[0, 1, 2], 1e-10).unwrap();
        let mut x = WorkVec::with_dim(3);
        f.ftran_col(&a, 1, &mut x);
        check_pattern(&x);
        assert_eq!(x.vals, vec![0.0, 1.0, 0.0]);
        let mut y = Vec::new();
        f.btran(&[3.0, -1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0, 2.0]);
        let mut r = WorkVec::with_dim(3);
        f.btran_unit(2, &mut r);
        check_pattern(&r);
        assert_eq!(r.vals, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn random_dense_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..30 {
            let m = rng.gen_range(2..12);
            // Random well-conditioned-ish matrix: diag dominant.
            let mut rows = vec![vec![0.0; m + 3]; m];
            for i in 0..m {
                for j in 0..m + 3 {
                    if rng.gen_bool(0.4) {
                        rows[i][j] = rng.gen_range(-2.0..2.0);
                    }
                }
                rows[i][i] += 4.0; // ensure the first m columns invertible
            }
            let a = csc_from_dense(&rows);
            let basis: Vec<usize> = (0..m).collect();
            let mut f = Factorization::new(m);
            f.refactor(&a, &basis, 1e-10)
                .unwrap_or_else(|s| panic!("trial {trial}: singular at {s:?}"));

            // Sparse FTRAN against every column of A.
            let mut x = WorkVec::with_dim(m);
            for col in 0..m + 3 {
                f.ftran_col(&a, col, &mut x);
                check_pattern(&x);
                let bx = basis_matvec(&a, &basis, &x.vals);
                let mut expect = vec![0.0; m];
                a.axpy_col(col, 1.0, &mut expect);
                for i in 0..m {
                    assert!(
                        (bx[i] - expect[i]).abs() < 1e-8,
                        "trial {trial} col {col}: Bx={bx:?} expect={expect:?}"
                    );
                }
            }
            // Dense BTRAN on random rhs.
            let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut y = Vec::new();
            f.btran(&c, &mut y);
            let bty = basis_matvec_t(&a, &basis, &y);
            for i in 0..m {
                assert!((bty[i] - c[i]).abs() < 1e-8);
            }
            // Sparse BTRAN on every unit vector.
            let mut r = WorkVec::with_dim(m);
            for pos in 0..m {
                f.btran_unit(pos, &mut r);
                check_pattern(&r);
                let bty = basis_matvec_t(&a, &basis, &r.vals);
                for (i, &bi) in bty.iter().enumerate() {
                    let want = if i == pos { 1.0 } else { 0.0 };
                    assert!(
                        (bi - want).abs() < 1e-8,
                        "trial {trial} unit {pos}: Bᵀrho[{i}]={bi}"
                    );
                }
            }
        }
    }

    #[test]
    fn singular_basis_detected() {
        let a = csc_from_dense(&[
            vec![1.0, 2.0, 0.0],
            vec![2.0, 4.0, 0.0], // col1 = 2*col0 in these two rows
            vec![0.0, 0.0, 1.0],
        ]);
        let mut f = Factorization::new(3);
        let err = f.refactor(&a, &[0, 1, 2], 1e-10);
        assert!(err.is_err());
    }

    #[test]
    fn eta_update_matches_refactor() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let m = rng.gen_range(3..10);
            let ncols = m + 5;
            let mut rows = vec![vec![0.0; ncols]; m];
            for i in 0..m {
                for j in 0..ncols {
                    if rng.gen_bool(0.5) {
                        rows[i][j] = rng.gen_range(-2.0..2.0);
                    }
                }
                rows[i][i] += 4.0;
                rows[i][m + (i % 5).min(4)] += 1.0;
            }
            let a = csc_from_dense(&rows);
            let mut basis: Vec<usize> = (0..m).collect();
            let mut f = Factorization::new(m);
            f.refactor(&a, &basis, 1e-10).unwrap();

            // Replace a couple of basis columns via eta updates.
            for _ in 0..2 {
                let entering = rng.gen_range(m..ncols);
                if basis.contains(&entering) {
                    continue;
                }
                let mut d = WorkVec::with_dim(m);
                f.ftran_col(&a, entering, &mut d);
                check_pattern(&d);
                // Pick the position with the largest |d| as the pivot.
                let (pos, dp) = d
                    .vals
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
                    .map(|(i, &v)| (i, v))
                    .unwrap();
                if dp.abs() < 1e-6 {
                    continue;
                }
                f.push_eta(pos, &d, 1e-14);
                basis[pos] = entering;

                // Updated factorization must solve against the new basis.
                let mut x = WorkVec::with_dim(m);
                for col in 0..ncols {
                    f.ftran_col(&a, col, &mut x);
                    check_pattern(&x);
                    let bx = basis_matvec(&a, &basis, &x.vals);
                    let mut expect = vec![0.0; m];
                    a.axpy_col(col, 1.0, &mut expect);
                    for i in 0..m {
                        assert!(
                            (bx[i] - expect[i]).abs() < 1e-7,
                            "col {col}: {:?} vs {expect:?}",
                            bx
                        );
                    }
                }
                let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let mut y = Vec::new();
                f.btran(&c, &mut y);
                let bty = basis_matvec_t(&a, &basis, &y);
                for i in 0..m {
                    assert!((bty[i] - c[i]).abs() < 1e-7);
                }
                let mut r = WorkVec::with_dim(m);
                for pos in 0..m {
                    f.btran_unit(pos, &mut r);
                    check_pattern(&r);
                    let bty = basis_matvec_t(&a, &basis, &r.vals);
                    for (i, &bi) in bty.iter().enumerate() {
                        let want = if i == pos { 1.0 } else { 0.0 };
                        assert!((bi - want).abs() < 1e-7);
                    }
                }
            }
        }
    }

    #[test]
    fn ft_update_matches_refactor() {
        // Forrest–Tomlin twin of `eta_update_matches_refactor`: replace
        // several basis columns through `push_update` under the FT mode
        // and check every FTRAN/BTRAN entry point against the new basis.
        let mut rng = StdRng::seed_from_u64(18);
        for trial in 0..25 {
            let m = rng.gen_range(3..12);
            let ncols = m + 6;
            let mut rows = vec![vec![0.0; ncols]; m];
            for i in 0..m {
                for j in 0..ncols {
                    if rng.gen_bool(0.5) {
                        rows[i][j] = rng.gen_range(-2.0..2.0);
                    }
                }
                rows[i][i] += 4.0;
                rows[i][m + (i % 6).min(5)] += 1.0;
            }
            let a = csc_from_dense(&rows);
            let mut basis: Vec<usize> = (0..m).collect();
            let mut f = Factorization::new(m);
            f.set_mode(BasisUpdate::ForrestTomlin);
            f.refactor(&a, &basis, 1e-10).unwrap();

            for _ in 0..4 {
                let entering = rng.gen_range(m..ncols);
                if basis.contains(&entering) {
                    continue;
                }
                let mut d = WorkVec::with_dim(m);
                f.ftran_col(&a, entering, &mut d);
                check_pattern(&d);
                let (pos, dp) = d
                    .vals
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
                    .map(|(i, &v)| (i, v))
                    .unwrap();
                if dp.abs() < 1e-6 {
                    continue;
                }
                if !f.push_update(pos, &d, 1e-14) {
                    // Declined by the stability monitor: refactorize,
                    // exactly as the simplex driver would.
                    basis[pos] = entering;
                    f.refactor(&a, &basis, 1e-10).unwrap();
                } else {
                    basis[pos] = entering;
                }

                let mut x = WorkVec::with_dim(m);
                for col in 0..ncols {
                    f.ftran_col(&a, col, &mut x);
                    check_pattern(&x);
                    let bx = basis_matvec(&a, &basis, &x.vals);
                    let mut expect = vec![0.0; m];
                    a.axpy_col(col, 1.0, &mut expect);
                    for i in 0..m {
                        assert!(
                            (bx[i] - expect[i]).abs() < 1e-7,
                            "trial {trial} col {col}: {bx:?} vs {expect:?}"
                        );
                    }
                }
                let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let mut y = Vec::new();
                f.btran(&c, &mut y);
                let bty = basis_matvec_t(&a, &basis, &y);
                for i in 0..m {
                    assert!((bty[i] - c[i]).abs() < 1e-7, "trial {trial} btran dense");
                }
                let mut r = WorkVec::with_dim(m);
                for pos in 0..m {
                    f.btran_unit(pos, &mut r);
                    check_pattern(&r);
                    let bty = basis_matvec_t(&a, &basis, &r.vals);
                    for (i, &bi) in bty.iter().enumerate() {
                        let want = if i == pos { 1.0 } else { 0.0 };
                        assert!((bi - want).abs() < 1e-7, "trial {trial} unit {pos}");
                    }
                }
            }
        }
    }

    #[test]
    fn ft_and_eta_solves_agree() {
        // Both update schemes applied to the same pivot sequence must
        // produce identical solves (they represent the same basis).
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..15 {
            let m = rng.gen_range(4..10);
            let ncols = m + 4;
            let mut rows = vec![vec![0.0; ncols]; m];
            for i in 0..m {
                for j in 0..ncols {
                    if rng.gen_bool(0.5) {
                        rows[i][j] = rng.gen_range(-2.0..2.0);
                    }
                }
                rows[i][i] += 4.0;
                rows[i][m + (i % 4).min(3)] += 1.0;
            }
            let a = csc_from_dense(&rows);
            let basis: Vec<usize> = (0..m).collect();
            let mut ft = Factorization::new(m);
            ft.set_mode(BasisUpdate::ForrestTomlin);
            ft.refactor(&a, &basis, 1e-10).unwrap();
            let mut eta = Factorization::new(m);
            eta.refactor(&a, &basis, 1e-10).unwrap();

            let mut live = basis.clone();
            for _ in 0..3 {
                let entering = rng.gen_range(m..ncols);
                if live.contains(&entering) {
                    continue;
                }
                let mut d_ft = WorkVec::with_dim(m);
                ft.ftran_col(&a, entering, &mut d_ft);
                let mut d_eta = WorkVec::with_dim(m);
                eta.ftran_col(&a, entering, &mut d_eta);
                for i in 0..m {
                    assert!(
                        (d_ft.vals[i] - d_eta.vals[i]).abs() < 1e-9,
                        "ftran diverged at {i}"
                    );
                }
                let (pos, dp) = d_ft
                    .vals
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
                    .map(|(i, &v)| (i, v))
                    .unwrap();
                if dp.abs() < 1e-6 {
                    continue;
                }
                assert!(ft.push_update(pos, &d_ft, 1e-14));
                assert!(eta.push_update(pos, &d_eta, 1e-14));
                live[pos] = entering;

                let mut rf = WorkVec::with_dim(m);
                let mut re = WorkVec::with_dim(m);
                for p in 0..m {
                    ft.btran_unit(p, &mut rf);
                    eta.btran_unit(p, &mut re);
                    for i in 0..m {
                        assert!(
                            (rf.vals[i] - re.vals[i]).abs() < 1e-9,
                            "btran diverged at unit {p} entry {i}"
                        );
                    }
                }
            }
            assert!(ft.op_counts().ft_updates > 0 || eta.update_count() == 0);
        }
    }

    #[test]
    fn permuted_identity_with_scaling() {
        // Rows hit in scrambled order with non-unit values.
        let a = csc_from_dense(&[
            vec![0.0, 0.0, 5.0],
            vec![2.0, 0.0, 0.0],
            vec![0.0, -3.0, 0.0],
        ]);
        let mut f = Factorization::new(3);
        f.refactor(&a, &[0, 1, 2], 1e-10).unwrap();
        let mut x = WorkVec::with_dim(3);
        f.ftran_col(&a, 0, &mut x); // B x = col0 -> x = e_0
        assert!((x.vals[0] - 1.0).abs() < 1e-12);
        assert!(x.vals[1].abs() < 1e-12 && x.vals[2].abs() < 1e-12);
    }

    #[test]
    fn hyper_sparse_solves_touch_few_entries() {
        // A bidiagonal basis: solving against a unit vector reaches only
        // a suffix/prefix, never all of m.
        let m = 64;
        let mut cols: Vec<Vec<(u32, f64)>> = Vec::new();
        for j in 0..m {
            let mut c = vec![(j as u32, 2.0)];
            if j + 1 < m {
                c.push((j as u32 + 1, -1.0));
            }
            cols.push(c);
        }
        let a = CscMatrix::from_columns(m, &cols);
        let basis: Vec<usize> = (0..m).collect();
        let mut f = Factorization::new(m);
        f.refactor(&a, &basis, 1e-10).unwrap();
        let before = f.op_counts();
        let mut x = WorkVec::with_dim(m);
        f.ftran_col(&a, m - 1, &mut x);
        let after = f.op_counts();
        // The last column's solve only involves the final few steps.
        assert!(
            after.ftran_nnz - before.ftran_nnz < m / 2,
            "ftran touched {} of {m} entries",
            after.ftran_nnz - before.ftran_nnz
        );
        let bx = basis_matvec(&a, &basis, &x.vals);
        let mut expect = vec![0.0; m];
        a.axpy_col(m - 1, 1.0, &mut expect);
        for i in 0..m {
            assert!((bx[i] - expect[i]).abs() < 1e-9);
        }
    }
}
