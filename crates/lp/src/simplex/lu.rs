//! Sparse LU factorization of the simplex basis (Gilbert–Peierls) with
//! product-form-of-the-inverse (eta) updates between refactorizations.
//!
//! The basis matrix `B` consists of `m` columns of the constraint matrix.
//! We factorize `P·B·Q = L·U` where `P` permutes rows (partial pivoting by
//! maximum magnitude) and `Q` orders columns by increasing nonzero count
//! (a static Markowitz-style heuristic that keeps fill low for the
//! near-triangular bases produced by time-indexed LPs).
//!
//! After each simplex pivot the factorization is *updated*, not rebuilt:
//! the update `B' = B·E` is recorded as an eta matrix `E` (identity with
//! one replaced column). FTRAN/BTRAN apply the eta file around the LU
//! solve. The file is discarded and `B` refactorized every
//! [`SolverOptions::refactor_interval`](crate::SolverOptions) pivots.

use crate::sparse::CscMatrix;

/// Index marker for "not yet pivoted".
const UNSET: u32 = u32::MAX;

/// A singular basis: the step at which no acceptable pivot existed.
#[derive(Clone, Copy, Debug)]
pub struct Singular {
    /// Elimination step that failed.
    pub step: usize,
    /// Basis position of the offending column.
    pub basis_pos: usize,
}

/// One product-form update: basis position `pos` was replaced by a column
/// whose FTRAN image (in basis-position space) is `d`.
struct Eta {
    pos: usize,
    /// Sparse `d`, excluding the `pos` entry.
    d: Vec<(u32, f64)>,
    /// `d[pos]`, the pivot element.
    dp: f64,
}

/// LU factors plus eta file. All `solve_*` methods work on dense vectors
/// in *basis-position* space except where noted.
pub struct Factorization {
    m: usize,
    /// orig row -> elimination step.
    rpos: Vec<u32>,
    /// step -> orig row.
    rinv: Vec<u32>,
    /// step -> basis position.
    cinv: Vec<u32>,
    // L columns (per step): original-row indices and values; implicit unit
    // diagonal. Entries' rows are pivoted at later steps.
    l_start: Vec<usize>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    // U columns (per step): step indices (< k) and values; diagonal apart.
    u_start: Vec<usize>,
    u_steps: Vec<u32>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    etas: Vec<Eta>,
    // Scratch buffers reused across factorizations and solves.
    work: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl Factorization {
    /// Creates an empty factorization sized for `m` rows.
    pub fn new(m: usize) -> Self {
        Factorization {
            m,
            rpos: vec![UNSET; m],
            rinv: vec![0; m],
            cinv: vec![0; m],
            l_start: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_start: vec![0],
            u_steps: Vec::new(),
            u_vals: Vec::new(),
            u_diag: Vec::new(),
            etas: Vec::new(),
            work: vec![0.0; m],
            stamp: vec![0; m],
            epoch: 0,
        }
    }

    /// Number of eta updates since the last refactorization.
    #[inline]
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total nonzeros across the eta file (fill indicator for the
    /// update chain; drives early refactorization).
    pub fn eta_nnz(&self) -> usize {
        self.etas.iter().map(|e| e.d.len() + 1).sum()
    }

    /// Total nonzeros in L and U (fill indicator).
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_steps.len() + self.u_diag.len()
    }

    /// Refactorizes from scratch: `basis[pos]` is the column index of `a`
    /// occupying basis position `pos`.
    ///
    /// # Errors
    ///
    /// [`Singular`] when a column turns out linearly dependent (pivot
    /// below `pivot_tol`).
    pub fn refactor(
        &mut self,
        a: &CscMatrix,
        basis: &[usize],
        pivot_tol: f64,
    ) -> Result<(), Singular> {
        let m = self.m;
        assert_eq!(basis.len(), m, "basis size must equal row count");
        self.rpos.iter_mut().for_each(|r| *r = UNSET);
        self.l_start.clear();
        self.l_start.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_start.clear();
        self.u_start.push(0);
        self.u_steps.clear();
        self.u_vals.clear();
        self.u_diag.clear();
        self.etas.clear();

        // Static column order: increasing nonzero count.
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&p| a.col_nnz(basis[p as usize]));

        // Gilbert–Peierls per column.
        let mut pattern: Vec<u32> = Vec::with_capacity(64);
        let mut dfs_stack: Vec<(u32, usize)> = Vec::with_capacity(64);
        for (k, &p) in order.iter().enumerate() {
            let col = basis[p as usize];
            self.epoch += 1;
            let epoch = self.epoch;
            pattern.clear();

            // Symbolic: reach of the column's pattern through pivoted rows,
            // collected in DFS postorder. A pivoted row `i` (eliminated at
            // step `rpos[i]`) propagates to the rows of L's column
            // `rpos[i]`; unpivoted rows are leaves.
            for (row, _) in a.col(col) {
                if self.stamp[row as usize] == epoch {
                    continue;
                }
                self.stamp[row as usize] = epoch;
                dfs_stack.push((row, 0));
                while let Some(&(node, cursor)) = dfs_stack.last() {
                    let step = self.rpos[node as usize];
                    let (lo, hi) = if step == UNSET {
                        (0, 0) // leaf
                    } else {
                        (self.l_start[step as usize], self.l_start[step as usize + 1])
                    };
                    let mut c = cursor;
                    let mut next_child = None;
                    while lo + c < hi {
                        let child = self.l_rows[lo + c];
                        c += 1;
                        if self.stamp[child as usize] != epoch {
                            next_child = Some(child);
                            break;
                        }
                    }
                    dfs_stack.last_mut().expect("non-empty").1 = c;
                    match next_child {
                        Some(child) => {
                            self.stamp[child as usize] = epoch;
                            dfs_stack.push((child, 0));
                        }
                        None => {
                            dfs_stack.pop();
                            pattern.push(node);
                        }
                    }
                }
            }

            // Numeric: scatter, then eliminate in topological order
            // (reverse postorder).
            for (row, val) in a.col(col) {
                self.work[row as usize] += val;
            }
            for idx in (0..pattern.len()).rev() {
                let node = pattern[idx];
                let step = self.rpos[node as usize];
                if step == UNSET {
                    continue;
                }
                let x = self.work[node as usize];
                if x != 0.0 {
                    let lo = self.l_start[step as usize];
                    let hi = self.l_start[step as usize + 1];
                    for t in lo..hi {
                        let r = self.l_rows[t] as usize;
                        self.work[r] -= self.l_vals[t] * x;
                    }
                }
            }

            // Pivot: max |work| over unpivoted pattern rows.
            let mut piv_row = UNSET;
            let mut piv_val = 0.0f64;
            for &node in &pattern {
                if self.rpos[node as usize] == UNSET {
                    let v = self.work[node as usize].abs();
                    if v > piv_val {
                        piv_val = v;
                        piv_row = node;
                    }
                }
            }
            if piv_row == UNSET || piv_val < pivot_tol {
                // Clear work before bailing.
                for &node in &pattern {
                    self.work[node as usize] = 0.0;
                }
                return Err(Singular {
                    step: k,
                    basis_pos: p as usize,
                });
            }
            let diag = self.work[piv_row as usize];

            // Emit U column k (pivoted rows) and L column k (unpivoted).
            for &node in &pattern {
                let v = self.work[node as usize];
                self.work[node as usize] = 0.0;
                if v == 0.0 || node == piv_row {
                    continue;
                }
                let step = self.rpos[node as usize];
                if step != UNSET {
                    self.u_steps.push(step);
                    self.u_vals.push(v);
                } else {
                    self.l_rows.push(node);
                    self.l_vals.push(v / diag);
                }
            }
            self.u_diag.push(diag);
            self.u_start.push(self.u_steps.len());
            self.l_start.push(self.l_rows.len());
            self.rpos[piv_row as usize] = k as u32;
            self.rinv[k] = piv_row;
            self.cinv[k] = p;
        }
        Ok(())
    }

    /// FTRAN: solves `B x = a_col` where `a_col` is column `col` of `a`.
    /// Output `x` is dense in basis-position space (length `m`).
    pub fn ftran_col(&mut self, a: &CscMatrix, col: usize, x: &mut Vec<f64>) {
        x.clear();
        x.resize(self.m, 0.0);
        // wstep[k] = a[rinv[k]]
        for (row, val) in a.col(col) {
            let k = self.rpos[row as usize];
            debug_assert_ne!(k, UNSET);
            x[k as usize] = val;
        }
        self.lu_solve_in_step_space(x);
        // Map step -> position space, in place via scratch.
        self.steps_to_positions(x);
        // Apply eta inverses in chronological order.
        for eta in &self.etas {
            let t = x[eta.pos] / eta.dp;
            if t != 0.0 {
                for &(i, di) in &eta.d {
                    x[i as usize] -= di * t;
                }
            }
            x[eta.pos] = t;
        }
    }

    /// FTRAN with a dense right-hand side: solves `B x = rhs` where `rhs`
    /// is dense in original-row space. Output `x` is dense in
    /// basis-position space.
    pub fn ftran_dense(&mut self, rhs: &[f64], x: &mut Vec<f64>) {
        debug_assert_eq!(rhs.len(), self.m);
        x.clear();
        x.resize(self.m, 0.0);
        for k in 0..self.m {
            x[k] = rhs[self.rinv[k] as usize];
        }
        self.lu_solve_in_step_space(x);
        self.steps_to_positions(x);
        for eta in &self.etas {
            let t = x[eta.pos] / eta.dp;
            if t != 0.0 {
                for &(i, di) in &eta.d {
                    x[i as usize] -= di * t;
                }
            }
            x[eta.pos] = t;
        }
    }

    /// BTRAN: solves `Bᵀ y = c` where `c` is dense in basis-position
    /// space. Output `y` is dense in *original row* space.
    pub fn btran(&mut self, c: &[f64], y: &mut Vec<f64>) {
        debug_assert_eq!(c.len(), self.m);
        y.clear();
        y.extend_from_slice(c);
        // Eta transposes, newest first.
        for eta in self.etas.iter().rev() {
            let mut acc = y[eta.pos];
            for &(i, di) in &eta.d {
                acc -= di * y[i as usize];
            }
            y[eta.pos] = acc / eta.dp;
        }
        // Position -> step space: z[k] = y[cinv[k]].
        self.positions_to_steps(y);
        // U^T forward solve.
        for k in 0..self.m {
            let lo = self.u_start[k];
            let hi = self.u_start[k + 1];
            let mut acc = y[k];
            for t in lo..hi {
                acc -= self.u_vals[t] * y[self.u_steps[t] as usize];
            }
            y[k] = acc / self.u_diag[k];
        }
        // L^T backward solve.
        for k in (0..self.m).rev() {
            let lo = self.l_start[k];
            let hi = self.l_start[k + 1];
            let mut acc = y[k];
            for t in lo..hi {
                let step = self.rpos[self.l_rows[t] as usize];
                debug_assert_ne!(step, UNSET);
                acc -= self.l_vals[t] * y[step as usize];
            }
            y[k] = acc;
        }
        // Step -> original-row space: out[rinv[k]] = y[k].
        let m = self.m;
        self.work[..m].copy_from_slice(&y[..m]);
        for k in 0..m {
            y[self.rinv[k] as usize] = self.work[k];
        }
        for k in 0..m {
            self.work[k] = 0.0;
        }
    }

    /// Records the pivot `basis[pos] := entering`, given the entering
    /// column's FTRAN image `d` (position space).
    ///
    /// `d[pos]` must be the pivot element (caller guarantees it exceeds
    /// the pivot tolerance).
    pub fn push_eta(&mut self, pos: usize, d: &[f64], keep_tol: f64) {
        let dp = d[pos];
        debug_assert!(dp != 0.0);
        let mut sparse = Vec::with_capacity(8);
        for (i, &v) in d.iter().enumerate() {
            if i != pos && v.abs() > keep_tol {
                sparse.push((i as u32, v));
            }
        }
        self.etas.push(Eta { pos, d: sparse, dp });
    }

    /// Forward+backward LU solve with the vector in step space.
    fn lu_solve_in_step_space(&self, x: &mut [f64]) {
        // L forward.
        for k in 0..self.m {
            let v = x[k];
            if v != 0.0 {
                let lo = self.l_start[k];
                let hi = self.l_start[k + 1];
                for t in lo..hi {
                    let step = self.rpos[self.l_rows[t] as usize] as usize;
                    x[step] -= self.l_vals[t] * v;
                }
            }
        }
        // U backward.
        for k in (0..self.m).rev() {
            let v = x[k] / self.u_diag[k];
            x[k] = v;
            if v != 0.0 {
                let lo = self.u_start[k];
                let hi = self.u_start[k + 1];
                for t in lo..hi {
                    x[self.u_steps[t] as usize] -= self.u_vals[t] * v;
                }
            }
        }
    }

    /// In-place permute: step-space vector to position space.
    fn steps_to_positions(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.work[..m].copy_from_slice(&x[..m]);
        for k in 0..m {
            x[self.cinv[k] as usize] = self.work[k];
        }
        for k in 0..m {
            self.work[k] = 0.0;
        }
    }

    /// In-place permute: position-space vector to step space.
    fn positions_to_steps(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.work[..m].copy_from_slice(&x[..m]);
        for k in 0..m {
            x[k] = self.work[self.cinv[k] as usize];
        }
        for k in 0..m {
            self.work[k] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds an m x n CSC matrix from dense rows.
    fn csc_from_dense(rows: &[Vec<f64>]) -> CscMatrix {
        let m = rows.len();
        let n = rows[0].len();
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    cols[j].push((i as u32, v));
                }
            }
        }
        CscMatrix::from_columns(m, &cols)
    }

    /// Dense B·x for basis columns of a.
    fn basis_matvec(a: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows];
        for (pos, &col) in basis.iter().enumerate() {
            a.axpy_col(col, x[pos], &mut y);
        }
        y
    }

    /// Dense Bᵀ·y.
    fn basis_matvec_t(a: &CscMatrix, basis: &[usize], y: &[f64]) -> Vec<f64> {
        basis.iter().map(|&col| a.dot_col(col, y)).collect()
    }

    #[test]
    fn identity_basis() {
        let a = csc_from_dense(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let mut f = Factorization::new(3);
        f.refactor(&a, &[0, 1, 2], 1e-10).unwrap();
        let mut x = Vec::new();
        // Solve B x = e_1 via a column equal to e_1 (column 0).
        f.ftran_col(&a, 1, &mut x);
        assert_eq!(x, vec![0.0, 1.0, 0.0]);
        let mut y = Vec::new();
        f.btran(&[3.0, -1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn random_dense_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..30 {
            let m = rng.gen_range(2..12);
            // Random well-conditioned-ish matrix: diag dominant.
            let mut rows = vec![vec![0.0; m + 3]; m];
            for i in 0..m {
                for j in 0..m + 3 {
                    if rng.gen_bool(0.4) {
                        rows[i][j] = rng.gen_range(-2.0..2.0);
                    }
                }
                rows[i][i] += 4.0; // ensure the first m columns invertible
            }
            let a = csc_from_dense(&rows);
            let basis: Vec<usize> = (0..m).collect();
            let mut f = Factorization::new(m);
            f.refactor(&a, &basis, 1e-10)
                .unwrap_or_else(|s| panic!("trial {trial}: singular at {s:?}"));

            // FTRAN against every column of A (including non-basis ones).
            let mut x = Vec::new();
            for col in 0..m + 3 {
                f.ftran_col(&a, col, &mut x);
                let bx = basis_matvec(&a, &basis, &x);
                let mut expect = vec![0.0; m];
                a.axpy_col(col, 1.0, &mut expect);
                for i in 0..m {
                    assert!(
                        (bx[i] - expect[i]).abs() < 1e-8,
                        "trial {trial} col {col}: Bx={bx:?} expect={expect:?}"
                    );
                }
            }
            // BTRAN on random rhs.
            let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut y = Vec::new();
            f.btran(&c, &mut y);
            let bty = basis_matvec_t(&a, &basis, &y);
            for i in 0..m {
                assert!((bty[i] - c[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn singular_basis_detected() {
        let a = csc_from_dense(&[
            vec![1.0, 2.0, 0.0],
            vec![2.0, 4.0, 0.0], // col1 = 2*col0 in these two rows
            vec![0.0, 0.0, 1.0],
        ]);
        let mut f = Factorization::new(3);
        let err = f.refactor(&a, &[0, 1, 2], 1e-10);
        assert!(err.is_err());
    }

    #[test]
    fn eta_update_matches_refactor() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let m = rng.gen_range(3..10);
            let ncols = m + 5;
            let mut rows = vec![vec![0.0; ncols]; m];
            for i in 0..m {
                for j in 0..ncols {
                    if rng.gen_bool(0.5) {
                        rows[i][j] = rng.gen_range(-2.0..2.0);
                    }
                }
                rows[i][i] += 4.0;
                rows[i][m + (i % 5).min(4)] += 1.0;
            }
            let a = csc_from_dense(&rows);
            let mut basis: Vec<usize> = (0..m).collect();
            let mut f = Factorization::new(m);
            f.refactor(&a, &basis, 1e-10).unwrap();

            // Replace a couple of basis columns via eta updates.
            for _ in 0..2 {
                let entering = rng.gen_range(m..ncols);
                if basis.contains(&entering) {
                    continue;
                }
                let mut d = Vec::new();
                f.ftran_col(&a, entering, &mut d);
                // Pick the position with the largest |d| as the pivot.
                let (pos, dp) = d
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
                    .map(|(i, &v)| (i, v))
                    .unwrap();
                if dp.abs() < 1e-6 {
                    continue;
                }
                f.push_eta(pos, &d, 1e-14);
                basis[pos] = entering;

                // Updated factorization must solve against the new basis.
                let mut x = Vec::new();
                for col in 0..ncols {
                    f.ftran_col(&a, col, &mut x);
                    let bx = basis_matvec(&a, &basis, &x);
                    let mut expect = vec![0.0; m];
                    a.axpy_col(col, 1.0, &mut expect);
                    for i in 0..m {
                        assert!(
                            (bx[i] - expect[i]).abs() < 1e-7,
                            "col {col}: {bx:?} vs {expect:?}"
                        );
                    }
                }
                let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let mut y = Vec::new();
                f.btran(&c, &mut y);
                let bty = basis_matvec_t(&a, &basis, &y);
                for i in 0..m {
                    assert!((bty[i] - c[i]).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn permuted_identity_with_scaling() {
        // Rows hit in scrambled order with non-unit values.
        let a = csc_from_dense(&[
            vec![0.0, 0.0, 5.0],
            vec![2.0, 0.0, 0.0],
            vec![0.0, -3.0, 0.0],
        ]);
        let mut f = Factorization::new(3);
        f.refactor(&a, &[0, 1, 2], 1e-10).unwrap();
        let mut x = Vec::new();
        f.ftran_col(&a, 0, &mut x); // B x = col0 -> x = e_0
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12 && x[2].abs() < 1e-12);
    }
}
