//! Warm-started re-solves and the bounded-variable dual simplex.
//!
//! Re-optimizing a perturbed LP from scratch throws away the basis the
//! previous solve worked hard for. This module keeps it:
//!
//! * [`Basis`] snapshots the final simplex basis of a solve in terms of
//!   the *model* (one status per variable, one per constraint slack), so
//!   it survives scaling and can be handed to a later solve of any model
//!   with the same shape.
//! * [`solve_warm`] installs a snapshot and picks the cheapest road back
//!   to optimality: after a right-hand-side or bound change the old
//!   basis stays **dual feasible**, so a few dual-simplex pivots fix the
//!   primal violations; after an objective change the basis stays
//!   **primal feasible**, so primal phase 2 resumes directly and phase 1
//!   is a no-op. Only when both sides were broken does it fall back to
//!   the ordinary two-phase method — still warm, still cheaper than the
//!   all-slack start.
//!
//! The dual simplex is the textbook bounded-variable variant: pick the
//! most-violated basic variable, price its pivot row, run the dual ratio
//! test (ties broken by the largest pivot for stability, or by smallest
//! index once degeneracy triggers the Bland fallback), and let the
//! entering variable absorb the violation. Dual unboundedness certifies
//! primal infeasibility.
//!
//! Warm solves skip presolve: a basis snapshot refers to the unreduced
//! model, and mapping statuses through row/column eliminations would tie
//! the snapshot to one presolve trace. Scaling is unaffected — statuses
//! are scale-invariant.

use super::{trivial_solve, CStat, ScaledSolution, Simplex, SolverOptions, StepOutcome};
use crate::error::LpError;
use crate::model::Model;
use crate::solution::{Solution, Status};
use crate::standard::StdForm;

/// Status of one column in a [`Basis`] snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BasisStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
    /// Nonbasic free variable (held at zero).
    Free,
}

/// A simplex basis snapshot, expressed against the model: one status per
/// variable and one per constraint (for the row's slack).
///
/// Obtain one from [`Model::solve_warm`](crate::Model::solve_warm) and
/// feed it back to a later `solve_warm` after perturbing the model. The
/// snapshot is only usable on a model with the same number of variables
/// and constraints; anything else is silently treated as a cold start.
#[derive(Clone, Debug)]
pub struct Basis {
    /// One status per model variable, indexed like
    /// [`VarId::index`](crate::VarId::index).
    pub vars: Vec<BasisStatus>,
    /// One status per model constraint (the slack of that row).
    pub rows: Vec<BasisStatus>,
}

impl Basis {
    /// The all-slack cold-start basis for given model dimensions: every
    /// row's slack basic, every variable nonbasic at a bound.
    pub fn all_slack(num_vars: usize, num_rows: usize) -> Basis {
        Basis {
            vars: vec![BasisStatus::Lower; num_vars],
            rows: vec![BasisStatus::Basic; num_rows],
        }
    }

    /// Grows a snapshot to match a model that gained variables and/or
    /// constraints since the solve that produced it: appended variables
    /// enter nonbasic at their lower bound and appended rows contribute
    /// their slack to the basis, so the grown basis is square again and
    /// [`Model::solve_warm`](crate::Model::solve_warm) can dual-simplex
    /// back to optimality instead of treating the snapshot as a cold
    /// start. Panics if either dimension shrinks — deleting structure
    /// invalidates a basis and needs a cold solve.
    pub fn grow(&mut self, num_vars: usize, num_rows: usize) {
        assert!(
            num_vars >= self.vars.len() && num_rows >= self.rows.len(),
            "Basis::grow cannot shrink a snapshot ({}x{} -> {num_vars}x{num_rows})",
            self.vars.len(),
            self.rows.len(),
        );
        self.vars.resize(num_vars, BasisStatus::Lower);
        self.rows.resize(num_rows, BasisStatus::Basic);
    }

    /// Crashes a basis from a primal point (typically an optimal
    /// solution whose basis was not captured — e.g. a presolved
    /// [`Model::solve`](crate::Model::solve)): variables sitting on a
    /// bound become nonbasic there, everything strictly between its
    /// bounds becomes basic, and each row's slack status is read off the
    /// row activity. The result is generally *not* the simplex basis
    /// that produced the point (degenerate vertices leave basic
    /// variables parked on bounds), but installed via
    /// [`Model::solve_warm`](crate::Model::solve_warm) it is primal
    /// feasible at the point, so a warm re-solve starts from a handful
    /// of pivots instead of the all-slack crash.
    pub fn from_point(model: &Model, x: &[f64]) -> Basis {
        let at = |v: f64, bound: f64| (v - bound).abs() <= 1e-9 * (1.0 + bound.abs());
        let vars = (0..model.num_vars())
            .map(|j| {
                let v = crate::VarId::from_index(j);
                let (lb, ub) = model.var_bounds(v);
                if lb.is_finite() && at(x[j], lb) {
                    BasisStatus::Lower
                } else if ub.is_finite() && at(x[j], ub) {
                    BasisStatus::Upper
                } else {
                    BasisStatus::Basic
                }
            })
            .collect();
        let rows = model
            .constraints_iter()
            .map(|c| {
                let activity: f64 = c.terms().map(|(v, a)| a * x[v.index()]).sum();
                let binding = at(activity, c.rhs());
                match c.cmp() {
                    crate::Cmp::Le if binding => BasisStatus::Lower,
                    crate::Cmp::Ge if binding => BasisStatus::Upper,
                    crate::Cmp::Eq => BasisStatus::Lower,
                    _ => BasisStatus::Basic,
                }
            })
            .collect();
        Basis { vars, rows }
    }

    /// Number of `Basic` entries across variables and rows.
    pub fn num_basic(&self) -> usize {
        self.vars
            .iter()
            .chain(self.rows.iter())
            .filter(|&&s| s == BasisStatus::Basic)
            .count()
    }
}

/// Entry point used by [`Model::solve_warm`].
pub fn solve_warm(
    model: &Model,
    warm: Option<&Basis>,
    options: &SolverOptions,
) -> Result<(Solution, Basis), LpError> {
    if options.engine == super::LpEngine::Dense {
        // The dense tableau oracle has no basis machinery: every solve
        // is cold, and the returned snapshot is crashed from the point.
        let sol = crate::dense::solve(model)?;
        let basis = Basis::from_point(model, &sol.x);
        return Ok((sol, basis));
    }
    let sf = StdForm::build(model, options.scale);
    if sf.m == 0 {
        let xs = trivial_solve(&sf)?;
        let vars = (0..sf.n_struct)
            .map(|j| {
                if sf.lb[j].is_finite() && xs.x[j] == sf.lb[j] {
                    BasisStatus::Lower
                } else if sf.ub[j].is_finite() && xs.x[j] == sf.ub[j] {
                    BasisStatus::Upper
                } else {
                    BasisStatus::Free
                }
            })
            .collect();
        let x = sf.unscale_solution(&xs.x);
        let objective = model.objective_at(&x);
        return Ok((
            Solution {
                status: Status::Optimal,
                objective,
                x,
                duals: Some(Vec::new()),
                iterations: 0,
                refactorizations: 0,
                stats: Default::default(),
            },
            Basis {
                vars,
                rows: Vec::new(),
            },
        ));
    }

    let mut s = Simplex::new(&sf, options);
    let warm_usable = warm.is_some_and(|b| b.vars.len() == sf.n_struct && b.rows.len() == sf.m);
    let scaled = if warm_usable {
        s.install_basis(warm.expect("checked above"));
        s.run_warm()?
    } else {
        s.run()?
    };
    let basis = s.snapshot_basis();
    let x = sf.unscale_solution(&scaled.x);
    let duals = Some(sf.unscale_duals(&scaled.y, model.sense));
    let objective = model.objective_at(&x);
    Ok((
        Solution {
            status: Status::Optimal,
            objective,
            x,
            duals,
            iterations: scaled.iterations,
            refactorizations: scaled.refactorizations,
            stats: scaled.stats(),
        },
        basis,
    ))
}

impl Simplex<'_> {
    /// Overwrites the all-slack crash basis with a snapshot, sanitizing
    /// statuses against bounds and repairing the basic-column count so a
    /// square basis always comes out.
    pub(super) fn install_basis(&mut self, b: &Basis) {
        let n_struct = self.sf.n_struct;
        let m = self.sf.m;
        let mut basic_cols: Vec<usize> = Vec::with_capacity(m);
        for j in 0..self.sf.n {
            let want = if j < n_struct {
                b.vars[j]
            } else {
                b.rows[j - n_struct]
            };
            self.stat[j] = match want {
                BasisStatus::Basic => {
                    basic_cols.push(j);
                    CStat::Basic
                }
                BasisStatus::Lower => CStat::Lower,
                BasisStatus::Upper => CStat::Upper,
                BasisStatus::Free => CStat::Free,
            };
        }
        // Sanitize nonbasic statuses whose bound does not exist (the
        // snapshot may come from a model with different bounds).
        for j in 0..self.sf.n {
            let (lb, ub) = (self.sf.lb[j], self.sf.ub[j]);
            self.stat[j] = match self.stat[j] {
                CStat::Lower if !lb.is_finite() => {
                    if ub.is_finite() {
                        CStat::Upper
                    } else {
                        CStat::Free
                    }
                }
                CStat::Upper if !ub.is_finite() => {
                    if lb.is_finite() {
                        CStat::Lower
                    } else {
                        CStat::Free
                    }
                }
                CStat::Free if lb.is_finite() => CStat::Lower,
                CStat::Free if ub.is_finite() => CStat::Upper,
                other => other,
            };
        }
        // Cardinality repair: a square basis needs exactly m columns.
        while basic_cols.len() > m {
            let j = basic_cols.pop().expect("nonempty");
            self.stat[j] = if self.sf.lb[j].is_finite() {
                CStat::Lower
            } else if self.sf.ub[j].is_finite() {
                CStat::Upper
            } else {
                CStat::Free
            };
        }
        if basic_cols.len() < m {
            for r in 0..m {
                if basic_cols.len() == m {
                    break;
                }
                let sj = n_struct + r;
                if self.stat[sj] != CStat::Basic {
                    self.stat[sj] = CStat::Basic;
                    basic_cols.push(sj);
                }
            }
        }
        debug_assert_eq!(basic_cols.len(), m);
        self.basis.clear();
        self.basis.extend_from_slice(&basic_cols);
        self.pos_of.iter_mut().for_each(|p| *p = u32::MAX);
        for (i, &j) in self.basis.iter().enumerate() {
            self.pos_of[j] = i as u32;
        }
        // Nonbasic columns rest at their snapshot bound.
        for j in 0..self.sf.n {
            self.x[j] = match self.stat[j] {
                CStat::Basic => 0.0, // recomputed by refactor
                CStat::Lower => self.sf.lb[j],
                CStat::Upper => self.sf.ub[j],
                CStat::Free => 0.0,
            };
        }
    }

    /// Exports the current basis as a model-space snapshot.
    pub(super) fn snapshot_basis(&self) -> Basis {
        let to_pub = |s: CStat| match s {
            CStat::Basic => BasisStatus::Basic,
            CStat::Lower => BasisStatus::Lower,
            CStat::Upper => BasisStatus::Upper,
            CStat::Free => BasisStatus::Free,
        };
        Basis {
            vars: (0..self.sf.n_struct)
                .map(|j| to_pub(self.stat[j]))
                .collect(),
            rows: (self.sf.n_struct..self.sf.n)
                .map(|j| to_pub(self.stat[j]))
                .collect(),
        }
    }

    /// Warm-started optimization: dual simplex when the installed basis
    /// is (or can be flipped) dual feasible, the ordinary primal phases
    /// otherwise.
    pub(super) fn run_warm(&mut self) -> Result<ScaledSolution, LpError> {
        // Factorize the installed basis (repairing singularity) and get
        // basic values plus reduced costs.
        self.refactor_and_recompute(false)?;

        if !self.make_dual_feasible() {
            // Dual-infeasible start (objective changed, or a foreign
            // snapshot). The primal phases still profit from the basis.
            return self.run();
        }
        // Bound flips moved nonbasic values; refresh basic values.
        self.refactor_and_recompute(false)?;

        // ---- Dual simplex until primal feasible ----
        // Stall guard: a snapshot can be so far from the new optimum
        // that dual pivoting degenerates into a grind (observed on
        // resolves that double the model size). Past a budget linear in
        // the row count, cut losses and restart cold from the all-slack
        // basis — total work then stays within budget + one cold solve,
        // so a pathological warm start can never be much *worse* than
        // cold.
        let start_iterations = self.iterations;
        let dual_budget = 3 * self.sf.m + 1000;
        let mut retried = false;
        loop {
            if self.max_infeasibility() <= self.opt.feas_tol {
                break;
            }
            if self.iterations >= self.max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            if self.iterations - start_iterations > dual_budget {
                self.reset_to_all_slack();
                return self.run();
            }
            self.maybe_refactor(false)?;
            match self.dual_step()? {
                StepOutcome::Moved => {
                    retried = false;
                }
                StepOutcome::OptimalOrFeasible => break,
                StepOutcome::Unbounded => {
                    // Dual unbounded certifies primal infeasibility —
                    // but rule out stale-factorization drift first.
                    if !retried {
                        retried = true;
                        self.refactor_and_recompute(false)?;
                        continue;
                    }
                    return Err(LpError::Infeasible);
                }
            }
        }

        // ---- Primal phase-2 polish ----
        // Recompute duals from scratch (kills incremental drift), then
        // let the primal certify optimality; with exact dual feasibility
        // it exits without pivoting.
        self.refactor_and_recompute(false)?;
        loop {
            if self.iterations >= self.max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.maybe_refactor(false)?;
            match self.phase2_step()? {
                StepOutcome::Moved => {}
                StepOutcome::OptimalOrFeasible => break,
                StepOutcome::Unbounded => return Err(LpError::Unbounded),
            }
        }
        self.refactor_and_recompute(false)?;
        let y = self.scaled_duals();
        Ok(self.finish(y))
    }

    /// Restores dual feasibility by flipping nonbasic variables whose
    /// reduced cost points past their current bound onto the opposite
    /// (finite) bound. Returns `false` when some violation cannot be
    /// flipped away (infinite opposite bound, or a free variable with a
    /// nonzero reduced cost).
    fn make_dual_feasible(&mut self) -> bool {
        for j in 0..self.sf.n {
            if self.stat[j] == CStat::Basic {
                continue;
            }
            let tol = self.opt.opt_tol * (1.0 + self.sf.c[j].abs()) + 1e-9;
            match self.stat[j] {
                CStat::Lower if self.z[j] < -tol => {
                    if self.sf.ub[j].is_finite() {
                        self.stat[j] = CStat::Upper;
                        self.x[j] = self.sf.ub[j];
                    } else {
                        return false;
                    }
                }
                CStat::Upper if self.z[j] > tol => {
                    if self.sf.lb[j].is_finite() {
                        self.stat[j] = CStat::Lower;
                        self.x[j] = self.sf.lb[j];
                    } else {
                        return false;
                    }
                }
                CStat::Free if self.z[j].abs() > tol => return false,
                _ => {}
            }
        }
        true
    }

    /// One dual-simplex pivot with a bound-flipping ratio test (BFRT).
    /// `Unbounded` means the *dual* is unbounded, i.e. the primal is
    /// infeasible.
    fn dual_step(&mut self) -> Result<StepOutcome, LpError> {
        let feas_tol = self.opt.feas_tol;

        // 1. Leaving row: most-violated basic variable, optionally
        // scaled by the dual row weights (Devex proxy, or exact dual
        // steepest edge under `Pricing::SteepestEdge`).
        let use_devex = self.opt.pricing != super::Pricing::Dantzig && !self.bland;
        let mut r = usize::MAX;
        let mut worst = 0.0f64;
        let mut best_score = 0.0f64;
        let mut to_upper = false;
        for (i, &j) in self.basis.iter().enumerate() {
            let v = self.x[j];
            let above = v - self.sf.ub[j];
            let below = self.sf.lb[j] - v;
            let (viol, up) = if above >= below {
                (above, true)
            } else {
                (below, false)
            };
            if viol <= feas_tol {
                continue;
            }
            let score = if use_devex {
                viol * viol / self.dual_w[i]
            } else {
                viol
            };
            if score > best_score {
                best_score = score;
                worst = viol;
                r = i;
                to_upper = up;
            }
        }
        if r == usize::MAX {
            return Ok(StepOutcome::OptimalOrFeasible);
        }
        self.iterations += 1;
        let jl = self.basis[r];
        let target = if to_upper {
            self.sf.ub[jl]
        } else {
            self.sf.lb[jl]
        };
        // `s`: +1 when the leaving variable sits above its upper bound
        // (x_Br must decrease), -1 when below its lower bound.
        let s = if to_upper { 1.0 } else { -1.0 };

        // 2. Pivot row: rho = B^{-T} e_r (hyper-sparse), alpha_j =
        // rho · a_j via the CSR rows of rho's pattern.
        let mut rho = std::mem::take(&mut self.rho_work);
        self.facto.btran_unit(r, &mut rho);
        self.alpha_touched.clear();
        for (i, ri) in rho.iter() {
            if ri.abs() <= 1e-12 {
                continue;
            }
            for (jcol, v) in self.sf.a_csr.row(i as usize) {
                let j = jcol as usize;
                if self.alpha_buf[j] == 0.0 {
                    self.alpha_touched.push(jcol);
                }
                self.alpha_buf[j] += ri * v;
            }
        }
        self.rho_work = rho;

        // 3. Bound-flipping dual ratio test. Collect every eligible
        // breakpoint `(ratio, |alpha|, col)`; if none remains, the
        // violated row certifies primal infeasibility. Fixed columns
        // (lb == ub) cannot absorb primal movement and are excluded by
        // `dual_ratio`.
        let touched = std::mem::take(&mut self.alpha_touched);
        let mut bps = std::mem::take(&mut self.breakpoints);
        bps.clear();
        for &jcol in &touched {
            let j = jcol as usize;
            if let Some(ratio) = self.dual_ratio(j, s) {
                bps.push((ratio, self.alpha_buf[j].abs(), jcol));
            }
        }
        if bps.is_empty() {
            for &jcol in &touched {
                self.alpha_buf[jcol as usize] = 0.0;
            }
            self.alpha_touched = touched;
            self.breakpoints = bps;
            return Ok(StepOutcome::Unbounded);
        }

        // Walk breakpoints in ratio order. A boxed column whose capacity
        // |alpha|·(ub−lb) cannot absorb the remaining violation is
        // *flipped* to its opposite bound instead of entering — many
        // breakpoints collapse into one pivot, which is what breaks the
        // degenerate churn on warm re-solves whose appended columns all
        // sit at ratio zero. The entering column is the breakpoint where
        // the violation finally crosses zero. Bland mode keeps the plain
        // shortest-ratio/smallest-index rule (termination guarantee).
        bps.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut cross = 0usize;
        if !self.bland {
            let mut delta = worst;
            while cross + 1 < bps.len() {
                let (_, a, jcol) = bps[cross];
                let j = jcol as usize;
                let span = self.sf.ub[j] - self.sf.lb[j];
                if !span.is_finite() {
                    break;
                }
                let cap = a * span;
                if delta - cap <= feas_tol {
                    break;
                }
                delta -= cap;
                cross += 1;
            }
        }
        // Entering choice at the crossing: stability wants the biggest
        // pivot among near-minimal remaining ratios; Bland mode wants
        // the smallest index.
        let cross_ratio = bps[cross].0;
        let tie = self.opt.opt_tol * (1.0 + cross_ratio.abs()) + 1e-12;
        let mut q = usize::MAX;
        let mut best_abs = 0.0f64;
        for &(ratio, a, jcol) in &bps[cross..] {
            if ratio > cross_ratio + tie {
                break;
            }
            let j = jcol as usize;
            if self.bland {
                if q == usize::MAX || j < q {
                    q = j;
                }
            } else if a > best_abs {
                best_abs = a;
                q = j;
            }
        }
        debug_assert!(q != usize::MAX);
        let alpha_q = self.alpha_buf[q];
        let nflips = cross;

        // 4. Apply the bound flips: each flipped column jumps to its
        // opposite bound; the basic values absorb the combined movement
        // through ONE extra FTRAN of the accumulated flip column.
        if nflips > 0 {
            self.flip_pairs.clear();
            for &(_, _, jcol) in &bps[..nflips] {
                let j = jcol as usize;
                if j == q {
                    continue; // tie band can overlap the flip prefix
                }
                let (dx, new_stat, new_x) = match self.stat[j] {
                    CStat::Lower => {
                        let span = self.sf.ub[j] - self.sf.lb[j];
                        (span, CStat::Upper, self.sf.ub[j])
                    }
                    CStat::Upper => {
                        let span = self.sf.ub[j] - self.sf.lb[j];
                        (-span, CStat::Lower, self.sf.lb[j])
                    }
                    _ => continue, // free columns have no opposite bound
                };
                self.stat[j] = new_stat;
                self.x[j] = new_x;
                for (row, v) in self.sf.a.col(j) {
                    self.flip_pairs.push((row, v * dx));
                }
            }
            if !self.flip_pairs.is_empty() {
                self.flip_pairs.sort_unstable_by_key(|&(row, _)| row);
                let mut fv = std::mem::take(&mut self.flip_work);
                fv.clear_to_dim(self.sf.m);
                for &(row, v) in &self.flip_pairs {
                    let ri = row as usize;
                    if fv.vals[ri] == 0.0 && fv.pattern.last().is_none_or(|&p| p != row) {
                        fv.pattern.push(row);
                    }
                    fv.vals[ri] += v;
                }
                self.facto.ftran(&mut fv);
                for (i, v) in fv.iter() {
                    if v != 0.0 {
                        let j = self.basis[i as usize];
                        self.x[j] -= v;
                    }
                }
                fv.clear();
                self.flip_work = fv;
            }
        }

        // 5. Dual update across the pivot row. Flipped columns cross
        // their breakpoint, so the same update moves their reduced cost
        // to the sign matching the new bound — dual feasibility holds.
        let theta_d = self.z[q] / alpha_q;
        for &jcol in &touched {
            let j = jcol as usize;
            let alpha = self.alpha_buf[j];
            self.alpha_buf[j] = 0.0;
            if self.stat[j] == CStat::Basic || j == q {
                continue;
            }
            self.z[j] -= theta_d * alpha;
        }
        self.alpha_touched = touched;
        self.breakpoints = bps;

        // 6. Primal update along the entering column (hyper-sparse).
        let mut d = std::mem::take(&mut self.d_work);
        self.facto.ftran_col(&self.sf.a, q, &mut d);
        let dr = d.vals[r];
        if dr.abs() <= self.opt.pivot_tol || !theta_d.is_finite() {
            self.d_work = d;
            return Err(LpError::NumericalFailure(format!(
                "dual pivot collapsed: |d_r| = {:.3e}",
                dr.abs()
            )));
        }
        let t = (self.x[jl] - target) / dr;
        for (i, di) in d.iter() {
            if di != 0.0 {
                let j = self.basis[i as usize];
                self.x[j] -= t * di;
            }
        }
        self.x[q] += t;
        self.x[jl] = target;

        // 7. Basis bookkeeping + dual row weight update (FT spike or eta).
        let updated = self.facto.push_update(r, &d, 1e-14);
        if self.opt.pricing == super::Pricing::SteepestEdge {
            // Exact dual steepest edge (w_i = ‖B⁻ᵀe_i‖²): the leaving
            // row's weight is recomputed from rho, and the touched rows
            // follow the Forrest–Goldfarb recurrence via tau = B⁻¹rho.
            let mut wr = 0.0;
            for (_, rv) in self.rho_work.iter() {
                wr += rv * rv;
            }
            let mut tau = std::mem::take(&mut self.flip_work);
            tau.clear_to_dim(self.sf.m);
            for (i, rv) in self.rho_work.iter() {
                if rv != 0.0 {
                    tau.vals[i as usize] = rv;
                    tau.pattern.push(i);
                }
            }
            self.facto.ftran(&mut tau);
            for (i, di) in d.iter() {
                let i = i as usize;
                if i != r {
                    let ratio = di / dr;
                    let nw = self.dual_w[i] - 2.0 * ratio * tau.vals[i] + ratio * ratio * wr;
                    self.dual_w[i] = nw.max(ratio * ratio).max(1e-10);
                }
            }
            tau.clear();
            self.flip_work = tau;
            self.dual_w[r] = (wr / (dr * dr)).max(1e-10);
        } else {
            let wr = self.dual_w[r];
            for (i, di) in d.iter() {
                let i = i as usize;
                if i != r {
                    let cand = (di / dr) * (di / dr) * wr;
                    if cand > self.dual_w[i] {
                        self.dual_w[i] = cand;
                    }
                }
            }
            self.dual_w[r] = (wr / (dr * dr)).max(1.0);
        }
        self.stat[jl] = if to_upper { CStat::Upper } else { CStat::Lower };
        self.pos_of[jl] = u32::MAX;
        self.basis[r] = q;
        self.pos_of[q] = r as u32;
        self.stat[q] = CStat::Basic;
        self.z[jl] = -theta_d;
        self.z[q] = 0.0;
        self.d_work = d;
        if !updated {
            // FT declined the spike: the factorization still encodes the
            // old basis. Rebuild from the new basis (also refreshes x_B
            // and reduced costs, killing any drift from this pivot).
            self.refactor_and_recompute(false)?;
        }

        // Dual degeneracy tracking (theta_d ~ 0 makes no dual progress);
        // bound flips move the primal point, so a flipping iteration
        // counts as progress even at a degenerate breakpoint.
        if nflips > 0 {
            self.degen_streak = 0;
            self.bland = false;
        } else {
            self.note_progress(theta_d.abs());
        }
        Ok(StepOutcome::Moved)
    }

    /// Dual ratio of nonbasic column `j` for leaving-direction `s`, or
    /// `None` when `j` is ineligible to enter.
    #[inline]
    fn dual_ratio(&self, j: usize, s: f64) -> Option<f64> {
        if self.stat[j] == CStat::Basic {
            return None;
        }
        let (lb, ub) = (self.sf.lb[j], self.sf.ub[j]);
        if lb == ub {
            return None; // fixed: cannot absorb primal movement
        }
        let ar = s * self.alpha_buf[j];
        let eligible = match self.stat[j] {
            CStat::Lower => ar > self.opt.pivot_tol,
            CStat::Upper => ar < -self.opt.pivot_tol,
            CStat::Free => ar.abs() > self.opt.pivot_tol,
            CStat::Basic => false,
        };
        if !eligible {
            return None;
        }
        Some((self.z[j] / ar).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Sense};

    fn production_lp() -> (
        Model,
        crate::model::ConstraintId,
        crate::model::ConstraintId,
    ) {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 3.0);
        let y = m.add_nonneg("y", 5.0);
        let c0 = m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        let c2 = m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        (m, c0, c2)
    }

    #[test]
    fn cold_warm_solve_matches_plain_solve() {
        let (m, _, _) = production_lp();
        let opts = SolverOptions::default();
        let (sol, basis) = m.solve_warm(None, &opts).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-7);
        assert_eq!(basis.vars.len(), 2);
        assert_eq!(basis.rows.len(), 3);
        assert_eq!(basis.num_basic(), 3);
    }

    #[test]
    fn rhs_tightening_reoptimizes_via_dual_simplex() {
        let (mut m, _, c2) = production_lp();
        let opts = SolverOptions::default();
        let (_, basis) = m.solve_warm(None, &opts).unwrap();
        // Tighten the binding row: optimum moves to x=2/3·? — recompute
        // via a cold solve and compare.
        m.set_rhs(c2, 15.0);
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve().unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-7,
            "warm {} cold {}",
            warm.objective,
            cold.objective
        );
        assert!(m.max_violation(&warm.x) < 1e-7);
    }

    #[test]
    fn rhs_relaxation_reoptimizes() {
        let (mut m, c0, c2) = production_lp();
        let opts = SolverOptions::default();
        let (_, basis) = m.solve_warm(None, &opts).unwrap();
        m.set_rhs(c0, 6.0);
        m.set_rhs(c2, 24.0);
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve().unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()));
    }

    #[test]
    fn objective_change_falls_back_to_primal_and_matches() {
        let (mut m, _, _) = production_lp();
        let opts = SolverOptions::default();
        let (_, basis) = m.solve_warm(None, &opts).unwrap();
        let x = crate::model::VarId::from_index(0);
        m.set_obj(x, 10.0); // x becomes the star column
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve().unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-7);
    }

    #[test]
    fn infeasible_after_rhs_change_is_detected() {
        // x + y = rhs with x, y in [0, 1]; rhs 1.5 feasible, 10 not.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 2.0);
        let c = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 1.5);
        let opts = SolverOptions::default();
        let (_, basis) = m.solve_warm(None, &opts).unwrap();
        m.set_rhs(c, 10.0);
        assert_eq!(
            m.solve_warm(Some(&basis), &opts).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn mismatched_snapshot_is_treated_as_cold() {
        let (m, _, _) = production_lp();
        let opts = SolverOptions::default();
        let bogus = Basis::all_slack(7, 1); // wrong shape
        let (sol, _) = m.solve_warm(Some(&bogus), &opts).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-7);
    }

    #[test]
    fn bound_change_handled_warm() {
        let (mut m, _, _) = production_lp();
        let opts = SolverOptions::default();
        let (_, basis) = m.solve_warm(None, &opts).unwrap();
        let x = crate::model::VarId::from_index(0);
        m.set_bounds(x, 0.0, 1.0); // x was 2 at the optimum
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve().unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-7);
        assert!(warm.x[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn warm_resolve_uses_fewer_iterations_on_small_perturbation() {
        // A chain of coupled rows; nudging one RHS should re-optimize in
        // a handful of dual pivots, far below the cold iteration count.
        let n = 40;
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<_> = (0..n)
            .map(|j| m.add_var(format!("x{j}"), 0.0, 10.0, 1.0 + (j % 7) as f64))
            .collect();
        let mut rows = Vec::new();
        for i in 0..n - 1 {
            rows.push(m.add_constraint(
                [(xs[i], 1.0), (xs[i + 1], 1.0)],
                Cmp::Ge,
                3.0 + (i % 5) as f64,
            ));
        }
        let opts = SolverOptions::default();
        let (cold_sol, basis) = m.solve_warm(None, &opts).unwrap();
        m.set_rhs(rows[n / 2], 4.2);
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve_warm(None, &opts).unwrap().0;
        assert!((warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()));
        assert!(
            warm.iterations <= cold_sol.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold_sol.iterations
        );
    }

    #[test]
    fn appended_column_and_row_resolve_warm() {
        // Solve, then append a new variable stitched into an existing
        // row plus a brand-new row, grow the basis, and re-solve warm.
        let (mut m, _, c2) = production_lp();
        let opts = SolverOptions::default();
        let (_, mut basis) = m.solve_warm(None, &opts).unwrap();
        // New profitable column z sharing row c2's capacity.
        let z = m.add_var("z", 0.0, 5.0, 4.0);
        m.add_term(c2, z, 2.0);
        let x = crate::model::VarId::from_index(0);
        m.add_constraint([(x, 1.0), (z, 1.0)], Cmp::Le, 5.0);
        basis.grow(m.num_vars(), m.num_constraints());
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve().unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()),
            "warm {} cold {}",
            warm.objective,
            cold.objective
        );
        assert!(m.max_violation(&warm.x) < 1e-6);
        assert!(warm.refactorizations >= 1);
    }

    #[test]
    fn add_term_merges_and_cancels() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        let c = m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0);
        m.add_term(c, y, 2.0);
        m.add_term(c, x, -1.0); // cancels the x term entirely
        let view = m.constraint(c);
        let terms: Vec<_> = view.terms().collect();
        assert_eq!(terms, vec![(y, 2.0)]);
        // y >= 0.5 is now the binding content; x is free of the row.
        let sol = m.solve().unwrap();
        assert!((sol.value(y) - 0.5).abs() < 1e-7);
        assert!(sol.value(x).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn basis_grow_rejects_shrinking() {
        let mut b = Basis::all_slack(3, 2);
        b.grow(2, 2);
    }

    #[test]
    fn repeated_warm_resolves_stay_exact() {
        // Sweep an RHS across a range, warm-starting each step; every
        // step must match a cold solve.
        let (mut m, _, c2) = production_lp();
        let opts = SolverOptions::default();
        let (_, mut basis) = m.solve_warm(None, &opts).unwrap();
        for k in 0..12 {
            let rhs = 10.0 + k as f64;
            m.set_rhs(c2, rhs);
            let (warm, nb) = m.solve_warm(Some(&basis), &opts).unwrap();
            basis = nb;
            let cold = m.solve().unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()),
                "rhs {rhs}: warm {} cold {}",
                warm.objective,
                cold.objective
            );
        }
    }
}
