//! The bounded-variable two-phase revised simplex method.
//!
//! Phase 1 starts from the all-slack basis and minimizes the sum of primal
//! infeasibilities of basic variables (composite objective, recomputed
//! every iteration — no artificial columns). Phase 2 minimizes the real
//! objective with Devex pricing and incrementally-updated reduced costs.
//! Degeneracy is handled by falling back to Bland's rule after a streak of
//! degenerate pivots, which restores a termination guarantee.
//!
//! Variable bounds are implicit: a nonbasic variable rests at its lower or
//! upper bound (or at zero if free) and may *bound-flip* without a basis
//! change when the ratio test is won by the entering variable's opposite
//! bound — essential for time-indexed coflow LPs where every `x_j^i(t)`
//! has bounds `[0, 1]`.

pub mod dual;
mod lu;

use crate::error::LpError;
use crate::model::Model;
use crate::presolve;
use crate::solution::{Solution, Status};
use crate::sparse::WorkVec;
use crate::standard::StdForm;
use lu::Factorization;
pub use lu::{BasisUpdate, RefactorCause};

/// Entering-variable pricing rule. Also selects the dual simplex's
/// leaving-row rule: `Devex` maintains steepest-edge-style row weights,
/// `SteepestEdge` exact-updates them, `Dantzig` takes the most-violated
/// row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Devex reference weights (default): approximates steepest edge,
    /// far fewer iterations on degenerate time-indexed LPs.
    Devex,
    /// Classic most-negative-reduced-cost. Kept for ablation benches.
    Dantzig,
    /// Projected steepest edge: reference weights initialized at each
    /// refactorization and kept current by the exact Forrest–Goldfarb
    /// recurrences, fed by the FTRAN/BTRAN vectors each pivot already
    /// computes (plus one extra solve per pivot). Fewer pivots than
    /// Devex on the tall time-indexed models; a little more per-pivot
    /// work.
    SteepestEdge,
}

/// Which LP core executes a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LpEngine {
    /// Sparse revised simplex with LU factorization, product-form
    /// updates, and hyper-sparse FTRAN/BTRAN (default).
    #[default]
    Sparse,
    /// Dense tableau reference implementation. Slow but simple; kept as
    /// an oracle and as an escape hatch (`--lp-engine dense`).
    Dense,
}

/// Tuning knobs for [`Model::solve_with`].
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Maximum simplex iterations across both phases; `0` chooses
    /// `max(20_000, 40·(m+n))` automatically.
    pub max_iterations: usize,
    /// Primal feasibility tolerance.
    pub feas_tol: f64,
    /// Reduced-cost (dual feasibility) tolerance.
    pub opt_tol: f64,
    /// Minimum acceptable pivot magnitude in the ratio test and LU.
    pub pivot_tol: f64,
    /// Refactorize after this many eta updates.
    pub refactor_interval: usize,
    /// Apply geometric-mean equilibration scaling.
    pub scale: bool,
    /// Run presolve reductions first.
    pub presolve: bool,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: usize,
    /// Entering-variable pricing rule.
    pub pricing: Pricing,
    /// How the LU factorization absorbs basis changes between
    /// refactorizations: Forrest–Tomlin row spikes (default) or the
    /// append-only product-form eta file kept as a differential oracle.
    pub basis_update: BasisUpdate,
    /// Partial (cyclic block) pricing: examine candidate columns in
    /// blocks of this size and enter the best of the first block that
    /// offers any improvement. `0` (default) scans every column each
    /// iteration (full pricing). Blocks of a few thousand speed up
    /// column-heavy single-path LPs by ~30%, but can increase iteration
    /// counts on free-path LPs whose cost is FTRAN-bound — measure with
    /// the `pricing/` bench group before enabling.
    pub partial_pricing_block: usize,
    /// Which LP core executes the solve.
    pub engine: LpEngine,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 0,
            feas_tol: 1e-7,
            opt_tol: 1e-9,
            pivot_tol: 1e-8,
            refactor_interval: 100,
            scale: true,
            presolve: true,
            bland_trigger: 500,
            pricing: Pricing::Devex,
            basis_update: BasisUpdate::ForrestTomlin,
            partial_pricing_block: 0,
            engine: LpEngine::Sparse,
        }
    }
}

/// Column status in the bounded-variable simplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CStat {
    Basic,
    /// Nonbasic at lower bound.
    Lower,
    /// Nonbasic at upper bound.
    Upper,
    /// Nonbasic free variable, held at zero.
    Free,
}

/// Entry point used by [`Model::solve_with`].
///
/// Wraps the sparse engine in the numerical-distress rescue ladder:
/// a non-finite solution or an unrecoverable factorization failure
/// triggers one retry with conservative options (eta updates, eager
/// refactorization, looser pivot tolerance), and if that also
/// distresses, the dense tableau oracle takes the solve. Every rescue
/// is recorded in [`SolveStats::distress_retries`] /
/// [`SolveStats::dense_fallbacks`]; only when the whole ladder fails
/// does the caller see a typed [`LpError::NumericalDistress`].
///
/// [`SolveStats::distress_retries`]: crate::solution::SolveStats::distress_retries
/// [`SolveStats::dense_fallbacks`]: crate::solution::SolveStats::dense_fallbacks
pub fn solve(model: &Model, options: &SolverOptions) -> Result<Solution, LpError> {
    if options.engine == LpEngine::Dense {
        return crate::dense::solve(model).and_then(check_finite);
    }
    match solve_attempt(model, options).and_then(check_finite) {
        Ok(sol) => Ok(sol),
        Err(e) if is_distress(&e) => {
            let conservative = conservative_options(options);
            match solve_attempt(model, &conservative).and_then(check_finite) {
                Ok(mut sol) => {
                    sol.stats.distress_retries += 1;
                    Ok(sol)
                }
                Err(e2) if is_distress(&e2) => {
                    match crate::dense::solve(model).and_then(check_finite) {
                        Ok(mut sol) => {
                            sol.stats.distress_retries += 1;
                            sol.stats.dense_fallbacks += 1;
                            Ok(sol)
                        }
                        Err(e3) => Err(into_distress(e3)),
                    }
                }
                Err(e2) => Err(e2),
            }
        }
        Err(e) => Err(e),
    }
}

/// Is this error a numerical symptom the rescue ladder can act on?
/// (Infeasible / Unbounded / IterationLimit are *answers*, not
/// distress, and propagate untouched.)
pub(crate) fn is_distress(e: &LpError) -> bool {
    matches!(
        e,
        LpError::NumericalFailure(_) | LpError::NumericalDistress { .. }
    )
}

/// Rejects solutions carrying NaN/±∞ in the objective or primal point.
pub(crate) fn check_finite(sol: Solution) -> Result<Solution, LpError> {
    if !sol.objective.is_finite() {
        return Err(LpError::NumericalDistress {
            kind: crate::DistressKind::NonFiniteObjective,
            detail: format!("objective came back {}", sol.objective),
        });
    }
    if let Some(j) = sol.x.iter().position(|v| !v.is_finite()) {
        return Err(LpError::NumericalDistress {
            kind: crate::DistressKind::NonFinitePrimal,
            detail: format!("x[{j}] came back {}", sol.x[j]),
        });
    }
    Ok(sol)
}

/// The retry configuration of the rescue ladder: eta updates (simpler,
/// better-understood numerics than FT spikes), eager refactorization,
/// and a looser pivot tolerance so near-singular pivots are declined
/// rather than taken.
pub(crate) fn conservative_options(options: &SolverOptions) -> SolverOptions {
    SolverOptions {
        basis_update: BasisUpdate::Eta,
        refactor_interval: options.refactor_interval.clamp(1, 20),
        pivot_tol: options.pivot_tol.max(1e-7),
        pricing: Pricing::Devex,
        partial_pricing_block: 0,
        ..options.clone()
    }
}

/// Terminal conversion once the whole ladder is exhausted: untyped
/// `NumericalFailure` messages become the typed distress the service
/// layer keys its degrade ladder on.
pub(crate) fn into_distress(e: LpError) -> LpError {
    match e {
        LpError::NumericalFailure(msg) => {
            let kind = if msg.contains("unstable") || msg.contains("update") {
                crate::DistressKind::UnstableUpdate
            } else {
                crate::DistressKind::SingularBasis
            };
            LpError::NumericalDistress { kind, detail: msg }
        }
        other => other,
    }
}

/// One sparse-engine attempt, no rescue.
fn solve_attempt(model: &Model, options: &SolverOptions) -> Result<Solution, LpError> {
    // Presolve (also decides trivial infeasibility/unboundedness).
    let pre = if options.presolve {
        Some(presolve::presolve(model)?)
    } else {
        None
    };
    let work_model: &Model = pre.as_ref().map_or(model, |p| &p.reduced);

    let sf = StdForm::build(work_model, options.scale);
    let x_scaled = if sf.m == 0 {
        // No constraints survive: every variable sits at its favored
        // bound. (With presolve on, the reduced model has no variables
        // either; without presolve this resolves columns directly.)
        trivial_solve(&sf)?
    } else {
        let mut s = Simplex::new(&sf, options);
        s.run()?
    };

    let x_reduced = sf.unscale_solution(&x_scaled.x);
    // Duals map 1:1 only when no presolve transformed the rows.
    let duals = if pre.is_none() {
        Some(sf.unscale_duals(&x_scaled.y, model.sense))
    } else {
        None
    };
    let x_full = match &pre {
        Some(p) => presolve::postsolve(p, &x_reduced),
        None => x_reduced,
    };
    let objective = model.objective_at(&x_full);
    Ok(Solution {
        status: Status::Optimal,
        objective,
        x: x_full,
        duals,
        iterations: x_scaled.iterations,
        refactorizations: x_scaled.refactorizations,
        stats: x_scaled.stats(),
    })
}

struct ScaledSolution {
    x: Vec<f64>,
    /// Row duals of the *scaled minimization* problem (`B⁻ᵀ c_B`).
    y: Vec<f64>,
    iterations: usize,
    refactorizations: usize,
    /// FTRAN/BTRAN operation counters from the LU engine.
    ops: lu::OpCounts,
    /// Workspace high-water estimate (factors + eta file + scratch).
    peak_bytes: usize,
}

impl ScaledSolution {
    /// Converts the engine counters to the public [`SolveStats`].
    pub(super) fn stats(&self) -> crate::solution::SolveStats {
        crate::solution::SolveStats {
            ftran_solves: self.ops.ftran_solves,
            ftran_nnz: self.ops.ftran_nnz,
            btran_solves: self.ops.btran_solves,
            btran_nnz: self.ops.btran_nnz,
            peak_alloc_bytes: self.peak_bytes,
            ft_updates: self.ops.ft_updates,
            spike_nnz: self.ops.spike_nnz,
            update_nnz: self.ops.update_nnz,
            refactor_interval: self.ops.refactor_interval,
            refactor_fill: self.ops.refactor_fill,
            refactor_unstable: self.ops.refactor_unstable,
            distress_retries: 0,
            dense_fallbacks: 0,
        }
    }
}

/// Handles the constraint-free case.
fn trivial_solve(sf: &StdForm) -> Result<ScaledSolution, LpError> {
    let mut x = vec![0.0; sf.n];
    for j in 0..sf.n_struct {
        let c = sf.c[j];
        x[j] = if c > 0.0 {
            sf.lb[j]
        } else if c < 0.0 {
            sf.ub[j]
        } else if sf.lb[j].is_finite() {
            sf.lb[j]
        } else if sf.ub[j].is_finite() {
            sf.ub[j]
        } else {
            0.0
        };
        if !x[j].is_finite() {
            return Err(LpError::Unbounded);
        }
    }
    Ok(ScaledSolution {
        x,
        y: Vec::new(),
        iterations: 0,
        refactorizations: 0,
        ops: lu::OpCounts::default(),
        peak_bytes: 0,
    })
}

struct Simplex<'a> {
    sf: &'a StdForm,
    opt: &'a SolverOptions,
    max_iterations: usize,
    /// Column occupying each basis position.
    basis: Vec<usize>,
    /// Status per column; `pos_of` gives the basis position of basic cols.
    stat: Vec<CStat>,
    pos_of: Vec<u32>,
    /// Current value of every column.
    x: Vec<f64>,
    facto: Factorization,
    /// Reduced costs (phase 2, incrementally maintained).
    z: Vec<f64>,
    /// Devex reference weights.
    devex: Vec<f64>,
    /// Dual-simplex Devex row weights (leaving-row steepest-edge proxy).
    dual_w: Vec<f64>,
    /// Consecutive degenerate pivots; Bland mode when past the trigger.
    degen_streak: usize,
    bland: bool,
    iterations: usize,
    refactorizations: usize,
    // Scratch
    col_buf: Vec<f64>,
    row_buf: Vec<f64>,
    rhs_buf: Vec<f64>,
    alpha_buf: Vec<f64>,
    alpha_touched: Vec<u32>,
    /// Steepest-edge beta accumulator (`beta_j = tau·a_j`) + its pattern.
    beta_buf: Vec<f64>,
    beta_touched: Vec<u32>,
    /// Entering-column FTRAN image (hyper-sparse).
    d_work: WorkVec,
    /// Pivot-row BTRAN image / phase-1 cost vector (hyper-sparse).
    rho_work: WorkVec,
    /// BFRT flip-column accumulator (dual simplex).
    flip_work: WorkVec,
    flip_pairs: Vec<(u32, f64)>,
    /// BFRT breakpoint list: `(ratio, |alpha|, column)`.
    breakpoints: Vec<(f64, f64, u32)>,
    /// Cyclic partial-pricing cursor.
    price_cursor: usize,
}

/// Outcome of one pivot step.
enum StepOutcome {
    Moved,
    OptimalOrFeasible,
    Unbounded,
}

impl<'a> Simplex<'a> {
    fn new(sf: &'a StdForm, opt: &'a SolverOptions) -> Self {
        let n = sf.n;
        let m = sf.m;
        let max_iterations = if opt.max_iterations == 0 {
            (40 * (m + n)).max(20_000)
        } else {
            opt.max_iterations
        };
        // All-slack crash basis; structural columns nonbasic at a bound.
        let mut stat = Vec::with_capacity(n);
        let mut x = vec![0.0; n];
        for j in 0..n {
            if j >= sf.n_struct {
                stat.push(CStat::Basic);
                continue;
            }
            if sf.lb[j].is_finite() {
                stat.push(CStat::Lower);
                x[j] = sf.lb[j];
            } else if sf.ub[j].is_finite() {
                stat.push(CStat::Upper);
                x[j] = sf.ub[j];
            } else {
                stat.push(CStat::Free);
                x[j] = 0.0;
            }
        }
        let basis: Vec<usize> = (0..m).map(|i| sf.n_struct + i).collect();
        let mut pos_of = vec![u32::MAX; n];
        for (i, &j) in basis.iter().enumerate() {
            pos_of[j] = i as u32;
        }
        Simplex {
            sf,
            opt,
            max_iterations,
            basis,
            stat,
            pos_of,
            x,
            facto: {
                let mut f = Factorization::new(m);
                f.set_mode(opt.basis_update);
                f
            },
            z: vec![0.0; n],
            devex: vec![1.0; n],
            dual_w: vec![1.0; m],
            degen_streak: 0,
            bland: false,
            iterations: 0,
            refactorizations: 0,
            col_buf: Vec::new(),
            row_buf: Vec::new(),
            rhs_buf: Vec::new(),
            alpha_buf: vec![0.0; n],
            alpha_touched: Vec::new(),
            beta_buf: vec![0.0; n],
            beta_touched: Vec::new(),
            d_work: WorkVec::with_dim(m),
            rho_work: WorkVec::with_dim(m),
            flip_work: WorkVec::with_dim(m),
            flip_pairs: Vec::new(),
            breakpoints: Vec::new(),
            price_cursor: 0,
        }
    }

    /// Resets to the all-slack crash basis (used by the warm-solve stall
    /// guard when a snapshot turns out pathological).
    pub(super) fn reset_to_all_slack(&mut self) {
        for j in 0..self.sf.n_struct {
            self.stat[j] = if self.sf.lb[j].is_finite() {
                self.x[j] = self.sf.lb[j];
                CStat::Lower
            } else if self.sf.ub[j].is_finite() {
                self.x[j] = self.sf.ub[j];
                CStat::Upper
            } else {
                self.x[j] = 0.0;
                CStat::Free
            };
            self.pos_of[j] = u32::MAX;
        }
        for r in 0..self.sf.m {
            let slack = self.sf.n_struct + r;
            self.stat[slack] = CStat::Basic;
            self.basis[r] = slack;
            self.pos_of[slack] = r as u32;
        }
        self.degen_streak = 0;
        self.bland = false;
    }

    fn run(&mut self) -> Result<ScaledSolution, LpError> {
        self.refactor_and_recompute(true)?;

        // ---- Phase 1 ----
        let mut phase1_retried = false;
        while self.max_infeasibility() > self.opt.feas_tol {
            if self.iterations >= self.max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.maybe_refactor(true)?;
            match self.phase1_step()? {
                StepOutcome::Moved => {
                    phase1_retried = false;
                }
                StepOutcome::OptimalOrFeasible => {
                    // Phase-1 optimum with residual infeasibility. Rule
                    // out stale-factorization drift before declaring the
                    // model infeasible.
                    if !phase1_retried {
                        phase1_retried = true;
                        self.refactor_and_recompute(true)?;
                        continue;
                    }
                    if self.max_infeasibility() > self.opt.feas_tol {
                        return Err(LpError::Infeasible);
                    }
                    break;
                }
                StepOutcome::Unbounded => {
                    return Err(LpError::NumericalFailure(
                        "phase-1 objective unbounded; tolerance breakdown".into(),
                    ));
                }
            }
        }

        // ---- Phase 2 ----
        self.refactor_and_recompute(false)?;
        loop {
            if self.iterations >= self.max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.maybe_refactor(false)?;
            match self.phase2_step()? {
                StepOutcome::Moved => {}
                StepOutcome::OptimalOrFeasible => break,
                StepOutcome::Unbounded => return Err(LpError::Unbounded),
            }
        }

        // Final hygiene: refactor and recompute basic values.
        self.refactor_and_recompute(false)?;
        let y = self.scaled_duals();
        Ok(self.finish(y))
    }

    /// Packages the terminal state into a [`ScaledSolution`].
    pub(super) fn finish(&mut self, y: Vec<f64>) -> ScaledSolution {
        ScaledSolution {
            x: std::mem::take(&mut self.x),
            y,
            iterations: self.iterations,
            refactorizations: self.refactorizations,
            ops: self.facto.op_counts(),
            peak_bytes: self.workspace_bytes(),
        }
    }

    /// Workspace high-water estimate: LU factors + eta file + the
    /// solver's own dense and indexed scratch, from `Vec` capacities.
    fn workspace_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        self.facto.heap_bytes()
            + (self.x.capacity()
                + self.z.capacity()
                + self.devex.capacity()
                + self.dual_w.capacity()
                + self.alpha_buf.capacity()
                + self.col_buf.capacity()
                + self.row_buf.capacity()
                + self.rhs_buf.capacity())
                * f
            + self.d_work.heap_bytes()
            + self.rho_work.heap_bytes()
            + self.flip_work.heap_bytes()
            + self.basis.capacity() * std::mem::size_of::<usize>()
            + (self.pos_of.capacity() + self.alpha_touched.capacity()) * std::mem::size_of::<u32>()
    }

    /// Row duals of the scaled problem at the current basis:
    /// `y = B⁻ᵀ c_B`.
    fn scaled_duals(&mut self) -> Vec<f64> {
        let mut cb = vec![0.0; self.sf.m];
        for (i, &j) in self.basis.iter().enumerate() {
            cb[i] = self.sf.c[j];
        }
        let mut y = Vec::new();
        self.facto.btran(&cb, &mut y);
        y
    }

    /// Largest bound violation among basic variables.
    fn max_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for &j in &self.basis {
            let v = self.x[j];
            worst = worst.max(v - self.sf.ub[j]).max(self.sf.lb[j] - v);
        }
        worst
    }

    fn maybe_refactor(&mut self, phase1: bool) -> Result<(), LpError> {
        // Refactor on the fixed cadence, or early when the update file's
        // fill (eta columns, or FT spikes + row etas) has outgrown the LU
        // factors — FTRAN/BTRAN then cost more through the update chain
        // than a fresh factorization would.
        let fill_heavy = self.facto.update_fill() > 2 * self.facto.factor_nnz() + 4 * self.sf.m;
        if self.facto.update_count() >= self.opt.refactor_interval {
            self.facto.count_refactor(RefactorCause::Interval);
            self.refactor_and_recompute(phase1)?;
        } else if self.facto.update_count() >= 16 && fill_heavy {
            self.facto.count_refactor(RefactorCause::Fill);
            self.refactor_and_recompute(phase1)?;
        }
        Ok(())
    }

    /// Refactorizes the basis and recomputes basic values (and reduced
    /// costs when in phase 2).
    fn refactor_and_recompute(&mut self, phase1: bool) -> Result<(), LpError> {
        self.refactorizations += 1;
        if self
            .facto
            .refactor(&self.sf.a, &self.basis, self.opt.pivot_tol)
            .is_err()
        {
            // Recovery: replace dependent columns with their rows' slacks.
            self.repair_basis()?;
        }
        // x_B = B^{-1} (b - A_N x_N)
        self.rhs_buf.clear();
        self.rhs_buf.extend_from_slice(&self.sf.b);
        for j in 0..self.sf.n {
            if self.stat[j] != CStat::Basic && self.x[j] != 0.0 {
                let xj = self.x[j];
                for (r, v) in self.sf.a.col(j) {
                    self.rhs_buf[r as usize] -= v * xj;
                }
            }
        }
        let mut xb = std::mem::take(&mut self.col_buf);
        self.facto.ftran_dense(&self.rhs_buf, &mut xb);
        for (i, &j) in self.basis.iter().enumerate() {
            self.x[j] = xb[i];
        }
        self.col_buf = xb;

        if !phase1 {
            self.recompute_reduced_costs();
        }
        // Reset Devex reference frameworks (primal column and dual row).
        self.devex.iter_mut().for_each(|w| *w = 1.0);
        self.dual_w.iter_mut().for_each(|w| *w = 1.0);
        Ok(())
    }

    /// Replaces linearly-dependent basis columns with slacks of rows not
    /// yet covered, then refactorizes. If the greedy swaps fail to
    /// converge (possible for crash bases with long dependent runs), the
    /// basis falls back to all-slack — always factorizable, so repair
    /// never hard-errors on a merely *bad* basis.
    fn repair_basis(&mut self) -> Result<(), LpError> {
        // Greedy: try to factor; on failure, swap the offending column for
        // the slack of an uncovered row. Bounded by m attempts.
        for _ in 0..self.sf.m + 1 {
            match self
                .facto
                .refactor(&self.sf.a, &self.basis, self.opt.pivot_tol)
            {
                Ok(()) => return Ok(()),
                Err(sing) => {
                    // Find a row whose slack is nonbasic and swap it in:
                    // prefer a slack whose row the outgoing column
                    // touches, fall back to any nonbasic slack (crash
                    // bases built from solution points can leave long
                    // dependent runs with no touching slack available).
                    let out_col = self.basis[sing.basis_pos];
                    let mut chosen: Option<usize> = None;
                    for r in 0..self.sf.m {
                        let slack = self.sf.n_struct + r;
                        if self.stat[slack] != CStat::Basic {
                            let touches = self.sf.a.col(out_col).any(|(row, _)| row as usize == r);
                            if touches {
                                chosen = Some(slack);
                                break;
                            }
                            if chosen.is_none() {
                                chosen = Some(slack);
                            }
                        }
                    }
                    let swapped = if let Some(slack) = chosen {
                        self.stat[out_col] = if self.sf.lb[out_col].is_finite() {
                            self.x[out_col] = self.sf.lb[out_col];
                            CStat::Lower
                        } else if self.sf.ub[out_col].is_finite() {
                            self.x[out_col] = self.sf.ub[out_col];
                            CStat::Upper
                        } else {
                            self.x[out_col] = 0.0;
                            CStat::Free
                        };
                        self.pos_of[out_col] = u32::MAX;
                        self.basis[sing.basis_pos] = slack;
                        self.pos_of[slack] = sing.basis_pos as u32;
                        self.stat[slack] = CStat::Basic;
                        true
                    } else {
                        false
                    };
                    if !swapped {
                        break;
                    }
                }
            }
        }
        // Last resort: the all-slack basis is the identity and always
        // factors. The warm start degrades to a crash start, but the
        // solve stays correct.
        for j in 0..self.sf.n_struct {
            if self.stat[j] == CStat::Basic {
                self.stat[j] = if self.sf.lb[j].is_finite() {
                    self.x[j] = self.sf.lb[j];
                    CStat::Lower
                } else if self.sf.ub[j].is_finite() {
                    self.x[j] = self.sf.ub[j];
                    CStat::Upper
                } else {
                    self.x[j] = 0.0;
                    CStat::Free
                };
            }
            self.pos_of[j] = u32::MAX;
        }
        for r in 0..self.sf.m {
            let slack = self.sf.n_struct + r;
            self.stat[slack] = CStat::Basic;
            self.basis[r] = slack;
            self.pos_of[slack] = r as u32;
        }
        self.facto
            .refactor(&self.sf.a, &self.basis, self.opt.pivot_tol)
            .map_err(|sing| {
                LpError::NumericalFailure(format!(
                    "all-slack basis failed to factor at step {}",
                    sing.step
                ))
            })
    }

    /// Full reduced-cost recomputation: `z = c - Aᵀ B⁻ᵀ c_B`.
    fn recompute_reduced_costs(&mut self) {
        let m = self.sf.m;
        let mut cb = vec![0.0; m];
        for (i, &j) in self.basis.iter().enumerate() {
            cb[i] = self.sf.c[j];
        }
        let mut y = std::mem::take(&mut self.row_buf);
        self.facto.btran(&cb, &mut y);
        for j in 0..self.sf.n {
            self.z[j] = if self.stat[j] == CStat::Basic {
                0.0
            } else {
                self.sf.c[j] - self.sf.a.dot_col(j, &y)
            };
        }
        self.row_buf = y;
    }

    // ---------------- Phase 1 ----------------

    fn phase1_step(&mut self) -> Result<StepOutcome, LpError> {
        // Phase-1 costs: +1 above upper bound, -1 below lower bound.
        // Usually only a handful of basics are infeasible, so the cost
        // vector — and the BTRAN behind the pricing pass — is sparse.
        let tol = self.opt.feas_tol;
        let mut db = std::mem::take(&mut self.rho_work);
        db.clear_to_dim(self.sf.m);
        for (i, &j) in self.basis.iter().enumerate() {
            let v = self.x[j];
            if v > self.sf.ub[j] + tol {
                db.vals[i] = 1.0;
                db.pattern.push(i as u32);
            } else if v < self.sf.lb[j] - tol {
                db.vals[i] = -1.0;
                db.pattern.push(i as u32);
            }
        }
        if db.nnz() == 0 {
            self.rho_work = db;
            return Ok(StepOutcome::OptimalOrFeasible);
        }
        self.facto.btran_sparse(&mut db);

        // Phase-1 reduced cost of column j is -y·a_j: only columns
        // intersecting y's nonzero rows can be eligible, so price
        // exactly those (row-oriented accumulation through the CSR
        // mirror). Bland mode takes the smallest eligible index; partial
        // pricing is moot since the candidate set is already restricted.
        self.alpha_touched.clear();
        for (i, ri) in db.iter() {
            if ri.abs() <= 1e-12 {
                continue;
            }
            for (jcol, v) in self.sf.a_csr.row(i as usize) {
                let j = jcol as usize;
                if self.alpha_buf[j] == 0.0 {
                    self.alpha_touched.push(jcol);
                }
                self.alpha_buf[j] += ri * v;
            }
        }
        self.rho_work = db;
        let touched = std::mem::take(&mut self.alpha_touched);
        let mut best: Option<(usize, f64, f64)> = None; // (col, zj, score)
        for &jcol in &touched {
            let j = jcol as usize;
            let zj = -self.alpha_buf[j];
            self.alpha_buf[j] = 0.0;
            if self.stat[j] == CStat::Basic || self.eligible_direction(j, zj) == 0.0 {
                continue;
            }
            if self.bland {
                if best.is_none_or(|(bj, _, _)| j < bj) {
                    best = Some((j, zj, 0.0));
                }
            } else {
                let score = match self.opt.pricing {
                    Pricing::Devex | Pricing::SteepestEdge => zj * zj / self.devex[j],
                    Pricing::Dantzig => zj.abs(),
                };
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, zj, score));
                }
            }
        }
        self.alpha_touched = touched;
        let Some((q, zq, _)) = best else {
            return Ok(StepOutcome::OptimalOrFeasible);
        };
        self.pivot(q, zq, true)
    }

    // ---------------- Phase 2 ----------------

    fn phase2_step(&mut self) -> Result<StepOutcome, LpError> {
        let n = self.sf.n;
        let block = if self.bland || self.opt.partial_pricing_block == 0 {
            n
        } else {
            self.opt.partial_pricing_block
        };
        let mut best: Option<(usize, f64, f64)> = None;
        let mut pos = if self.bland { 0 } else { self.price_cursor % n };
        let mut scanned = 0;
        while scanned < n {
            let j = pos;
            pos += 1;
            if pos == n {
                pos = 0;
            }
            scanned += 1;
            if self.stat[j] != CStat::Basic {
                let zj = self.z[j];
                if self.eligible_direction(j, zj) != 0.0 {
                    if self.bland {
                        best = Some((j, zj, 0.0));
                        break;
                    }
                    let score = match self.opt.pricing {
                        Pricing::Devex | Pricing::SteepestEdge => zj * zj / self.devex[j],
                        Pricing::Dantzig => zj.abs(),
                    };
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, zj, score));
                    }
                }
            }
            if scanned % block == 0 && best.is_some() {
                break;
            }
        }
        if !self.bland {
            self.price_cursor = pos;
        }
        let Some((q, zq, _)) = best else {
            return Ok(StepOutcome::OptimalOrFeasible);
        };
        self.pivot(q, zq, false)
    }

    /// Direction of improvement for nonbasic `j` with reduced cost `zj`,
    /// or 0.0 when ineligible.
    #[inline]
    fn eligible_direction(&self, j: usize, zj: f64) -> f64 {
        let tol = self.opt.opt_tol * (1.0 + self.sf.c[j].abs());
        match self.stat[j] {
            CStat::Lower => {
                if zj < -tol {
                    1.0
                } else {
                    0.0
                }
            }
            CStat::Upper => {
                if zj > tol {
                    -1.0
                } else {
                    0.0
                }
            }
            CStat::Free => {
                if zj < -tol {
                    1.0
                } else if zj > tol {
                    -1.0
                } else {
                    0.0
                }
            }
            CStat::Basic => 0.0,
        }
    }

    /// Executes one pivot (or bound flip) with entering column `q`.
    fn pivot(&mut self, q: usize, zq: f64, phase1: bool) -> Result<StepOutcome, LpError> {
        self.iterations += 1;
        let sigma = self.eligible_direction(q, zq);
        debug_assert!(sigma != 0.0);

        // d = B^{-1} a_q in basis-position space (hyper-sparse: the
        // ratio test and the x-update below walk only its pattern).
        let mut d = std::mem::take(&mut self.d_work);
        self.facto.ftran_col(&self.sf.a, q, &mut d);

        // Ratio test.
        let feas_tol = self.opt.feas_tol;
        let mut theta = f64::INFINITY;
        let mut leave: Option<(usize, f64, bool)> = None; // (pos, |d|, hit_upper)
        for &iu in &d.pattern {
            let i = iu as usize;
            let di = d.vals[i];
            if di.abs() <= self.opt.pivot_tol {
                continue;
            }
            let j = self.basis[i];
            let xi = self.x[j];
            let (lbi, ubi) = (self.sf.lb[j], self.sf.ub[j]);
            let delta = sigma * di; // xi moves at rate -delta per unit theta
            let infeasible_above = phase1 && xi > ubi + feas_tol;
            let infeasible_below = phase1 && xi < lbi - feas_tol;

            let (ti, hits_upper) = if infeasible_above {
                if delta > 0.0 {
                    ((xi - ubi) / delta, true)
                } else {
                    continue; // moving further above; no block in phase 1
                }
            } else if infeasible_below {
                if delta < 0.0 {
                    ((xi - lbi) / delta, false)
                } else {
                    continue;
                }
            } else if delta > 0.0 {
                if lbi.is_finite() {
                    ((xi - lbi) / delta, false)
                } else {
                    continue;
                }
            } else if ubi.is_finite() {
                ((xi - ubi) / delta, true)
            } else {
                continue;
            };
            let ti = ti.max(0.0);
            let better = match leave {
                None => ti < theta,
                Some((_, best_abs, _)) => {
                    if self.bland {
                        // Bland: strictly smaller theta, tie -> smaller col.
                        ti < theta - 1e-12
                            || (ti < theta + 1e-12
                                && self.basis[i] < self.basis[leave.expect("set").0])
                    } else {
                        ti < theta - 1e-12 || (ti < theta + 1e-12 && di.abs() > best_abs)
                    }
                }
            };
            if better {
                theta = ti.min(theta);
                leave = Some((i, di.abs(), hits_upper));
            }
        }

        // Entering variable's own bound flip.
        let span = self.sf.ub[q] - self.sf.lb[q];
        let flip_theta = if self.stat[q] == CStat::Free {
            f64::INFINITY
        } else {
            span // infinite if a bound is infinite
        };

        if flip_theta < theta {
            // Bound flip: no basis change.
            let theta = flip_theta;
            for (i, di) in d.iter() {
                if di != 0.0 {
                    let j = self.basis[i as usize];
                    self.x[j] -= sigma * theta * di;
                }
            }
            match self.stat[q] {
                CStat::Lower => {
                    self.stat[q] = CStat::Upper;
                    self.x[q] = self.sf.ub[q];
                }
                CStat::Upper => {
                    self.stat[q] = CStat::Lower;
                    self.x[q] = self.sf.lb[q];
                }
                _ => unreachable!("flip requires finite bounds"),
            }
            self.d_work = d;
            self.note_progress(theta);
            return Ok(StepOutcome::Moved);
        }

        let Some((r, _, hit_upper)) = leave else {
            self.d_work = d;
            return Ok(StepOutcome::Unbounded);
        };
        if !theta.is_finite() {
            self.d_work = d;
            return Ok(StepOutcome::Unbounded);
        }

        // Apply the step.
        for (i, di) in d.iter() {
            if di != 0.0 {
                let j = self.basis[i as usize];
                self.x[j] -= sigma * theta * di;
            }
        }
        let enter_from = self.x[q];
        self.x[q] = enter_from + sigma * theta;

        let jl = self.basis[r];
        // Snap the leaving variable exactly onto its bound.
        self.x[jl] = if hit_upper {
            self.sf.ub[jl]
        } else {
            self.sf.lb[jl]
        };

        // Reduced-cost and Devex updates (phase 2 only) need the pivot row
        // of the OLD basis: rho = B^{-T} e_r, alpha_j = rho·a_j.
        let dr = d.vals[r];
        if !phase1 {
            self.update_duals_after_pivot(q, r, zq, dr, &d);
        }
        // Dual-Devex row weight propagation through the pivot column.
        let wr = self.dual_w[r];
        for (i, di) in d.iter() {
            let i = i as usize;
            if i != r {
                let cand = (di / dr) * (di / dr) * wr;
                if cand > self.dual_w[i] {
                    self.dual_w[i] = cand;
                }
            }
        }
        self.dual_w[r] = (wr / (dr * dr)).max(1.0);

        // Basis bookkeeping + factor update (FT spike or eta column).
        let updated = self.facto.push_update(r, &d, 1e-14);
        self.stat[jl] = if hit_upper {
            CStat::Upper
        } else {
            CStat::Lower
        };
        self.pos_of[jl] = u32::MAX;
        self.basis[r] = q;
        self.pos_of[q] = r as u32;
        self.stat[q] = CStat::Basic;
        self.z[q] = 0.0;

        self.d_work = d;
        self.note_progress(theta);
        if !updated {
            // The FT stability monitor declined the spike, so the
            // factorization still represents the old basis: rebuild
            // from the new one before the next solve touches it.
            self.refactor_and_recompute(phase1)?;
        }
        Ok(StepOutcome::Moved)
    }

    /// Incremental reduced-cost + pricing-weight update for a pivot with
    /// entering `q`, leaving position `r`, entering reduced cost `zq`,
    /// pivot element `dr = d[r]`, entering FTRAN image `d = B⁻¹a_q`.
    fn update_duals_after_pivot(&mut self, q: usize, r: usize, zq: f64, dr: f64, d: &WorkVec) {
        let se = self.opt.pricing == Pricing::SteepestEdge;
        // rho = B^{-T} e_r, hyper-sparse.
        let mut rho = std::mem::take(&mut self.rho_work);
        self.facto.btran_unit(r, &mut rho);

        // Steepest edge needs tau = B^{-T} d and beta_j = tau·a_j to run
        // the Forrest–Goldfarb recurrence; gq = ‖d‖² is the entering
        // column's exact weight, recomputed from the FTRAN image rather
        // than trusted from the reference value.
        let mut gq = 0.0;
        if se {
            let mut tau = std::mem::take(&mut self.flip_work);
            tau.clear_to_dim(self.sf.m);
            for (i, di) in d.iter() {
                if di != 0.0 {
                    tau.vals[i as usize] = di;
                    tau.pattern.push(i);
                    gq += di * di;
                }
            }
            self.facto.btran_sparse(&mut tau);
            self.beta_touched.clear();
            for (i, ti) in tau.iter() {
                if ti.abs() <= 1e-12 {
                    continue;
                }
                for (jcol, v) in self.sf.a_csr.row(i as usize) {
                    let j = jcol as usize;
                    if self.beta_buf[j] == 0.0 {
                        self.beta_touched.push(jcol);
                    }
                    self.beta_buf[j] += ti * v;
                }
            }
            self.flip_work = tau;
        }

        // alpha_j = rho · a_j for nonbasic j, via CSR rows of nonzero rho.
        self.alpha_touched.clear();
        for (i, ri) in rho.iter() {
            if ri.abs() <= 1e-12 {
                continue;
            }
            for (jcol, v) in self.sf.a_csr.row(i as usize) {
                let j = jcol as usize;
                if self.alpha_buf[j] == 0.0 {
                    self.alpha_touched.push(jcol);
                }
                self.alpha_buf[j] += ri * v;
            }
        }
        let ratio = zq / dr;
        let wq = self.devex[q];
        // Pre-read the touched list to appease the borrow checker.
        let touched = std::mem::take(&mut self.alpha_touched);
        for &jcol in &touched {
            let j = jcol as usize;
            let alpha = self.alpha_buf[j];
            self.alpha_buf[j] = 0.0;
            if self.stat[j] == CStat::Basic || j == q {
                continue;
            }
            self.z[j] -= ratio * alpha;
            if se {
                // gamma_j' = gamma_j - 2(alpha/dr)·beta_j + (alpha/dr)²·gq,
                // floored at the provable lower bound (alpha/dr)².
                let ar = alpha / dr;
                let nw = self.devex[j] - 2.0 * ar * self.beta_buf[j] + ar * ar * gq;
                self.devex[j] = nw.max(ar * ar).max(1e-10);
            } else {
                // Devex weight propagation.
                let cand = (alpha / dr) * (alpha / dr) * wq;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                }
            }
        }
        self.alpha_touched = touched;
        if se {
            let bt = std::mem::take(&mut self.beta_touched);
            for &jcol in &bt {
                self.beta_buf[jcol as usize] = 0.0;
            }
            self.beta_touched = bt;
        }
        // Leaving variable becomes nonbasic with reduced cost -zq/dr.
        let jl = self.basis[r];
        self.z[jl] = -ratio;
        self.devex[jl] = if se {
            (gq / (dr * dr)).max(1e-10)
        } else {
            (wq / (dr * dr)).max(1.0)
        };
        self.rho_work = rho;
    }

    /// Tracks degeneracy and toggles Bland's rule.
    fn note_progress(&mut self, theta: f64) {
        if theta <= 1e-10 {
            self.degen_streak += 1;
            if self.degen_streak >= self.opt.bland_trigger {
                self.bland = true;
            }
        } else {
            self.degen_streak = 0;
            self.bland = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Cmp, Model, Sense};
    use crate::LpError;

    fn opts_no_presolve() -> super::SolverOptions {
        super::SolverOptions {
            presolve: false,
            ..Default::default()
        }
    }

    #[test]
    fn dantzig_example() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 3.0);
        let y = m.add_nonneg("y", 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
        assert!((s.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + y = 10, x - y = 4  ->  x=7, y=3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 4.0);
        let s = m.solve_with(&opts_no_presolve()).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!((s.value(x) - 7.0).abs() < 1e-7);
        assert!((s.value(y) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
        // Same but past presolve's reach: two conflicting rows.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_variables_and_flips() {
        // max x + y with 0<=x<=1, 0<=y<=1, x + y <= 1.5
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn free_variables() {
        // min |style| objective via free var: min x st x >= -5 encoded with
        // free x and constraint x >= -5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -5.0);
        let s = m.solve_with(&opts_no_presolve()).unwrap();
        assert!((s.objective + 5.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_le_rows() {
        // x <= -2 with x in [-10, 0]: feasible, phase 1 must fix slack.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", -10.0, 0.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, -2.0);
        let s = m.solve_with(&opts_no_presolve()).unwrap();
        assert!((s.value(x) + 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate diamond; multiple optimal bases.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(x, 2.0), (y, 2.0)], Cmp::Le, 2.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-7);
    }

    #[test]
    fn maximize_with_ge_rows() {
        // max 2x + 3y st x + y >= 2, x + 2y <= 8, x <= 3
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 2.0);
        let y = m.add_nonneg("y", 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Le, 8.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        let s = m.solve().unwrap();
        // Optimum at x=3, y=2.5 -> 13.5
        assert!((s.objective - 13.5).abs() < 1e-7, "obj={}", s.objective);
    }
}
