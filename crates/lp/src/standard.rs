//! Conversion of a [`Model`] into the simplex's computational form.
//!
//! The computational form is
//!
//! ```text
//! minimize c·x   subject to   A x = b,   l ≤ x ≤ u
//! ```
//!
//! where the first `n_struct` columns are the model's variables and the
//! remaining `m` columns are one slack per row:
//!
//! * `≤` rows get a slack with bounds `[0, ∞)`;
//! * `≥` rows get a slack with bounds `(-∞, 0]`;
//! * `=` rows get a slack fixed to `[0, 0]` (keeps the all-slack crash
//!   basis square without artificial columns).
//!
//! Maximization is handled by negating the cost vector. Row/column
//! equilibration scaling (powers of two, hence exact) is folded in here;
//! [`StdForm::unscale_solution`] maps a scaled solution back.

use crate::model::{Cmp, Model, Sense};
use crate::scaling;
use crate::sparse::{CscMatrix, CsrMatrix};

/// The simplex's computational form. See module docs.
pub struct StdForm {
    /// Number of rows (equalities after slacks).
    pub m: usize,
    /// Total columns: structural + slack.
    pub n: usize,
    /// Number of structural (model) columns.
    pub n_struct: usize,
    /// Scaled constraint matrix, including slack columns.
    pub a: CscMatrix,
    /// CSR mirror of [`StdForm::a`].
    pub a_csr: CsrMatrix,
    /// Scaled right-hand side.
    pub b: Vec<f64>,
    /// Scaled minimization costs (slack costs are 0).
    pub c: Vec<f64>,
    /// Scaled lower bounds.
    pub lb: Vec<f64>,
    /// Scaled upper bounds.
    pub ub: Vec<f64>,
    /// Column scale factors (structural + slack).
    col_scale: Vec<f64>,
}

impl StdForm {
    /// Builds the computational form from `model`. `scale` toggles
    /// geometric-mean equilibration.
    pub fn build(model: &Model, scale: bool) -> StdForm {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let n = n_struct + m;

        let s = if scale && m > 0 && n_struct > 0 {
            let mut triplets = Vec::with_capacity(model.num_nonzeros());
            for (ri, c) in model.constraints.iter().enumerate() {
                for &(v, coef) in &c.terms {
                    triplets.push((ri as u32, v, coef));
                }
            }
            scaling::geometric_mean(m, n_struct, triplets.iter().copied(), 2)
        } else {
            scaling::Scaling::identity(m, n_struct)
        };

        // Columns: structural then slacks. Slack column scale is chosen as
        // 1/row_scale so the slack entry stays exactly 1.0.
        let mut columns: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (ri, cons) in model.constraints.iter().enumerate() {
            for &(v, coef) in &cons.terms {
                columns[v as usize]
                    .push((ri as u32, coef * s.row_scale[ri] * s.col_scale[v as usize]));
            }
            columns[n_struct + ri].push((ri as u32, 1.0));
        }
        let a = CscMatrix::from_columns(m, &columns);
        let a_csr = a.to_csr();

        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        let mut col_scale = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        let mut lb = Vec::with_capacity(n);
        let mut ub = Vec::with_capacity(n);
        for (j, v) in model.vars.iter().enumerate() {
            // x_orig = col_scale * x_scaled, so bounds divide and the cost
            // multiplies by the scale.
            let cs = s.col_scale[j];
            col_scale.push(cs);
            c.push(sign * v.obj * cs);
            lb.push(div_bound(v.lb, cs));
            ub.push(div_bound(v.ub, cs));
        }
        let mut b = Vec::with_capacity(m);
        for (ri, cons) in model.constraints.iter().enumerate() {
            let rs = s.row_scale[ri];
            b.push(cons.rhs * rs);
            let cs = 1.0 / rs;
            col_scale.push(cs);
            c.push(0.0);
            let (slo, shi) = match cons.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lb.push(div_bound(slo, cs));
            ub.push(div_bound(shi, cs));
        }

        StdForm {
            m,
            n,
            n_struct,
            a,
            a_csr,
            b,
            c,
            lb,
            ub,
            col_scale,
        }
    }

    /// Maps scaled solution values back to original structural variables.
    pub fn unscale_solution(&self, x_scaled: &[f64]) -> Vec<f64> {
        (0..self.n_struct)
            .map(|j| x_scaled[j] * self.col_scale[j])
            .collect()
    }

    /// Maps duals of the scaled minimization problem back to the
    /// original rows and sense: `∂obj/∂rhs_i`.
    ///
    /// Scaled row `i` is `r_i ×` the original row and the scaled cost is
    /// `sign ×` the original, so `y_i = sign · ŷ_i · r_i` where the row
    /// scale is recovered from the slack column's scale (`1 / r_i`).
    pub fn unscale_duals(&self, y_scaled: &[f64], sense: Sense) -> Vec<f64> {
        let sign = match sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        (0..self.m)
            .map(|i| sign * y_scaled[i] / self.col_scale[self.n_struct + i])
            .collect()
    }
}

/// Bound division that preserves infinities exactly.
#[inline]
fn div_bound(bound: f64, scale: f64) -> f64 {
    if bound.is_infinite() {
        bound
    } else {
        bound / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn sample_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0, 3.0);
        let y = m.add_var("y", 1.0, f64::INFINITY, 5.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Le, 14.0);
        m.add_constraint([(x, 3.0), (y, -1.0)], Cmp::Ge, 0.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 6.0);
        m
    }

    #[test]
    fn shapes_and_slack_bounds() {
        let sf = StdForm::build(&sample_model(), false);
        assert_eq!(sf.m, 3);
        assert_eq!(sf.n_struct, 2);
        assert_eq!(sf.n, 5);
        // Slack bounds by row type.
        assert_eq!((sf.lb[2], sf.ub[2]), (0.0, f64::INFINITY)); // Le
        assert_eq!((sf.lb[3], sf.ub[3]), (f64::NEG_INFINITY, 0.0)); // Ge
        assert_eq!((sf.lb[4], sf.ub[4]), (0.0, 0.0)); // Eq
                                                      // Maximize flips the cost sign.
        assert_eq!(sf.c[0], -3.0);
        assert_eq!(sf.c[1], -5.0);
        assert_eq!(sf.c[2], 0.0);
    }

    #[test]
    fn slack_columns_are_unit() {
        let sf = StdForm::build(&sample_model(), true);
        for r in 0..sf.m {
            let col: Vec<_> = sf.a.col(sf.n_struct + r).collect();
            assert_eq!(col, vec![(r as u32, 1.0)]);
        }
    }

    #[test]
    fn scaling_roundtrip_preserves_feasibility_mapping() {
        let model = sample_model();
        let sf = StdForm::build(&model, true);
        // The point (x=2, y=4) satisfies the Eq row; map it to scaled
        // space, check A x_s + slack = b_s is attainable, and map back.
        let x_orig = [2.0f64, 4.0];
        let x_scaled: Vec<f64> = (0..2).map(|j| x_orig[j] / sf.col_scale[j]).collect();
        // Row residuals (structural part only) must equal b - slack·scale.
        let mut resid = sf.b.clone();
        for j in 0..2 {
            for (r, v) in sf.a.col(j) {
                resid[r as usize] -= v * x_scaled[j];
            }
        }
        // Eq row residual must be ~0 since x satisfies it exactly.
        assert!(resid[2].abs() < 1e-12);
        let back = sf.unscale_solution(&x_scaled);
        assert!((back[0] - 2.0).abs() < 1e-12);
        assert!((back[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn csr_mirror_matches() {
        let sf = StdForm::build(&sample_model(), false);
        assert_eq!(sf.a.nnz(), sf.a_csr.nnz());
        // Row 0 of A: x + 2y + slack0.
        let row0: Vec<_> = sf.a_csr.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (1, 2.0), (2, 1.0)]);
    }
}
