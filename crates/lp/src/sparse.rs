//! Sparse matrix storage: CSC and CSR with conversion.
//!
//! The simplex keeps the constraint matrix in both layouts: CSC for
//! FTRAN-side column access (entering columns, LU factorization of the
//! basis) and CSR for BTRAN-side row access (pivot-row computation during
//! incremental reduced-cost updates).

/// Compressed sparse column matrix.
#[derive(Clone, Debug, Default)]
pub struct CscMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// `col_start[j]..col_start[j+1]` indexes column `j`'s entries.
    pub col_start: Vec<usize>,
    /// Row index of each entry.
    pub row_idx: Vec<u32>,
    /// Value of each entry.
    pub values: Vec<f64>,
}

impl CscMatrix {
    /// Builds from per-column `(row, value)` lists. Rows within a column
    /// need not be sorted; duplicates are summed.
    pub fn from_columns(nrows: usize, columns: &[Vec<(u32, f64)>]) -> Self {
        let ncols = columns.len();
        let mut col_start = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_start.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for col in columns {
            scratch.clear();
            scratch.extend_from_slice(col);
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut write: Option<(u32, f64)> = None;
            for &(r, v) in scratch.iter() {
                debug_assert!((r as usize) < nrows, "row index out of range");
                match write {
                    Some((wr, wv)) if wr == r => write = Some((wr, wv + v)),
                    Some((wr, wv)) => {
                        if wv != 0.0 {
                            row_idx.push(wr);
                            values.push(wv);
                        }
                        write = Some((r, v));
                    }
                    None => write = Some((r, v)),
                }
            }
            if let Some((wr, wv)) = write {
                if wv != 0.0 {
                    row_idx.push(wr);
                    values.push(wv);
                }
            }
            col_start.push(row_idx.len());
        }
        CscMatrix {
            nrows,
            ncols,
            col_start,
            row_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(row, value)` pairs of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.col_start[j];
        let hi = self.col_start[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of nonzeros in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_start[j + 1] - self.col_start[j]
    }

    /// Dense `y += alpha * A[:, j]` scatter.
    #[inline]
    pub fn axpy_col(&self, j: usize, alpha: f64, y: &mut [f64]) {
        for (r, v) in self.col(j) {
            y[r as usize] += alpha * v;
        }
    }

    /// Sparse dot product `A[:, j] · x`.
    #[inline]
    pub fn dot_col(&self, j: usize, x: &[f64]) -> f64 {
        self.col(j).map(|(r, v)| v * x[r as usize]).sum()
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_start = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            row_start[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            row_start[i + 1] += row_start[i];
        }
        let nnz = self.nnz();
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0; nnz];
        let mut cursor = row_start.clone();
        for j in 0..self.ncols {
            for (r, v) in self.col(j) {
                let slot = cursor[r as usize];
                col_idx[slot] = u32::try_from(j).expect("column index fits u32");
                values[slot] = v;
                cursor[r as usize] += 1;
            }
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_start,
            col_idx,
            values,
        }
    }

    /// Dense matrix-vector product `A x` (tests and the dense oracle).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj != 0.0 {
                self.axpy_col(j, xj, &mut y);
            }
        }
        y
    }
}

/// An indexed ("hyper-sparse") work vector: dense storage for O(1)
/// random access plus an explicit nonzero pattern so solves, ratio
/// tests, and updates can iterate only the entries that are actually
/// populated.
///
/// The owner is responsible for the invariant that `vals[i] == 0.0` for
/// every `i` not listed in `pattern`, and that `pattern` holds no
/// duplicates — [`clear`](WorkVec::clear) restores the empty state in
/// O(nnz) by walking the pattern. The LU factorization fills these via
/// symbolic reach; simplex iteration code only reads them.
#[derive(Clone, Debug, Default)]
pub struct WorkVec {
    /// Dense values; zero off-pattern.
    pub vals: Vec<f64>,
    /// Indices of the (structurally) nonzero entries, unordered.
    pub pattern: Vec<u32>,
}

impl WorkVec {
    /// An empty work vector of dimension `n`.
    pub fn with_dim(n: usize) -> Self {
        WorkVec {
            vals: vec![0.0; n],
            pattern: Vec::new(),
        }
    }

    /// Dimension of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.vals.len()
    }

    /// Number of pattern entries (structural nonzeros; some may have
    /// cancelled to exact zero numerically).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.pattern.len()
    }

    /// Zeroes the vector in O(nnz) and grows it to dimension `n`.
    pub fn clear_to_dim(&mut self, n: usize) {
        for &i in &self.pattern {
            self.vals[i as usize] = 0.0;
        }
        self.pattern.clear();
        if self.vals.len() < n {
            self.vals.resize(n, 0.0);
        }
    }

    /// Zeroes the vector in O(nnz).
    pub fn clear(&mut self) {
        for &i in &self.pattern {
            self.vals[i as usize] = 0.0;
        }
        self.pattern.clear();
    }

    /// Value at `i` (zero off-pattern).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.vals[i]
    }

    /// `(index, value)` pairs over the pattern.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.pattern.iter().map(|&i| (i, self.vals[i as usize]))
    }

    /// Heap bytes currently held (allocation accounting).
    pub fn heap_bytes(&self) -> usize {
        self.vals.capacity() * std::mem::size_of::<f64>()
            + self.pattern.capacity() * std::mem::size_of::<u32>()
    }
}

/// Compressed sparse row matrix (mirror of [`CscMatrix`]).
#[derive(Clone, Debug, Default)]
pub struct CsrMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// `row_start[i]..row_start[i+1]` indexes row `i`'s entries.
    pub row_start: Vec<usize>,
    /// Column index of each entry.
    pub col_idx: Vec<u32>,
    /// Value of each entry.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.row_start[i];
        let hi = self.row_start[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        CscMatrix::from_columns(
            3,
            &[
                vec![(0, 1.0), (2, 4.0)],
                vec![(1, 3.0)],
                vec![(2, 5.0), (0, 2.0)], // unsorted on purpose
            ],
        )
    }

    #[test]
    fn construction_sorts_and_counts() {
        let a = example();
        assert_eq!(a.nnz(), 5);
        let col2: Vec<_> = a.col(2).collect();
        assert_eq!(col2, vec![(0, 2.0), (2, 5.0)]);
        assert_eq!(a.col_nnz(1), 1);
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let a = CscMatrix::from_columns(2, &[vec![(0, 1.0), (0, 2.0), (1, 5.0), (1, -5.0)]]);
        assert_eq!(a.nnz(), 1);
        let col: Vec<_> = a.col(0).collect();
        assert_eq!(col, vec![(0, 3.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn csr_roundtrip() {
        let a = example();
        let r = a.to_csr();
        assert_eq!(r.nnz(), a.nnz());
        let row0: Vec<_> = r.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        let row1: Vec<_> = r.row(1).collect();
        assert_eq!(row1, vec![(1, 3.0)]);
        let row2: Vec<_> = r.row(2).collect();
        assert_eq!(row2, vec![(0, 4.0), (2, 5.0)]);
    }

    #[test]
    fn axpy_and_dot() {
        let a = example();
        let mut y = vec![0.0; 3];
        a.axpy_col(0, 2.0, &mut y);
        assert_eq!(y, vec![2.0, 0.0, 8.0]);
        assert_eq!(a.dot_col(0, &[1.0, 1.0, 1.0]), 5.0);
    }
}
