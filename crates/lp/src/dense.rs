//! A dense tableau simplex used as a differential-testing oracle.
//!
//! This implementation trades every efficiency for obviousness: explicit
//! bound rows, variable shifting/splitting to `x ≥ 0`, artificial
//! variables with a two-phase tableau, and Bland's rule throughout (which
//! guarantees termination). It is intended for LPs with at most a few
//! hundred variables — the randomized tests cross-check the sparse
//! revised simplex against it.

use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};
use crate::solution::{Solution, Status};

const EPS: f64 = 1e-9;

/// Solves `model` with the dense oracle.
///
/// # Errors
///
/// Mirrors [`Model::solve`]: infeasible, unbounded, or an iteration limit.
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    // --- Transform variables to x' >= 0. ---
    // For each original var, record how to map back:
    //   Shift(lb, col): x = lb + t[col]
    //   Neg(ub, col): x = ub - t[col]
    //   Split(p, n): x = t[p] - t[n]
    enum Map {
        Shift(f64, usize),
        Neg(f64, usize),
        Split(usize, usize),
    }
    let mut maps = Vec::with_capacity(model.num_vars());
    let mut ncols = 0usize;
    // Extra rows for finite "other side" bounds.
    let mut extra_rows: Vec<(usize, f64)> = Vec::new(); // t[col] <= span
    for v in 0..model.num_vars() {
        let (lb, ub) = model.var_bounds(crate::model::VarId(v as u32));
        if lb.is_finite() {
            maps.push(Map::Shift(lb, ncols));
            if ub.is_finite() {
                extra_rows.push((ncols, ub - lb));
            }
            ncols += 1;
        } else if ub.is_finite() {
            maps.push(Map::Neg(ub, ncols));
            ncols += 1;
        } else {
            maps.push(Map::Split(ncols, ncols + 1));
            ncols += 2;
        }
    }

    // --- Assemble rows in t-space: (coeffs, cmp, rhs). ---
    let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
    for c in &model.constraints {
        let mut coef = vec![0.0; ncols];
        let mut rhs = c.rhs;
        for &(vid, a) in &c.terms {
            match maps[vid as usize] {
                Map::Shift(lb, col) => {
                    coef[col] += a;
                    rhs -= a * lb;
                }
                Map::Neg(ub, col) => {
                    coef[col] -= a;
                    rhs -= a * ub;
                }
                Map::Split(p, n) => {
                    coef[p] += a;
                    coef[n] -= a;
                }
            }
        }
        rows.push((coef, c.cmp, rhs));
    }
    for &(col, span) in &extra_rows {
        let mut coef = vec![0.0; ncols];
        coef[col] = 1.0;
        rows.push((coef, Cmp::Le, span));
    }

    // Costs in t-space (minimization).
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; ncols];
    let mut cost_offset = 0.0;
    for v in 0..model.num_vars() {
        let obj = sign * model.var_obj(crate::model::VarId(v as u32));
        match maps[v] {
            Map::Shift(lb, col) => {
                cost[col] += obj;
                cost_offset += obj * lb;
            }
            Map::Neg(ub, col) => {
                cost[col] -= obj;
                cost_offset += obj * ub;
            }
            Map::Split(p, n) => {
                cost[p] += obj;
                cost[n] -= obj;
            }
        }
    }

    // --- Standard form with slacks and artificials; b >= 0. ---
    let m = rows.len();
    let mut nslack = 0usize;
    for (_, cmp, _) in &rows {
        if !matches!(cmp, Cmp::Eq) {
            nslack += 1;
        }
    }
    let ntotal = ncols + nslack + m; // artificials on every row for simplicity
                                     // Tableau: m rows x (ntotal + 1) (last col = rhs).
    let mut t = vec![vec![0.0; ntotal + 1]; m];
    let mut basis = vec![0usize; m];
    let mut slack_cursor = ncols;
    for (i, (coef, cmp, rhs)) in rows.iter().enumerate() {
        let flip = if *rhs < 0.0 { -1.0 } else { 1.0 };
        for j in 0..ncols {
            t[i][j] = flip * coef[j];
        }
        t[i][ntotal] = flip * rhs;
        match cmp {
            Cmp::Le => {
                t[i][slack_cursor] = flip;
                slack_cursor += 1;
            }
            Cmp::Ge => {
                t[i][slack_cursor] = -flip;
                slack_cursor += 1;
            }
            Cmp::Eq => {}
        }
        // Artificial for the row.
        t[i][ncols + nslack + i] = 1.0;
        basis[i] = ncols + nslack + i;
    }

    // --- Phase 1: minimize sum of artificials. ---
    let mut phase1_cost = vec![0.0; ntotal];
    for j in ncols + nslack..ntotal {
        phase1_cost[j] = 1.0;
    }
    let max_iter = 200 * (m + ntotal) + 1000;
    let mut iterations = run_phase(&mut t, &mut basis, &phase1_cost, max_iter)?;
    let infeas: f64 = (0..m)
        .filter(|&i| basis[i] >= ncols + nslack)
        .map(|i| t[i][ntotal])
        .sum();
    if infeas > 1e-7 {
        return Err(LpError::Infeasible);
    }
    // Pivot remaining artificials out (or their rows are redundant).
    for i in 0..m {
        if basis[i] >= ncols + nslack {
            if let Some(j) = (0..ncols + nslack).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut basis, i, j);
                iterations += 1;
            }
            // Otherwise the row is all-zero (redundant): leave it.
        }
    }

    // --- Phase 2 with artificials banned. ---
    let mut phase2_cost = vec![0.0; ntotal];
    phase2_cost[..ncols].copy_from_slice(&cost);
    // Ban artificials by infinite cost surrogate: simply exclude them in
    // pricing via a validity mask encoded as cost = f64::NAN (checked).
    iterations += run_phase_masked(&mut t, &mut basis, &phase2_cost, ncols + nslack, max_iter)?;

    // --- Extract t-space solution and map back. ---
    let mut tvals = vec![0.0; ntotal];
    for i in 0..m {
        if basis[i] < ntotal {
            tvals[basis[i]] = t[i][ntotal];
        }
    }
    let mut x = vec![0.0; model.num_vars()];
    for v in 0..model.num_vars() {
        x[v] = match maps[v] {
            Map::Shift(lb, col) => lb + tvals[col],
            Map::Neg(ub, col) => ub - tvals[col],
            Map::Split(p, n) => tvals[p] - tvals[n],
        };
    }
    let objective = model.objective_at(&x);
    let _ = cost_offset;
    Ok(Solution {
        status: Status::Optimal,
        objective,
        x,
        duals: None, // the oracle only certifies primal objectives
        iterations,
        // The tableau is built (and therefore "factorized") exactly once;
        // every later pivot rewrites it in place. Mirrors the sparse
        // engine's convention of counting the initial factorization.
        refactorizations: 1,
        stats: Default::default(),
    })
}

/// Bland-rule tableau iterations for the given cost vector. Returns the
/// number of pivots performed.
fn run_phase(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    max_iter: usize,
) -> Result<usize, LpError> {
    run_phase_masked(t, basis, cost, usize::MAX, max_iter)
}

/// Same as [`run_phase`] but columns `>= ban_from` may not enter.
fn run_phase_masked(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    ban_from: usize,
    max_iter: usize,
) -> Result<usize, LpError> {
    let m = t.len();
    if m == 0 {
        return Ok(0);
    }
    let ntotal = cost.len();
    for it in 0..max_iter {
        // Reduced costs: z_j = c_j - c_B . column_j.
        let cb: Vec<f64> = basis.iter().map(|&b| cost[b]).collect();
        // Entering: lowest index with z_j < -EPS (Bland).
        let mut entering = None;
        for j in 0..ntotal.min(ban_from) {
            if basis.contains(&j) {
                continue;
            }
            let zj = cost[j] - (0..m).map(|i| cb[i] * t[i][j]).sum::<f64>();
            if zj < -EPS {
                entering = Some(j);
                break;
            }
        }
        let Some(q) = entering else {
            return Ok(it);
        };
        // Leaving: min ratio, Bland tie-break on basis index.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if t[i][q] > EPS {
                let ratio = t[i][ntotal] / t[i][q];
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS || (ratio < br + EPS && basis[i] < basis[bi]) {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = best else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, r, q);
    }
    Err(LpError::IterationLimit {
        iterations: max_iter,
    })
}

/// Gauss-Jordan pivot on (row, col).
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], r: usize, q: usize) {
    let m = t.len();
    let width = t[0].len();
    let pv = t[r][q];
    debug_assert!(pv.abs() > 1e-12);
    for j in 0..width {
        t[r][j] /= pv;
    }
    for i in 0..m {
        if i != r && t[i][q].abs() > 0.0 {
            let f = t[i][q];
            for j in 0..width {
                t[i][j] -= f * t[r][j];
            }
        }
    }
    basis[r] = q;
}

#[cfg(test)]
mod tests {
    use super::solve;
    use crate::model::{Cmp, Model, Sense};
    use crate::LpError;

    #[test]
    fn dantzig_example() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_nonneg("x", 3.0);
        let y = m.add_nonneg("y", 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&m).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-7);
    }

    #[test]
    fn negative_bounds() {
        // min x + 2y with x in [-3, 5], y in [-1, 4], x + y >= 1.
        // Push y down first (costlier), then x: optimum y=-1 is not
        // allowed by x+y>=1 unless x>=2; trade-off: cost(x, 1-x) = 2 - x
        // decreasing in x, so x = 5, y = -1 hits x+y = 4 >= 1 with cost 3.
        // Check candidates: (5,-1): 5-2=3. (2,-1): 0. Wait x=2,y=-1 also
        // satisfies x+y=1, cost 2-2=0. Continue down x: x in [-3,5],
        // y >= 1-x and y >= -1: for x <= 2 need y = 1-x: cost 2-x, best
        // at x=2 -> 0; for x > 2, y = -1: cost x-2 > 0. Optimum 0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -3.0, 5.0, 1.0);
        let y = m.add_var("y", -1.0, 4.0, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let s = solve(&m).unwrap();
        assert!(s.objective.abs() < 1e-7, "objective {}", s.objective);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
        assert!((s.value(y) + 1.0).abs() < 1e-7);
    }

    #[test]
    fn free_var_reaches_negative_optimum() {
        // min y st y >= -7 (y free otherwise).
        let mut m = Model::new(Sense::Minimize);
        let y = m.add_var("y", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint([(y, 1.0)], Cmp::Ge, -7.0);
        let s = solve(&m).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-7);
    }

    #[test]
    fn unbounded_via_free_var() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 5.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn equality_rows() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg("x", 1.0);
        let y = m.add_nonneg("y", 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 4.0);
        let s = solve(&m).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!((s.value(x) - 7.0).abs() < 1e-7);
    }
}
