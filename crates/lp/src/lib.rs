//! A self-contained sparse linear-programming solver.
//!
//! The SPAA 2019 coflow paper solves its time-indexed relaxations with
//! Gurobi; this crate is the from-scratch substitute. It implements a
//! **bounded-variable two-phase revised simplex**:
//!
//! * columns stored sparsely (CSC + CSR mirrors) so the time-indexed
//!   coflow LPs — tall, very sparse matrices — stay cheap to price;
//! * variable bounds handled implicitly by the simplex (no explicit
//!   `x ≤ 1` rows), which keeps the basis an order of magnitude smaller
//!   for time-indexed formulations where *every* variable is bounded;
//! * sparse LU basis factorization (Gilbert–Peierls with Markowitz-style
//!   threshold pivoting), product-form (eta) updates, periodic
//!   refactorization, and **hyper-sparse** FTRAN/BTRAN that walk only
//!   the symbolic reach of each right-hand side;
//! * composite phase 1 (minimize total primal infeasibility) starting
//!   from an all-slack crash basis — coflow LPs start with only a few
//!   infeasible rows, so phase 1 is short;
//! * Devex pricing with incremental reduced costs in phase 2, and a
//!   Bland's-rule fallback that guarantees termination under degeneracy;
//! * a warm-start dual simplex with a bound-flipping ratio test and
//!   dual-Devex row pricing for incremental re-solves;
//! * geometric-mean equilibration scaling and a light presolve.
//!
//! A dense tableau simplex ([`dense`]) acts as a differential-testing
//! oracle for randomized tests and remains reachable in production via
//! [`SolverOptions::engine`] (`LpEngine::Dense`).
//!
//! # Example
//!
//! ```
//! use coflow_lp::{Model, Sense, Cmp};
//!
//! // maximize 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (Dantzig's example)
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
//! m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
//! m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
//! m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - 36.0).abs() < 1e-7);
//! assert!((sol.value(x) - 2.0).abs() < 1e-7);
//! assert!((sol.value(y) - 6.0).abs() < 1e-7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Simplex kernels and factorizations walk several parallel arrays by one
// position; zip-rewrites of those loops obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

pub mod dense;
mod error;
mod model;
mod presolve;
mod scaling;
mod simplex;
mod solution;
mod sparse;
mod standard;

pub use error::{DistressKind, LpError};
pub use model::{Cmp, ConstraintId, Model, Sense, VarId};
pub use presolve::{detect_slot_blocks, slot_block_crash, SlotBlocks};
pub use simplex::dual::{Basis, BasisStatus};
pub use simplex::{BasisUpdate, LpEngine, Pricing, SolverOptions};
pub use solution::{Solution, SolveStats, Status};
pub use sparse::{CscMatrix, CsrMatrix, WorkVec};
