//! The user-facing LP model builder.

use crate::error::LpError;
use crate::simplex::SolverOptions;
use crate::solution::Solution;
use std::fmt;

/// Identifier of a decision variable within a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

/// Identifier of a constraint within a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) u32);

impl VarId {
    /// Dense index of the variable in `0..model.num_vars()`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VarId` from a dense index. The id is only meaningful for
    /// the model that assigned it; model methods panic on out-of-range ids.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        VarId(u32::try_from(i).expect("variable index exceeds u32"))
    }
}

impl ConstraintId {
    /// Dense index of the constraint in `0..model.num_constraints()`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ConstraintId` from a dense index. The id is only
    /// meaningful for the model that assigned it; model methods panic on
    /// out-of-range ids.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ConstraintId(u32::try_from(i).expect("constraint index exceeds u32"))
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective (the coflow LPs minimize `Σ w_j C_j`).
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

#[derive(Clone, Debug)]
pub(crate) struct VarData {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

#[derive(Clone, Debug)]
pub(crate) struct ConstraintData {
    /// Sorted, deduplicated (column, coefficient) pairs.
    pub terms: Vec<(u32, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// An LP model: variables with bounds, linear constraints, and a linear
/// objective.
///
/// Build with [`Model::add_var`] / [`Model::add_constraint`], then call
/// [`Model::solve`]. The model is reusable: `solve` does not consume it.
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<ConstraintData>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The model's optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Total number of nonzero coefficients across all constraints.
    pub fn num_nonzeros(&self) -> usize {
        self.constraints.iter().map(|c| c.terms.len()).sum()
    }

    /// Adds a variable with bounds `[lb, ub]` and objective coefficient
    /// `obj`; returns its id.
    ///
    /// Use `f64::INFINITY` / `f64::NEG_INFINITY` for unbounded directions.
    /// `lb > ub`, or a NaN anywhere, panics immediately — those are always
    /// construction bugs.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(
            !lb.is_nan() && !ub.is_nan() && !obj.is_nan(),
            "NaN in variable"
        );
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        assert!(obj.is_finite(), "objective coefficient must be finite");
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarData {
            name: name.into(),
            lb,
            ub,
            obj,
        });
        id
    }

    /// Convenience: a variable with bounds `[0, ∞)`.
    pub fn add_nonneg(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, obj)
    }

    /// Adds the constraint `Σ coeff·var  cmp  rhs`; returns its id.
    ///
    /// Duplicate variables in `terms` are summed. Zero coefficients are
    /// dropped. NaN coefficients or rhs panic.
    pub fn add_constraint<I>(&mut self, terms: I, cmp: Cmp, rhs: f64) -> ConstraintId
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        assert!(!rhs.is_nan(), "NaN rhs");
        let mut collected: Vec<(u32, f64)> = terms
            .into_iter()
            .map(|(v, c)| {
                assert!(!c.is_nan(), "NaN coefficient");
                assert!(
                    v.index() < self.vars.len(),
                    "constraint references unknown variable"
                );
                (v.0, c)
            })
            .collect();
        collected.sort_unstable_by_key(|&(v, _)| v);
        // Merge duplicates, drop (near-)zeros.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(collected.len());
        for (v, c) in collected {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0.0);

        let id = ConstraintId(u32::try_from(self.constraints.len()).expect("too many constraints"));
        self.constraints.push(ConstraintData {
            terms: merged,
            cmp,
            rhs,
        });
        id
    }

    /// Adds `coeff` to the coefficient of variable `v` in constraint
    /// `c` (inserting the term if absent, dropping it if the sum cancels
    /// to zero).
    ///
    /// Together with [`add_var`](Model::add_var) and
    /// [`add_constraint`](Model::add_constraint) this is the structural
    /// half of warm-started re-solves: append new columns, stitch them
    /// into *existing* rows (a new flow joining shared capacity rows),
    /// grow the previous basis with [`Basis::grow`](crate::Basis::grow),
    /// and let [`solve_warm`](Model::solve_warm) pivot back to
    /// optimality. Mutating the coefficient of a variable that is
    /// *basic* in the snapshot is allowed — the warm solve refactorizes
    /// the basis from the current matrix — but appending nonbasic
    /// columns keeps the re-solve cheapest. NaN panics.
    pub fn add_term(&mut self, c: ConstraintId, v: VarId, coeff: f64) {
        assert!(!coeff.is_nan(), "NaN coefficient");
        assert!(
            v.index() < self.vars.len(),
            "constraint references unknown variable"
        );
        let terms = &mut self.constraints[c.index()].terms;
        match terms.binary_search_by_key(&v.0, |&(col, _)| col) {
            Ok(pos) => {
                terms[pos].1 += coeff;
                if terms[pos].1 == 0.0 {
                    terms.remove(pos);
                }
            }
            Err(pos) => {
                if coeff != 0.0 {
                    terms.insert(pos, (v.0, coeff));
                }
            }
        }
    }

    /// Changes the right-hand side of constraint `c`.
    ///
    /// The workhorse of warm-started re-solves: after an RHS change the
    /// previous basis stays dual feasible, so
    /// [`solve_warm`](Model::solve_warm) re-optimizes with a few dual
    /// simplex pivots. NaN panics.
    pub fn set_rhs(&mut self, c: ConstraintId, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN rhs");
        self.constraints[c.index()].rhs = rhs;
    }

    /// Changes the objective coefficient of variable `v`.
    ///
    /// After an objective change the previous basis stays primal
    /// feasible, so [`solve_warm`](Model::solve_warm) resumes primal
    /// phase 2 directly. Non-finite coefficients panic.
    pub fn set_obj(&mut self, v: VarId, obj: f64) {
        assert!(obj.is_finite(), "objective coefficient must be finite");
        self.vars[v.index()].obj = obj;
    }

    /// Changes the bounds of variable `v`. Panics on `lb > ub` or NaN.
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        assert!(!lb.is_nan() && !ub.is_nan(), "NaN in variable bounds");
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        let d = &mut self.vars[v.index()];
        d.lb = lb;
        d.ub = ub;
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Bounds `[lb, ub]` of variable `v`.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        let d = &self.vars[v.index()];
        (d.lb, d.ub)
    }

    /// Objective coefficient of variable `v`.
    pub fn var_obj(&self, v: VarId) -> f64 {
        self.vars[v.index()].obj
    }

    /// Borrowed view of constraint `c`.
    pub fn constraint(&self, c: ConstraintId) -> ConstraintView<'_> {
        ConstraintView {
            data: &self.constraints[c.index()],
        }
    }

    /// Iterates over all constraints in insertion order.
    pub fn constraints_iter(&self) -> impl Iterator<Item = ConstraintView<'_>> {
        self.constraints.iter().map(|data| ConstraintView { data })
    }

    /// Evaluates the objective at a point (no feasibility check).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Maximum constraint violation of `x` (0 when feasible); also checks
    /// variable bounds. Useful in tests and debug assertions.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        let mut worst: f64 = 0.0;
        for (v, &xi) in self.vars.iter().zip(x) {
            worst = worst.max(v.lb - xi).max(xi - v.ub);
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v as usize]).sum();
            let viol = match c.cmp {
                Cmp::Le => lhs - c.rhs,
                Cmp::Ge => c.rhs - lhs,
                Cmp::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// Solves the model with default options.
    ///
    /// # Errors
    ///
    /// [`LpError`] on infeasible/unbounded models or solver failure; see
    /// [`Status`](crate::Status) for the taxonomy.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves the model with explicit solver options.
    ///
    /// # Errors
    ///
    /// [`LpError`] on infeasible/unbounded models or solver failure.
    pub fn solve_with(&self, options: &SolverOptions) -> Result<Solution, LpError> {
        crate::simplex::solve(self, options)
    }

    /// Solves the model starting from an optional basis snapshot and
    /// returns the solution together with the final basis for reuse.
    ///
    /// The intended loop is: solve once cold (`warm = None`), keep the
    /// returned [`Basis`](crate::Basis), perturb the model
    /// ([`set_rhs`](Model::set_rhs) / [`set_obj`](Model::set_obj) /
    /// [`set_bounds`](Model::set_bounds)), and re-solve warm. RHS and
    /// bound changes re-optimize with the dual simplex; objective
    /// changes resume primal phase 2; a snapshot whose shape no longer
    /// matches the model is silently treated as a cold start.
    ///
    /// Warm solves skip presolve (a basis refers to the unreduced
    /// model), so a warm re-solve of an *unperturbed* model may report
    /// more iterations than [`solve`](Model::solve) — it is the
    /// *re-solve after a small change* that gets cheap.
    ///
    /// # Errors
    ///
    /// [`LpError`] on infeasible/unbounded models or solver failure.
    pub fn solve_warm(
        &self,
        warm: Option<&crate::Basis>,
        options: &SolverOptions,
    ) -> Result<(Solution, crate::Basis), LpError> {
        use crate::simplex::{check_finite, conservative_options, into_distress, is_distress};
        let attempt = |w: Option<&crate::Basis>, o: &SolverOptions| {
            crate::simplex::dual::solve_warm(self, w, o)
                .and_then(|(sol, basis)| check_finite(sol).map(|s| (s, basis)))
        };
        match attempt(warm, options) {
            Ok(pair) => Ok(pair),
            Err(e) if is_distress(&e) => {
                // Conservative retry runs cold: the warm basis itself is
                // the most likely source of a singular factorization.
                match attempt(None, &conservative_options(options)) {
                    Ok((mut sol, basis)) => {
                        sol.stats.distress_retries += 1;
                        Ok((sol, basis))
                    }
                    Err(e2) if is_distress(&e2) => {
                        match crate::dense::solve(self).and_then(check_finite) {
                            Ok(mut sol) => {
                                sol.stats.distress_retries += 1;
                                sol.stats.dense_fallbacks += 1;
                                let basis = crate::Basis::from_point(self, &sol.x);
                                Ok((sol, basis))
                            }
                            Err(e3) => Err(into_distress(e3)),
                        }
                    }
                    Err(e2) => Err(e2),
                }
            }
            Err(e) => Err(e),
        }
    }
}

/// Read-only view of one constraint (terms, operator, right-hand side).
pub struct ConstraintView<'a> {
    data: &'a ConstraintData,
}

impl ConstraintView<'_> {
    /// The `(variable, coefficient)` terms, sorted by variable.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.data.terms.iter().map(|&(v, a)| (VarId(v), a))
    }

    /// The comparison operator.
    pub fn cmp(&self) -> Cmp {
        self.data.cmp
    }

    /// The right-hand side.
    pub fn rhs(&self) -> f64 {
        self.data.rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_nonneg("x", 1.0);
        m.add_constraint([(x, 1.0), (x, 2.0), (x, -3.0)], Cmp::Le, 5.0);
        assert_eq!(m.constraints[0].terms.len(), 0, "3 - 3 = 0 dropped");
        m.add_constraint([(x, 1.0), (x, 0.5)], Cmp::Ge, 1.0);
        assert_eq!(m.constraints[1].terms, vec![(0, 1.5)]);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 2.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_panics() {
        let mut m1 = Model::new(Sense::Minimize);
        let mut m2 = Model::new(Sense::Minimize);
        let _ = m1.add_nonneg("x", 0.0);
        let y = {
            let y = m2.add_nonneg("y", 0.0);
            m2.add_nonneg("z", 0.0);
            y
        };
        let _ = y;
        let z = VarId(5);
        m1.add_constraint([(z, 1.0)], Cmp::Le, 0.0);
    }

    #[test]
    fn violation_measure() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.5);
        assert!(m.max_violation(&[1.0, 0.5]) < 1e-12);
        assert!((m.max_violation(&[0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert!((m.max_violation(&[2.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn objective_eval() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 3.0);
        let y = m.add_var("y", 0.0, 10.0, -1.0);
        let _ = (x, y);
        assert!((m.objective_at(&[2.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
