//! Geometric-mean equilibration scaling.
//!
//! Time-indexed coflow LPs mix coefficients of very different magnitudes:
//! flow demands (up to terabytes) multiply rate variables while the
//! completion-time rows have unit coefficients. Equilibration brings every
//! row and column's nonzeros toward magnitude 1, which keeps the simplex
//! pivots well conditioned.

/// Row/column scale factors such that the scaled matrix entry is
/// `row_scale[i] * a_ij * col_scale[j]`.
#[derive(Clone, Debug)]
pub struct Scaling {
    /// Multiplier applied to each row.
    pub row_scale: Vec<f64>,
    /// Multiplier applied to each column.
    pub col_scale: Vec<f64>,
}

impl Scaling {
    /// Identity scaling.
    pub fn identity(nrows: usize, ncols: usize) -> Self {
        Scaling {
            row_scale: vec![1.0; nrows],
            col_scale: vec![1.0; ncols],
        }
    }
}

/// Computes geometric-mean scaling from triplet data with `passes`
/// alternating row/column sweeps (2 is the customary number).
///
/// Scale factors are rounded to powers of two so that scaling is exact in
/// floating point and introduces no rounding error of its own.
pub fn geometric_mean(
    nrows: usize,
    ncols: usize,
    entries: impl Iterator<Item = (u32, u32, f64)> + Clone,
    passes: usize,
) -> Scaling {
    let mut s = Scaling::identity(nrows, ncols);
    for _ in 0..passes {
        // Row pass: scale each row by 1/sqrt(min*max) of scaled magnitudes.
        let mut row_min = vec![f64::INFINITY; nrows];
        let mut row_max = vec![0.0f64; nrows];
        for (i, j, v) in entries.clone() {
            let av = (v * s.row_scale[i as usize] * s.col_scale[j as usize]).abs();
            if av > 0.0 {
                let i = i as usize;
                row_min[i] = row_min[i].min(av);
                row_max[i] = row_max[i].max(av);
            }
        }
        for i in 0..nrows {
            if row_max[i] > 0.0 {
                let target = 1.0 / (row_min[i] * row_max[i]).sqrt();
                s.row_scale[i] *= pow2_round(target);
            }
        }
        // Column pass.
        let mut col_min = vec![f64::INFINITY; ncols];
        let mut col_max = vec![0.0f64; ncols];
        for (i, j, v) in entries.clone() {
            let av = (v * s.row_scale[i as usize] * s.col_scale[j as usize]).abs();
            if av > 0.0 {
                let j = j as usize;
                col_min[j] = col_min[j].min(av);
                col_max[j] = col_max[j].max(av);
            }
        }
        for j in 0..ncols {
            if col_max[j] > 0.0 {
                let target = 1.0 / (col_min[j] * col_max[j]).sqrt();
                s.col_scale[j] *= pow2_round(target);
            }
        }
    }
    s
}

/// Nearest power of two (keeps scaling exact in binary floating point).
fn pow2_round(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    let e = x.log2().round();
    // Clamp to avoid overflow on pathological inputs.
    (2.0f64).powi(e.clamp(-512.0, 512.0) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_for_unit_matrix() {
        let entries = [(0u32, 0u32, 1.0), (1, 1, 1.0)];
        let s = geometric_mean(2, 2, entries.iter().copied(), 2);
        assert_eq!(s.row_scale, vec![1.0, 1.0]);
        assert_eq!(s.col_scale, vec![1.0, 1.0]);
    }

    #[test]
    fn extreme_magnitudes_are_compressed() {
        // One row with entries 1e6 and 1e-6, another with 1e3.
        let entries = vec![(0u32, 0u32, 1e6), (0, 1, 1e-6), (1, 0, 1e3), (1, 1, 1e3)];
        let s = geometric_mean(2, 2, entries.iter().copied(), 2);
        let mut worst: f64 = 0.0;
        for &(i, j, v) in &entries {
            let scaled = (v * s.row_scale[i as usize] * s.col_scale[j as usize]).abs();
            worst = worst.max(scaled.max(1.0 / scaled));
        }
        // Unscaled worst ratio is 1e6; scaled should be far closer to 1.
        assert!(worst < 1e4, "worst scaled magnitude ratio {worst}");
    }

    #[test]
    fn scales_are_powers_of_two() {
        let entries = [(0u32, 0u32, 3.7), (0, 1, 0.02), (1, 1, 950.0)];
        let s = geometric_mean(2, 2, entries.iter().copied(), 2);
        for &f in s.row_scale.iter().chain(s.col_scale.iter()) {
            let l = f.log2();
            assert!((l - l.round()).abs() < 1e-12, "{f} is not a power of two");
        }
    }

    #[test]
    fn pow2_round_basics() {
        assert_eq!(pow2_round(1.0), 1.0);
        assert_eq!(pow2_round(3.0), 4.0);
        assert_eq!(pow2_round(0.3), 0.25);
    }
}
