//! Light presolve: fixed-variable substitution, empty and singleton rows,
//! unconstrained columns.
//!
//! The reductions are primal-only (this solver does not report duals), so
//! postsolve merely re-inserts eliminated variables' values. Presolve can
//! already decide infeasibility/unboundedness; those escape early as
//! [`LpError`].

use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};

/// Tolerance for bound-crossing detection during presolve.
const TOL: f64 = 1e-9;

/// Outcome of presolving a [`Model`].
#[derive(Debug)]
pub struct Presolved {
    /// The reduced model handed to the simplex.
    pub reduced: Model,
    /// For each original variable: `Fixed(v)` or `Kept(index in reduced)`.
    pub disposition: Vec<Disposition>,
}

/// What happened to an original variable during presolve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Disposition {
    /// Variable was eliminated with this value.
    Fixed(f64),
    /// Variable survives at this index in the reduced model.
    Kept(usize),
}

/// Runs presolve on `model`.
///
/// # Errors
///
/// [`LpError::Infeasible`] or [`LpError::Unbounded`] when presolve can
/// already prove either.
pub fn presolve(model: &Model) -> Result<Presolved, LpError> {
    let n = model.num_vars();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let mut row_alive = vec![true; model.num_constraints()];

    // Pass 1: singleton rows become bound tightenings, iterated to a
    // fixpoint (each pass can fix variables that empty further rows).
    // The iteration count is bounded by the number of rows.
    let mut changed = true;
    let mut passes = 0;
    while changed && passes <= model.num_constraints() + 1 {
        changed = false;
        passes += 1;
        for (ri, c) in model.constraints.iter().enumerate() {
            if !row_alive[ri] {
                continue;
            }
            // Count live terms (terms on fixed variables contribute rhs).
            let live: Vec<(usize, f64)> = c
                .terms
                .iter()
                .map(|&(v, a)| (v as usize, a))
                .filter(|&(v, _)| ub[v] - lb[v] > TOL)
                .collect();
            let fixed_sum: f64 = c
                .terms
                .iter()
                .map(|&(v, a)| (v as usize, a))
                .filter(|&(v, _)| ub[v] - lb[v] <= TOL)
                .map(|(v, a)| a * 0.5 * (lb[v] + ub[v]))
                .sum();
            let rhs = c.rhs - fixed_sum;
            match live.len() {
                0 => {
                    let ok = match c.cmp {
                        Cmp::Le => rhs >= -TOL * (1.0 + c.rhs.abs()),
                        Cmp::Ge => rhs <= TOL * (1.0 + c.rhs.abs()),
                        Cmp::Eq => rhs.abs() <= TOL * (1.0 + c.rhs.abs()),
                    };
                    if !ok {
                        return Err(LpError::Infeasible);
                    }
                    row_alive[ri] = false;
                    changed = true;
                }
                1 => {
                    let (v, a) = live[0];
                    debug_assert!(a != 0.0);
                    let bound = rhs / a;
                    let tightens_ub = match c.cmp {
                        Cmp::Le => a > 0.0,
                        Cmp::Ge => a < 0.0,
                        Cmp::Eq => true,
                    };
                    let tightens_lb = match c.cmp {
                        Cmp::Le => a < 0.0,
                        Cmp::Ge => a > 0.0,
                        Cmp::Eq => true,
                    };
                    if tightens_ub && bound < ub[v] {
                        ub[v] = bound;
                        changed = true;
                    }
                    if tightens_lb && bound > lb[v] {
                        lb[v] = bound;
                        changed = true;
                    }
                    if lb[v] > ub[v] + TOL * (1.0 + lb[v].abs()) {
                        return Err(LpError::Infeasible);
                    }
                    // Snap crossing caused by roundoff.
                    if lb[v] > ub[v] {
                        let mid = 0.5 * (lb[v] + ub[v]);
                        lb[v] = mid;
                        ub[v] = mid;
                    }
                    row_alive[ri] = false;
                }
                _ => {}
            }
        }
    }

    // Pass 2: fix variables with equal bounds; detect unconstrained
    // columns and fix them at their objective-favored bound.
    let min_sense = model.sense == Sense::Minimize;
    let mut appears = vec![false; n];
    for (ri, c) in model.constraints.iter().enumerate() {
        if !row_alive[ri] {
            continue;
        }
        for &(v, _) in &c.terms {
            if ub[v as usize] - lb[v as usize] > TOL {
                appears[v as usize] = true;
            }
        }
    }

    let mut disposition = Vec::with_capacity(n);
    let mut kept = 0usize;
    for v in 0..n {
        if ub[v] - lb[v] <= TOL {
            disposition.push(Disposition::Fixed(0.5 * (lb[v] + ub[v])));
        } else if !appears[v] {
            // Unconstrained: push to the favored bound.
            let c = model.vars[v].obj * if min_sense { 1.0 } else { -1.0 };
            let val = if c > 0.0 {
                lb[v]
            } else if c < 0.0 {
                ub[v]
            } else if lb[v].is_finite() {
                lb[v]
            } else if ub[v].is_finite() {
                ub[v]
            } else {
                0.0
            };
            if !val.is_finite() {
                return Err(LpError::Unbounded);
            }
            disposition.push(Disposition::Fixed(val));
        } else {
            disposition.push(Disposition::Kept(kept));
            kept += 1;
        }
    }

    // Assemble the reduced model.
    let mut reduced = Model::new(model.sense);
    for v in 0..n {
        if let Disposition::Kept(_) = disposition[v] {
            reduced.add_var(model.vars[v].name.clone(), lb[v], ub[v], model.vars[v].obj);
        }
    }
    for (ri, c) in model.constraints.iter().enumerate() {
        if !row_alive[ri] {
            continue;
        }
        let mut rhs = c.rhs;
        let mut terms = Vec::with_capacity(c.terms.len());
        for &(v, a) in &c.terms {
            match disposition[v as usize] {
                Disposition::Fixed(val) => rhs -= a * val,
                Disposition::Kept(idx) => {
                    terms.push((crate::model::VarId(idx as u32), a));
                }
            }
        }
        if terms.is_empty() {
            let ok = match c.cmp {
                Cmp::Le => rhs >= -TOL * (1.0 + c.rhs.abs()),
                Cmp::Ge => rhs <= TOL * (1.0 + c.rhs.abs()),
                Cmp::Eq => rhs.abs() <= TOL * (1.0 + c.rhs.abs()),
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            continue;
        }
        reduced.add_constraint(terms, c.cmp, rhs);
    }

    Ok(Presolved {
        reduced,
        disposition,
    })
}

/// Maps a reduced-model solution vector back to the original variables.
pub fn postsolve(pre: &Presolved, x_reduced: &[f64]) -> Vec<f64> {
    pre.disposition
        .iter()
        .map(|d| match *d {
            Disposition::Fixed(v) => v,
            Disposition::Kept(i) => x_reduced[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    #[test]
    fn fixed_vars_are_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 2.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let p = presolve(&m).unwrap();
        // After substituting x=2 the row is a singleton, becomes the bound
        // y >= 3, and y (now appearing in no row, cost +1) is fixed at its
        // tightened lower bound. Presolve solves this LP outright.
        assert_eq!(p.reduced.num_vars(), 0);
        assert_eq!(p.reduced.num_constraints(), 0);
        assert_eq!(p.disposition[0], Disposition::Fixed(2.0));
        assert_eq!(p.disposition[1], Disposition::Fixed(3.0));
        let x_full = postsolve(&p, &[]);
        assert_eq!(x_full, vec![2.0, 3.0]);
    }

    #[test]
    fn singleton_row_tightens_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        let y = m.add_var("y", 0.0, 100.0, 1.0);
        m.add_constraint([(x, 2.0)], Cmp::Le, 10.0); // x <= 5
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let p = presolve(&m).unwrap();
        // Singleton row removed; x's upper bound is now 5.
        assert_eq!(p.reduced.num_constraints(), 1);
        let xi = match p.disposition[0] {
            Disposition::Kept(i) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            p.reduced.var_bounds(crate::model::VarId(xi as u32)),
            (0.0, 5.0)
        );
    }

    #[test]
    fn singleton_eq_fixes_variable() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        let y = m.add_var("y", 0.0, 100.0, 0.0);
        m.add_constraint([(x, 4.0)], Cmp::Eq, 8.0); // x = 2
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(2.0));
        // Row 2 collapses to the bound y <= 8; y, zero-cost and now
        // unconstrained, is fixed at its finite lower bound 0.
        assert_eq!(p.reduced.num_constraints(), 0);
        assert_eq!(p.disposition[1], Disposition::Fixed(0.0));
    }

    #[test]
    fn detects_infeasible_singletons() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_empty_infeasible_row() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 1.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unconstrained_column_goes_to_favored_bound() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 7.0, 3.0);
        let _ = x;
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(7.0));
    }

    #[test]
    fn unconstrained_unbounded_column_detected() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_cost_free_column_fixed_at_zero() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(0.0));
    }

    #[test]
    fn chain_of_singletons_reaches_fixpoint() {
        // x = 3 (eq singleton), then y - x <= 0 becomes y <= 3 (singleton
        // after substitution), then z + y >= 1 survives.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 0.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let z = m.add_var("z", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 3.0);
        m.add_constraint([(y, 1.0), (x, -1.0)], Cmp::Le, 0.0);
        m.add_constraint([(z, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(3.0));
        assert_eq!(p.reduced.num_constraints(), 1);
        // y kept with ub 3.
        let yi = match p.disposition[1] {
            Disposition::Kept(i) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(p.reduced.var_bounds(crate::model::VarId(yi as u32)).1, 3.0);
        let _ = (y, z);
    }
}
