//! Light presolve: fixed-variable substitution, empty and singleton rows,
//! unconstrained columns.
//!
//! The reductions are primal-only (this solver does not report duals), so
//! postsolve merely re-inserts eliminated variables' values. Presolve can
//! already decide infeasibility/unboundedness; those escape early as
//! [`LpError`].

use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};

/// Tolerance for bound-crossing detection during presolve.
const TOL: f64 = 1e-9;

/// Outcome of presolving a [`Model`].
#[derive(Debug)]
pub struct Presolved {
    /// The reduced model handed to the simplex.
    pub reduced: Model,
    /// For each original variable: `Fixed(v)` or `Kept(index in reduced)`.
    pub disposition: Vec<Disposition>,
}

/// What happened to an original variable during presolve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Disposition {
    /// Variable was eliminated with this value.
    Fixed(f64),
    /// Variable survives at this index in the reduced model.
    Kept(usize),
}

/// Runs presolve on `model`.
///
/// # Errors
///
/// [`LpError::Infeasible`] or [`LpError::Unbounded`] when presolve can
/// already prove either.
pub fn presolve(model: &Model) -> Result<Presolved, LpError> {
    let n = model.num_vars();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let mut row_alive = vec![true; model.num_constraints()];

    // Pass 1: singleton rows become bound tightenings, iterated to a
    // fixpoint (each pass can fix variables that empty further rows).
    // The iteration count is bounded by the number of rows.
    let mut changed = true;
    let mut passes = 0;
    while changed && passes <= model.num_constraints() + 1 {
        changed = false;
        passes += 1;
        for (ri, c) in model.constraints.iter().enumerate() {
            if !row_alive[ri] {
                continue;
            }
            // Count live terms (terms on fixed variables contribute rhs).
            let live: Vec<(usize, f64)> = c
                .terms
                .iter()
                .map(|&(v, a)| (v as usize, a))
                .filter(|&(v, _)| ub[v] - lb[v] > TOL)
                .collect();
            let fixed_sum: f64 = c
                .terms
                .iter()
                .map(|&(v, a)| (v as usize, a))
                .filter(|&(v, _)| ub[v] - lb[v] <= TOL)
                .map(|(v, a)| a * 0.5 * (lb[v] + ub[v]))
                .sum();
            let rhs = c.rhs - fixed_sum;
            match live.len() {
                0 => {
                    let ok = match c.cmp {
                        Cmp::Le => rhs >= -TOL * (1.0 + c.rhs.abs()),
                        Cmp::Ge => rhs <= TOL * (1.0 + c.rhs.abs()),
                        Cmp::Eq => rhs.abs() <= TOL * (1.0 + c.rhs.abs()),
                    };
                    if !ok {
                        return Err(LpError::Infeasible);
                    }
                    row_alive[ri] = false;
                    changed = true;
                }
                1 => {
                    let (v, a) = live[0];
                    debug_assert!(a != 0.0);
                    let bound = rhs / a;
                    let tightens_ub = match c.cmp {
                        Cmp::Le => a > 0.0,
                        Cmp::Ge => a < 0.0,
                        Cmp::Eq => true,
                    };
                    let tightens_lb = match c.cmp {
                        Cmp::Le => a < 0.0,
                        Cmp::Ge => a > 0.0,
                        Cmp::Eq => true,
                    };
                    if tightens_ub && bound < ub[v] {
                        ub[v] = bound;
                        changed = true;
                    }
                    if tightens_lb && bound > lb[v] {
                        lb[v] = bound;
                        changed = true;
                    }
                    if lb[v] > ub[v] + TOL * (1.0 + lb[v].abs()) {
                        return Err(LpError::Infeasible);
                    }
                    // Snap crossing caused by roundoff.
                    if lb[v] > ub[v] {
                        let mid = 0.5 * (lb[v] + ub[v]);
                        lb[v] = mid;
                        ub[v] = mid;
                    }
                    row_alive[ri] = false;
                }
                _ => {}
            }
        }
    }

    // Pass 2: fix variables with equal bounds; detect unconstrained
    // columns and fix them at their objective-favored bound.
    let min_sense = model.sense == Sense::Minimize;
    let mut appears = vec![false; n];
    for (ri, c) in model.constraints.iter().enumerate() {
        if !row_alive[ri] {
            continue;
        }
        for &(v, _) in &c.terms {
            if ub[v as usize] - lb[v as usize] > TOL {
                appears[v as usize] = true;
            }
        }
    }

    let mut disposition = Vec::with_capacity(n);
    let mut kept = 0usize;
    for v in 0..n {
        if ub[v] - lb[v] <= TOL {
            disposition.push(Disposition::Fixed(0.5 * (lb[v] + ub[v])));
        } else if !appears[v] {
            // Unconstrained: push to the favored bound.
            let c = model.vars[v].obj * if min_sense { 1.0 } else { -1.0 };
            let val = if c > 0.0 {
                lb[v]
            } else if c < 0.0 {
                ub[v]
            } else if lb[v].is_finite() {
                lb[v]
            } else if ub[v].is_finite() {
                ub[v]
            } else {
                0.0
            };
            if !val.is_finite() {
                return Err(LpError::Unbounded);
            }
            disposition.push(Disposition::Fixed(val));
        } else {
            disposition.push(Disposition::Kept(kept));
            kept += 1;
        }
    }

    // Assemble the reduced model.
    let mut reduced = Model::new(model.sense);
    for v in 0..n {
        if let Disposition::Kept(_) = disposition[v] {
            reduced.add_var(model.vars[v].name.clone(), lb[v], ub[v], model.vars[v].obj);
        }
    }
    for (ri, c) in model.constraints.iter().enumerate() {
        if !row_alive[ri] {
            continue;
        }
        let mut rhs = c.rhs;
        let mut terms = Vec::with_capacity(c.terms.len());
        for &(v, a) in &c.terms {
            match disposition[v as usize] {
                Disposition::Fixed(val) => rhs -= a * val,
                Disposition::Kept(idx) => {
                    terms.push((crate::model::VarId(idx as u32), a));
                }
            }
        }
        if terms.is_empty() {
            let ok = match c.cmp {
                Cmp::Le => rhs >= -TOL * (1.0 + c.rhs.abs()),
                Cmp::Ge => rhs <= TOL * (1.0 + c.rhs.abs()),
                Cmp::Eq => rhs.abs() <= TOL * (1.0 + c.rhs.abs()),
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            continue;
        }
        reduced.add_constraint(terms, c.cmp, rhs);
    }

    Ok(Presolved {
        reduced,
        disposition,
    })
}

/// Per-slot capacity-block structure detected in a time-indexed model.
///
/// Time-indexed coflow LPs (`timeidx::build`) have one `≤` capacity row
/// per (slot, edge) whose variables — the per-slot flow allocations —
/// appear in no other slot's capacity rows. The `≤` rows therefore split
/// into connected components, one per slot, and a block-diagonal crash
/// basis can be built slot by slot.
#[derive(Clone, Debug)]
pub struct SlotBlocks {
    /// For each block: the constraint indices of its capacity rows.
    pub rows: Vec<Vec<usize>>,
    /// For each block: the variables its rows touch (sorted, deduped).
    pub vars: Vec<Vec<usize>>,
}

/// Detects the per-slot capacity-block signature of time-indexed models:
/// every `≤` row has strictly positive coefficients and rhs, every
/// variable those rows touch has lower bound exactly `0`, and the `≤`
/// rows split into at least two connected components under the
/// shares-a-variable relation. Returns `None` when any part of the
/// signature fails — in particular on general LPs with signed
/// coefficients or shifted bounds, so the pass never fires outside the
/// structure it was built for.
pub fn detect_slot_blocks(model: &Model) -> Option<SlotBlocks> {
    let n = model.num_vars();
    let cap_rows: Vec<usize> = (0..model.num_constraints())
        .filter(|&ri| model.constraints[ri].cmp == Cmp::Le)
        .collect();
    if cap_rows.len() < 2 {
        return None;
    }
    for &ri in &cap_rows {
        let c = &model.constraints[ri];
        if c.terms.is_empty() || c.rhs <= 0.0 {
            return None;
        }
        for &(v, a) in &c.terms {
            if a <= 0.0 || model.vars[v as usize].lb != 0.0 {
                return None;
            }
        }
    }

    // Union-find over variables; each capacity row merges its support.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn root(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for &ri in &cap_rows {
        let terms = &model.constraints[ri].terms;
        let r0 = root(&mut parent, terms[0].0);
        for &(v, _) in &terms[1..] {
            let rv = root(&mut parent, v);
            parent[rv as usize] = r0;
        }
    }

    // Group rows by their support's component.
    let mut comp_of_root: Vec<i32> = vec![-1; n];
    let mut rows: Vec<Vec<usize>> = Vec::new();
    let mut vars: Vec<Vec<usize>> = Vec::new();
    for &ri in &cap_rows {
        let r = root(&mut parent, model.constraints[ri].terms[0].0) as usize;
        let b = if comp_of_root[r] >= 0 {
            comp_of_root[r] as usize
        } else {
            comp_of_root[r] = rows.len() as i32;
            rows.push(Vec::new());
            vars.push(Vec::new());
            rows.len() - 1
        };
        rows[b].push(ri);
        for &(v, _) in &model.constraints[ri].terms {
            vars[b].push(v as usize);
        }
    }
    if rows.len() < 2 {
        return None;
    }
    for vs in &mut vars {
        vs.sort_unstable();
        vs.dedup();
    }
    Some(SlotBlocks { rows, vars })
}

/// Builds a block-diagonal crash point for a slot-decomposable model:
/// within each capacity block, objective-favored variables are raised
/// greedily (most favorable first) to the residual block capacity, the
/// rest stay at their zero lower bound. The point satisfies every
/// capacity row by construction and is dual-feasible in the crash sense
/// — unfavored variables sit at the bound their reduced-cost sign wants
/// — so feeding it through [`crate::Basis::from_point`] gives a warm
/// start whose dual simplex only has to repair the coupling (demand)
/// rows. Returns `None` when [`detect_slot_blocks`] finds no block
/// structure.
pub fn slot_block_crash(model: &Model) -> Option<Vec<f64>> {
    let blocks = detect_slot_blocks(model)?;
    let n = model.num_vars();
    let mut x: Vec<f64> = (0..n)
        .map(|v| {
            let lb = model.vars[v].lb;
            if lb.is_finite() {
                lb
            } else {
                0.0
            }
        })
        .collect();
    let min_sense = model.sense == Sense::Minimize;
    let mut residual: Vec<f64> = model.constraints.iter().map(|c| c.rhs).collect();
    for (rows, vars) in blocks.rows.iter().zip(&blocks.vars) {
        // Column adjacency restricted to this block's rows.
        let mut col_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); vars.len()];
        let slot_of = |v: usize| vars.binary_search(&v).ok();
        for &ri in rows {
            for &(v, a) in &model.constraints[ri].terms {
                if let Some(s) = slot_of(v as usize) {
                    col_rows[s].push((ri, a));
                }
            }
        }
        // Most objective-favorable first.
        let mut order: Vec<usize> = (0..vars.len()).collect();
        order.sort_by(|&a, &b| {
            let ca = model.vars[vars[a]].obj * if min_sense { 1.0 } else { -1.0 };
            let cb = model.vars[vars[b]].obj * if min_sense { 1.0 } else { -1.0 };
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        });
        for s in order {
            let v = vars[s];
            let cost = model.vars[v].obj * if min_sense { 1.0 } else { -1.0 };
            if cost >= 0.0 {
                continue; // at lb=0 the reduced-cost sign is already right
            }
            let mut cap = model.vars[v].ub;
            for &(ri, a) in &col_rows[s] {
                cap = cap.min(residual[ri] / a);
            }
            if !cap.is_finite() || cap <= 0.0 {
                continue;
            }
            x[v] = cap;
            for &(ri, a) in &col_rows[s] {
                residual[ri] -= a * cap;
            }
        }
    }
    Some(x)
}

/// Maps a reduced-model solution vector back to the original variables.
pub fn postsolve(pre: &Presolved, x_reduced: &[f64]) -> Vec<f64> {
    pre.disposition
        .iter()
        .map(|d| match *d {
            Disposition::Fixed(v) => v,
            Disposition::Kept(i) => x_reduced[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    #[test]
    fn fixed_vars_are_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 2.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let p = presolve(&m).unwrap();
        // After substituting x=2 the row is a singleton, becomes the bound
        // y >= 3, and y (now appearing in no row, cost +1) is fixed at its
        // tightened lower bound. Presolve solves this LP outright.
        assert_eq!(p.reduced.num_vars(), 0);
        assert_eq!(p.reduced.num_constraints(), 0);
        assert_eq!(p.disposition[0], Disposition::Fixed(2.0));
        assert_eq!(p.disposition[1], Disposition::Fixed(3.0));
        let x_full = postsolve(&p, &[]);
        assert_eq!(x_full, vec![2.0, 3.0]);
    }

    #[test]
    fn singleton_row_tightens_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        let y = m.add_var("y", 0.0, 100.0, 1.0);
        m.add_constraint([(x, 2.0)], Cmp::Le, 10.0); // x <= 5
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let p = presolve(&m).unwrap();
        // Singleton row removed; x's upper bound is now 5.
        assert_eq!(p.reduced.num_constraints(), 1);
        let xi = match p.disposition[0] {
            Disposition::Kept(i) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            p.reduced.var_bounds(crate::model::VarId(xi as u32)),
            (0.0, 5.0)
        );
    }

    #[test]
    fn singleton_eq_fixes_variable() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        let y = m.add_var("y", 0.0, 100.0, 0.0);
        m.add_constraint([(x, 4.0)], Cmp::Eq, 8.0); // x = 2
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(2.0));
        // Row 2 collapses to the bound y <= 8; y, zero-cost and now
        // unconstrained, is fixed at its finite lower bound 0.
        assert_eq!(p.reduced.num_constraints(), 0);
        assert_eq!(p.disposition[1], Disposition::Fixed(0.0));
    }

    #[test]
    fn detects_infeasible_singletons() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_empty_infeasible_row() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 1.0, 1.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unconstrained_column_goes_to_favored_bound() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 7.0, 3.0);
        let _ = x;
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(7.0));
    }

    #[test]
    fn unconstrained_unbounded_column_detected() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_cost_free_column_fixed_at_zero() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(0.0));
    }

    /// Two-slot, two-edges-per-slot capacity model with a coupling
    /// demand row, shaped like a tiny `timeidx::build` output.
    fn two_slot_model() -> Model {
        let mut m = Model::new(Sense::Minimize);
        // Slot 0 flows.
        let a0 = m.add_var("a0", 0.0, 10.0, -3.0);
        let b0 = m.add_var("b0", 0.0, 10.0, -1.0);
        // Slot 1 flows.
        let a1 = m.add_var("a1", 0.0, 10.0, -2.0);
        let b1 = m.add_var("b1", 0.0, 10.0, 1.0);
        // Slot 0 capacity rows (shared edge couples a0/b0 into one block).
        m.add_constraint([(a0, 1.0), (b0, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(b0, 2.0)], Cmp::Le, 6.0);
        // Slot 1 capacity rows.
        m.add_constraint([(a1, 1.0), (b1, 1.0)], Cmp::Le, 5.0);
        m.add_constraint([(a1, 1.0)], Cmp::Le, 3.0);
        // Cross-slot demand row (Ge: not part of any block).
        m.add_constraint([(a0, 1.0), (a1, 1.0)], Cmp::Ge, 1.0);
        m
    }

    #[test]
    fn slot_blocks_detected_on_block_model() {
        let m = two_slot_model();
        let blocks = detect_slot_blocks(&m).expect("block structure");
        assert_eq!(blocks.rows.len(), 2);
        assert_eq!(blocks.vars.len(), 2);
        let mut sizes: Vec<usize> = blocks.vars.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
        // Each block's rows only touch that block's variables.
        for (rows, vars) in blocks.rows.iter().zip(&blocks.vars) {
            for &ri in rows {
                for &(v, _) in &m.constraints[ri].terms {
                    assert!(vars.contains(&(v as usize)));
                }
            }
        }
    }

    #[test]
    fn slot_block_detection_rejects_non_block_shapes() {
        // Signed coefficient breaks the capacity signature.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        m.add_constraint([(y, 1.0)], Cmp::Le, 1.0);
        assert!(detect_slot_blocks(&m).is_none());
        // Single connected component: every Le row shares a variable.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 1.0);
        assert!(detect_slot_blocks(&m).is_none());
        // Nonzero lower bound on a touched variable.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.5, 2.0, 1.0);
        let y = m.add_var("y", 0.0, 2.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 2.0);
        m.add_constraint([(y, 1.0)], Cmp::Le, 2.0);
        assert!(detect_slot_blocks(&m).is_none());
    }

    #[test]
    fn slot_block_crash_point_respects_capacities() {
        let m = two_slot_model();
        let x = slot_block_crash(&m).expect("crash point");
        // Every capacity row satisfied, favored variables raised.
        for c in &m.constraints {
            if c.cmp == Cmp::Le {
                let act: f64 = c.terms.iter().map(|&(v, a)| a * x[v as usize]).sum();
                assert!(act <= c.rhs + 1e-9, "activity {act} > rhs {}", c.rhs);
            }
        }
        // a0 (cost -3, most favorable in slot 0) takes the full edge.
        assert!((x[0] - 4.0).abs() < 1e-12);
        // b1 has positive cost and stays at its lower bound.
        assert_eq!(x[3], 0.0);
        // The crash point warm-starts the solver to the same optimum.
        let basis = crate::Basis::from_point(&m, &x);
        let opts = crate::SolverOptions::default();
        let (warm, _) = m.solve_warm(Some(&basis), &opts).unwrap();
        let cold = m.solve_with(&opts).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn chain_of_singletons_reaches_fixpoint() {
        // x = 3 (eq singleton), then y - x <= 0 becomes y <= 3 (singleton
        // after substitution), then z + y >= 1 survives.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 10.0, 0.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let z = m.add_var("z", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 3.0);
        m.add_constraint([(y, 1.0), (x, -1.0)], Cmp::Le, 0.0);
        m.add_constraint([(z, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.disposition[0], Disposition::Fixed(3.0));
        assert_eq!(p.reduced.num_constraints(), 1);
        // y kept with ub 3.
        let yi = match p.disposition[1] {
            Disposition::Kept(i) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(p.reduced.var_bounds(crate::model::VarId(yi as u32)).1, 3.0);
        let _ = (y, z);
    }
}
