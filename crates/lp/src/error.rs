//! Solver error taxonomy.

use std::fmt;

/// Errors returned by [`Model::solve`](crate::Model::solve).
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Iteration limit reached before optimality was proven.
    IterationLimit {
        /// Iterations performed across both phases.
        iterations: usize,
    },
    /// The basis factorization became numerically singular and recovery
    /// (refactorization with a fresh crash basis) also failed.
    NumericalFailure(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "iteration limit reached after {iterations} iterations")
            }
            LpError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}
