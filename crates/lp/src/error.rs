//! Solver error taxonomy.

use std::fmt;

/// What kind of numerical distress a solve ran into. Distress is
/// distinct from [`LpError::NumericalFailure`]: it classifies the
/// *symptom* that tripped the guard, and is only surfaced once the
/// rescue ladder (conservative retry, then dense-oracle fallback) has
/// also been exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistressKind {
    /// The reported objective came back NaN or ±∞.
    NonFiniteObjective,
    /// A primal value in the solution vector came back NaN or ±∞.
    NonFinitePrimal,
    /// The basis factorization was singular and basis repair could not
    /// produce a usable replacement.
    SingularBasis,
    /// A basis update (eta / Forrest–Tomlin) was rejected as unstable
    /// and the forced refactorization did not restore stability.
    UnstableUpdate,
}

impl DistressKind {
    /// Short lowercase label used in error messages and stats lines.
    pub fn label(self) -> &'static str {
        match self {
            DistressKind::NonFiniteObjective => "non-finite-objective",
            DistressKind::NonFinitePrimal => "non-finite-primal",
            DistressKind::SingularBasis => "singular-basis",
            DistressKind::UnstableUpdate => "unstable-update",
        }
    }
}

/// Errors returned by [`Model::solve`](crate::Model::solve).
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Iteration limit reached before optimality was proven.
    IterationLimit {
        /// Iterations performed across both phases.
        iterations: usize,
    },
    /// The basis factorization became numerically singular and recovery
    /// (refactorization with a fresh crash basis) also failed.
    NumericalFailure(String),
    /// Numerical distress (non-finite solution values, singular or
    /// unstable factorizations) survived the full rescue ladder:
    /// conservative-option retry *and* the dense-oracle fallback both
    /// failed to produce a finite optimal point. This is a typed,
    /// non-panicking terminal outcome — service layers treat it like
    /// any other engine error and degrade.
    NumericalDistress {
        /// The symptom that tripped the guard.
        kind: DistressKind,
        /// Human-readable context (which stage detected it).
        detail: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(f, "iteration limit reached after {iterations} iterations")
            }
            LpError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
            LpError::NumericalDistress { kind, detail } => {
                write!(f, "numerical distress ({}): {detail}", kind.label())
            }
        }
    }
}

impl std::error::Error for LpError {}
