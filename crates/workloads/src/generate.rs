//! Job generation and instance assembly.

use crate::dists::{bounded_pareto, exponential, log_normal};
use crate::spec::{WorkloadConfig, WorkloadKind};
use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::CoflowError;
use coflow_netgraph::topology::Topology;
use coflow_netgraph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated job before placement: sizes in Gb, release in slots.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Coflow weight (`[1, 100]` uniform or 1.0).
    pub weight: f64,
    /// Release slot.
    pub release: u32,
    /// Flow demands in Gb.
    pub flow_sizes: Vec<f64>,
}

/// Generates `cfg.num_jobs` jobs with the workload's width/size/arrival
/// distributions (placement-independent).
pub fn generate_jobs(cfg: &WorkloadConfig) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(splitmix(cfg.seed, cfg.kind));
    let p = cfg.kind.params();
    let mut jobs = Vec::with_capacity(cfg.num_jobs);
    let mut arrival = 0.0f64;
    for _ in 0..cfg.num_jobs {
        if cfg.mean_interarrival_slots > 0.0 {
            arrival += exponential(&mut rng, 1.0 / cfg.mean_interarrival_slots);
        }
        let width = (bounded_pareto(&mut rng, p.width_alpha, 1.0, p.width_max as f64 + 0.999)
            .floor() as usize)
            .clamp(1, p.width_max);
        let flow_sizes = (0..width)
            .map(|_| {
                let gb = if rng.gen_bool(p.size_tail_prob) {
                    bounded_pareto(
                        &mut rng,
                        p.size_tail_alpha,
                        p.size_mu.exp(),
                        p.size_tail_max,
                    )
                } else {
                    log_normal(&mut rng, p.size_mu, p.size_sigma)
                };
                (gb * cfg.demand_scale).max(1e-3)
            })
            .collect();
        let weight = if cfg.weighted {
            rng.gen_range(1.0..=100.0)
        } else {
            1.0
        };
        jobs.push(JobSpec {
            weight,
            release: arrival.floor() as u32,
            flow_sizes,
        });
    }
    jobs
}

/// Places jobs onto a topology and assembles a validated instance.
///
/// Each flow's endpoints are drawn uniformly from the topology's source
/// and sink node sets with `src ≠ dst` (the paper: "we randomly assign
/// these jobs to nodes in the datacenter"). Edge capacities are scaled
/// from Gbps to Gb-per-slot using `cfg.slot_seconds`.
///
/// # Errors
///
/// Propagates [`CoflowError::BadInstance`] from instance validation
/// (cannot occur for strongly-connected WAN topologies).
pub fn build_instance(
    topo: &Topology,
    cfg: &WorkloadConfig,
) -> Result<CoflowInstance, CoflowError> {
    let jobs = generate_jobs(cfg);
    let mut rng = StdRng::seed_from_u64(splitmix(cfg.seed ^ 0x9e37_79b9, cfg.kind));
    let scaled = topo.scale_capacity(cfg.slot_seconds);
    let coflows = place_jobs(&jobs, &scaled.sources, &scaled.sinks, &mut rng);
    CoflowInstance::new(scaled.graph, coflows)
}

/// Maps job specs to coflows with random distinct endpoints.
pub fn place_jobs<R: Rng + ?Sized>(
    jobs: &[JobSpec],
    sources: &[NodeId],
    sinks: &[NodeId],
    rng: &mut R,
) -> Vec<Coflow> {
    assert!(!sources.is_empty() && !sinks.is_empty());
    jobs.iter()
        .map(|job| {
            let flows = job
                .flow_sizes
                .iter()
                .map(|&size| {
                    let src = sources[rng.gen_range(0..sources.len())];
                    let mut dst = sinks[rng.gen_range(0..sinks.len())];
                    // WAN topologies share the node set between sources
                    // and sinks; resample until distinct.
                    while dst == src {
                        dst = sinks[rng.gen_range(0..sinks.len())];
                    }
                    Flow::released(src, dst, size, job.release)
                })
                .collect();
            Coflow::weighted(job.weight, flows)
        })
        .collect()
}

/// Mixes the seed with the workload kind so different benchmarks of the
/// same seed do not correlate.
fn splitmix(seed: u64, kind: WorkloadKind) -> u64 {
    let k = match kind {
        WorkloadKind::BigBench => 1,
        WorkloadKind::TpcDs => 2,
        WorkloadKind::TpcH => 3,
        WorkloadKind::Facebook => 4,
    };
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(k);
    z ^= z >> 31;
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;
    use coflow_netgraph::topology;

    fn cfg(kind: WorkloadKind, n: usize) -> WorkloadConfig {
        WorkloadConfig {
            kind,
            num_jobs: n,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_jobs(&cfg(WorkloadKind::TpcH, 50));
        let b = generate_jobs(&cfg(WorkloadKind::TpcH, 50));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.weight, y.weight);
            assert_eq!(x.release, y.release);
            assert_eq!(x.flow_sizes, y.flow_sizes);
        }
    }

    #[test]
    fn different_kinds_differ() {
        let a = generate_jobs(&cfg(WorkloadKind::TpcH, 20));
        let b = generate_jobs(&cfg(WorkloadKind::TpcDs, 20));
        assert!(a.iter().zip(&b).any(|(x, y)| x.flow_sizes != y.flow_sizes));
    }

    #[test]
    fn facebook_is_mostly_narrow() {
        let jobs = generate_jobs(&cfg(WorkloadKind::Facebook, 2000));
        let narrow = jobs.iter().filter(|j| j.flow_sizes.len() == 1).count();
        // The FB trace characterization: a majority of coflows have a
        // single flow.
        assert!(
            narrow as f64 / jobs.len() as f64 > 0.5,
            "narrow fraction {}",
            narrow as f64 / jobs.len() as f64
        );
        // But the tail must exist.
        assert!(jobs.iter().any(|j| j.flow_sizes.len() >= 10));
    }

    #[test]
    fn tpch_is_heavier_than_tpcds() {
        let h = generate_jobs(&cfg(WorkloadKind::TpcH, 3000));
        let ds = generate_jobs(&cfg(WorkloadKind::TpcDs, 3000));
        let total = |jobs: &[JobSpec]| -> f64 {
            jobs.iter().flat_map(|j| j.flow_sizes.iter()).sum::<f64>()
                / jobs.iter().map(|j| j.flow_sizes.len()).sum::<usize>() as f64
        };
        assert!(
            total(&h) > total(&ds),
            "TPC-H mean {} <= TPC-DS mean {}",
            total(&h),
            total(&ds)
        );
    }

    #[test]
    fn releases_increase_and_follow_mean() {
        let mut c = cfg(WorkloadKind::BigBench, 4000);
        c.mean_interarrival_slots = 2.0;
        let jobs = generate_jobs(&c);
        let mut last = 0;
        for j in &jobs {
            assert!(j.release >= last);
            last = j.release;
        }
        let span = jobs.last().unwrap().release as f64;
        let expected = 2.0 * jobs.len() as f64;
        assert!(
            (span - expected).abs() / expected < 0.1,
            "span {span} vs expected {expected}"
        );
    }

    #[test]
    fn weights_span_the_paper_range() {
        let jobs = generate_jobs(&cfg(WorkloadKind::TpcDs, 3000));
        let min = jobs.iter().map(|j| j.weight).fold(f64::INFINITY, f64::min);
        let max = jobs.iter().map(|j| j.weight).fold(0.0, f64::max);
        assert!(min >= 1.0 && max <= 100.0);
        assert!(min < 5.0 && max > 95.0, "weights should fill [1,100]");
        let mut c = cfg(WorkloadKind::TpcDs, 10);
        c.weighted = false;
        assert!(generate_jobs(&c).iter().all(|j| j.weight == 1.0));
    }

    #[test]
    fn build_instance_places_and_scales() {
        let topo = topology::swan();
        let mut c = cfg(WorkloadKind::Facebook, 15);
        c.slot_seconds = 50.0;
        let inst = build_instance(&topo, &c).unwrap();
        assert_eq!(inst.num_coflows(), 15);
        // Capacities scaled: SWAN links are 10/40 Gbps -> 500/2000 per slot.
        let caps: Vec<f64> = inst.graph.edges().map(|e| e.capacity).collect();
        assert!(caps
            .iter()
            .all(|&c| (c - 500.0).abs() < 1e-9 || (c - 2000.0).abs() < 1e-9));
        // All endpoints distinct.
        for (_, f) in inst.flows() {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn demand_scale_shrinks_sizes() {
        let base = generate_jobs(&cfg(WorkloadKind::TpcH, 30));
        let mut c = cfg(WorkloadKind::TpcH, 30);
        c.demand_scale = 0.1;
        let scaled = generate_jobs(&c);
        for (a, b) in base.iter().zip(&scaled) {
            for (x, y) in a.flow_sizes.iter().zip(&b.flow_sizes) {
                assert!((y - 0.1 * x).abs() < 1e-9);
            }
        }
    }
}
