//! Coflow workloads: synthetic benchmark shapes, replayed traces, and
//! structured scenarios.
//!
//! Three ways to obtain instances, all pure functions of their
//! configuration:
//!
//! * **Benchmark generators** ([`generate_jobs`] / [`build_instance`])
//!   — the paper (§6) evaluates on "jobs from public benchmarks —
//!   TPC-DS, TPC-H, and BigBench — and from Facebook (FB) production
//!   traces", placed randomly onto WAN nodes, with Poisson-like release
//!   times and weights drawn uniformly from `[1, 100]`. The original
//!   shuffle traces are not redistributable, so these are *parametric
//!   generators* reproducing the published coarse statistics of each
//!   workload (coflow width mix, heavy-tailed transfer sizes, arrival
//!   process); see `DESIGN.md` §4 for the substitution rationale.
//! * **Trace replay** ([`trace`]) — parse the FB2010/coflow-benchmark
//!   text format (streaming or eager) and replay it on the classic big
//!   switch or any topology, with normalization and scaling knobs. A
//!   sample trace ships as [`trace::FB2010_SAMPLE`].
//! * **Structured scenarios** ([`scenarios`]) — incast, broadcast,
//!   multi-stage shuffle DAGs, ring all-reduce, and skewed hot-port
//!   mixes, placeable on both the switch model and WAN topologies.
//!
//! Units follow `coflow-core`: demands in gigabits (Gb), capacities in
//! Gb per slot (topology capacities in Gbps × slot seconds — use
//! [`WorkloadConfig::slot_seconds`], the paper uses 50 s slots).
//!
//! # Example
//!
//! ```
//! use coflow_workloads::{WorkloadConfig, WorkloadKind, build_instance};
//! use coflow_netgraph::topology;
//!
//! let topo = topology::swan();
//! let cfg = WorkloadConfig {
//!     kind: WorkloadKind::Facebook,
//!     num_jobs: 10,
//!     seed: 1,
//!     ..Default::default()
//! };
//! let inst = build_instance(&topo, &cfg).unwrap();
//! assert_eq!(inst.num_coflows(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dists;
mod generate;
pub mod scenarios;
mod spec;
pub mod trace;

pub use generate::{build_instance, generate_jobs, JobSpec};
pub use spec::{WorkloadConfig, WorkloadKind, WorkloadParams};
