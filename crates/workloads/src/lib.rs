//! Synthetic coflow workloads shaped after the paper's four benchmarks.
//!
//! The paper (§6) evaluates on "jobs from public benchmarks — TPC-DS,
//! TPC-H, and BigBench — and from Facebook (FB) production traces",
//! placed randomly onto WAN nodes, with Poisson-like release times and
//! weights drawn uniformly from `[1, 100]`. The original shuffle traces
//! are not redistributable, so this crate provides *parametric
//! generators* that reproduce the published coarse statistics of each
//! workload (coflow width mix, heavy-tailed transfer sizes, arrival
//! process); see `DESIGN.md` §4 for the substitution rationale.
//!
//! Units follow `coflow-core`: demands in gigabits (Gb), capacities in
//! Gb per slot (topology capacities in Gbps × slot seconds — use
//! [`WorkloadConfig::slot_seconds`], the paper uses 50 s slots).
//!
//! # Example
//!
//! ```
//! use coflow_workloads::{WorkloadConfig, WorkloadKind, build_instance};
//! use coflow_netgraph::topology;
//!
//! let topo = topology::swan();
//! let cfg = WorkloadConfig {
//!     kind: WorkloadKind::Facebook,
//!     num_jobs: 10,
//!     seed: 1,
//!     ..Default::default()
//! };
//! let inst = build_instance(&topo, &cfg).unwrap();
//! assert_eq!(inst.num_coflows(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dists;
mod generate;
mod spec;

pub use generate::{build_instance, generate_jobs, JobSpec};
pub use spec::{WorkloadConfig, WorkloadKind, WorkloadParams};
