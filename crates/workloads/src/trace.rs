//! Replaying production coflow traces — the FB2010 benchmark format.
//!
//! The coflow literature evaluates on a replayed Facebook MapReduce
//! trace distributed as the *coflow-benchmark* format (Chowdhury et
//! al.'s Varys artifacts, reused by Sincronia and most follow-ups). It
//! is line-oriented:
//!
//! ```text
//! <num_ports> <num_coflows>
//! <id> <arrival_ms> <m> <mapper_1> … <mapper_m> <r> <reducer_1:mb_1> … <reducer_r:mb_r>
//! ```
//!
//! One line per coflow: arrival time in milliseconds, the `m` ports
//! hosting map tasks, and `r` reducer entries `port:MB` giving the
//! shuffle volume received by each reducer. As in Varys, a reducer's
//! volume is divided evenly across the mappers, so a trace coflow with
//! `m` mappers and `r` reducers expands to `m·r` flows.
//!
//! Two entry points:
//!
//! * [`Trace::parse`] — eager, whole-file, strict (declared coflow
//!   count must match);
//! * [`TraceStream`] — streaming iteration over any [`std::io::BufRead`],
//!   one [`TraceCoflow`] at a time, for traces too large to buffer.
//!
//! Both report [`TraceError`]s with the offending line number. Port ids
//! may be 0- or 1-based (real traces differ); [`Trace`] detects and
//! rebases 1-based ids when a port equals `num_ports`.
//!
//! Replay is controlled by [`ReplayOptions`] — milliseconds per slot,
//! port bandwidth (MB per slot), a demand multiplier, a coflow-count
//! limit, and a weight rule — and lands either on the classic big
//! switch ([`Trace::switch_instance`], which applies the paper's
//! footnote-1 I/O gadget so per-port ingress/egress limits bind) or on
//! any [`Topology`] ([`Trace::place`], ports mapped round-robin onto
//! the topology's endpoint sets).
//!
//! ```
//! use coflow_workloads::trace::{ReplayOptions, Trace, FB2010_SAMPLE};
//!
//! let trace = Trace::parse(FB2010_SAMPLE).unwrap();
//! assert_eq!(trace.num_ports, 16);
//! assert_eq!(trace.coflows.len(), 20);
//! let inst = trace.switch_instance(&ReplayOptions::default()).unwrap();
//! assert_eq!(inst.num_coflows(), 20);
//! ```

use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::CoflowError;
use coflow_netgraph::gadget::{with_io_gadget, IoLimit};
use coflow_netgraph::topology::{self, Topology};
use coflow_netgraph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bundled 16-port, 20-coflow sample in the FB2010 format: the same
/// width mix as the published trace statistics (majority single-flow,
/// a few wide shuffles), sized so every registered algorithm replays it
/// in well under a second. Used by the golden regression test, the
/// `scen_trace` figure, and the documentation examples; also on disk at
/// `crates/workloads/fixtures/fb2010_sample.txt` for CLI runs.
pub const FB2010_SAMPLE: &str = include_str!("../fixtures/fb2010_sample.txt");

/// A parse failure, pointing at the offending trace line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number (0 when the input ended prematurely).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, msg: impl Into<String>) -> TraceError {
    TraceError {
        line,
        msg: msg.into(),
    }
}

/// One trace coflow, as written: arrival time plus mapper and reducer
/// port lists. Ports are kept exactly as parsed (0- or 1-based);
/// rebasing happens when an instance is built.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceCoflow {
    /// The coflow id token (kept verbatim; real traces use integers).
    pub id: String,
    /// Arrival time in milliseconds.
    pub arrival_ms: u64,
    /// Ports hosting map tasks.
    pub mappers: Vec<usize>,
    /// `(port, shuffle MB)` per reducer; the MB is split evenly across
    /// the mappers.
    pub reducers: Vec<(usize, f64)>,
}

impl TraceCoflow {
    /// Number of flows this coflow expands to (`mappers × reducers`).
    pub fn width(&self) -> usize {
        self.mappers.len() * self.reducers.len()
    }

    /// Total shuffle volume in MB.
    pub fn total_mb(&self) -> f64 {
        self.reducers.iter().map(|&(_, mb)| mb).sum()
    }

    /// The release slot this coflow replays at under `opts`
    /// (`⌊arrival_ms / ms_per_slot⌋`).
    pub fn release_slot(&self, opts: &ReplayOptions) -> u32 {
        (self.arrival_ms as f64 / opts.ms_per_slot).floor() as u32
    }

    /// Expands this coflow to `(mapper_port, reducer_port, demand)`
    /// triples in canonical reducer-major order (the same flow order
    /// [`Trace::switch_instance`] produces), with ports rebased by
    /// `base` and demands normalized per `opts`: each reducer's MB is
    /// split evenly across the mappers, divided by `mb_per_slot`,
    /// scaled by `demand_scale`, and floored at `1e-3` to keep the LP
    /// well-conditioned.
    pub fn port_flows(&self, base: usize, opts: &ReplayOptions) -> Vec<(usize, usize, f64)> {
        let mut flows = Vec::with_capacity(self.width());
        for &(r_port, mb) in &self.reducers {
            let per_mapper = mb / self.mappers.len() as f64;
            let demand = (per_mapper / opts.mb_per_slot * opts.demand_scale).max(1e-3);
            for &m_port in &self.mappers {
                flows.push((m_port - base, r_port - base, demand));
            }
        }
        flows
    }
}

/// A fully-parsed trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Number of ports (racks) declared in the header.
    pub num_ports: usize,
    /// The coflows, in file order (the format sorts by arrival).
    pub coflows: Vec<TraceCoflow>,
}

/// Aggregate statistics of a trace (`coflow trace summarize`).
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// Ports declared in the header.
    pub num_ports: usize,
    /// Number of coflows.
    pub coflows: usize,
    /// Total flows after mapper×reducer expansion.
    pub flows: usize,
    /// Coflows expanding to a single flow.
    pub single_flow: usize,
    /// Widest coflow (flows).
    pub max_width: usize,
    /// Total shuffle volume in MB.
    pub total_mb: f64,
    /// Largest arrival time in milliseconds.
    pub span_ms: u64,
}

/// How replay assigns coflow weights (`w_j`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightRule {
    /// All weights 1 (traces carry no priorities; this is the
    /// total-CCT objective every trace-driven paper reports).
    Unit,
    /// Weights drawn uniformly from `[1, 100]` per coflow, in file
    /// order, from the given seed — the paper's §6 weighting.
    Uniform {
        /// RNG seed; replay is a pure function of `(trace, options)`.
        seed: u64,
    },
}

/// Normalization and scaling knobs for turning a trace into a
/// [`CoflowInstance`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayOptions {
    /// Slot length in milliseconds (release slot = `arrival_ms / ms_per_slot`).
    pub ms_per_slot: f64,
    /// Port (or reference link) bandwidth in MB per slot; demands are
    /// `MB / mb_per_slot`, so `1.0` is one slot of one saturated port.
    /// The default `125.0` models 1 Gbps ports with 1 s slots.
    pub mb_per_slot: f64,
    /// Extra multiplier on every demand (LP-tractability scaling).
    pub demand_scale: f64,
    /// Replay only the first `limit` coflows; `0` replays everything.
    pub limit: usize,
    /// Weight assignment.
    pub weights: WeightRule,
    /// Deadline synthesis: when set, every replayed coflow gets
    /// `deadline = release + max(1, ⌈slack · Γ⌉)` with `Γ` its
    /// bottleneck port-load bound (see
    /// [`coflow_core::loads::apply_deadline_slack`]). Deterministic —
    /// a pure function of the trace and the options.
    pub deadline_slack: Option<f64>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            ms_per_slot: 1000.0,
            mb_per_slot: 125.0,
            demand_scale: 1.0,
            limit: 0,
            weights: WeightRule::Unit,
            deadline_slack: None,
        }
    }
}

impl ReplayOptions {
    /// Checks the scaling knobs are finite and positive.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] naming the offending option.
    pub fn validate(&self) -> Result<(), CoflowError> {
        if !(self.ms_per_slot.is_finite() && self.ms_per_slot > 0.0) {
            return Err(CoflowError::BadInstance(format!(
                "ms_per_slot must be positive, got {}",
                self.ms_per_slot
            )));
        }
        if !(self.mb_per_slot.is_finite() && self.mb_per_slot > 0.0) {
            return Err(CoflowError::BadInstance(format!(
                "mb_per_slot must be positive, got {}",
                self.mb_per_slot
            )));
        }
        if !(self.demand_scale.is_finite() && self.demand_scale > 0.0) {
            return Err(CoflowError::BadInstance(format!(
                "demand_scale must be positive, got {}",
                self.demand_scale
            )));
        }
        if let Some(slack) = self.deadline_slack {
            if !(slack.is_finite() && slack > 0.0) {
                return Err(CoflowError::BadInstance(format!(
                    "deadline_slack must be positive, got {slack}"
                )));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses one header line `<num_ports> <num_coflows>`.
fn parse_header(line: &str, lineno: usize) -> Result<(usize, usize), TraceError> {
    let mut it = line.split_whitespace();
    let ports: usize = parse_tok(it.next(), lineno, "port count")?;
    let coflows: usize = parse_tok(it.next(), lineno, "coflow count")?;
    if it.next().is_some() {
        return Err(err(lineno, "trailing tokens after header"));
    }
    if ports == 0 {
        return Err(err(lineno, "port count must be positive"));
    }
    Ok((ports, coflows))
}

/// Parses one coflow line of the FB2010 format (everything after the
/// header): `<id> <arrival_ms> <m> <mappers…> <r> <port:MB…>`.
///
/// Trailing `#` comments are stripped first. This is the line-at-a-time
/// entry point behind [`TraceStream`], exported so the scheduler
/// service's wire protocol can reuse the exact trace grammar for
/// streamed arrivals. `lineno` only labels errors.
///
/// # Errors
///
/// [`TraceError`] describing the malformed token.
pub fn parse_coflow_line(
    line: &str,
    lineno: usize,
    num_ports: usize,
) -> Result<TraceCoflow, TraceError> {
    parse_coflow(strip(line), lineno, num_ports)
}

/// Parses one coflow line (everything after the header).
fn parse_coflow(line: &str, lineno: usize, num_ports: usize) -> Result<TraceCoflow, TraceError> {
    let mut it = line.split_whitespace();
    let id = it
        .next()
        .ok_or_else(|| err(lineno, "missing coflow id"))?
        .to_string();
    let arrival_ms: u64 = parse_tok(it.next(), lineno, "arrival time")?;
    let m: usize = parse_tok(it.next(), lineno, "mapper count")?;
    if m == 0 {
        return Err(err(lineno, "coflow has no mappers"));
    }
    let mut mappers = Vec::with_capacity(m);
    for _ in 0..m {
        let port: usize = parse_tok(it.next(), lineno, "mapper port")?;
        check_port(port, num_ports, lineno)?;
        mappers.push(port);
    }
    let r: usize = parse_tok(it.next(), lineno, "reducer count")?;
    if r == 0 {
        return Err(err(lineno, "coflow has no reducers"));
    }
    let mut reducers = Vec::with_capacity(r);
    for _ in 0..r {
        let tok = it
            .next()
            .ok_or_else(|| err(lineno, "missing reducer entry"))?;
        let (port_s, mb_s) = tok
            .split_once(':')
            .ok_or_else(|| err(lineno, format!("reducer entry {tok:?} is not port:MB")))?;
        let port: usize = port_s
            .parse()
            .map_err(|_| err(lineno, format!("unparsable reducer port {port_s:?}")))?;
        check_port(port, num_ports, lineno)?;
        let mb: f64 = mb_s
            .parse()
            .map_err(|_| err(lineno, format!("unparsable shuffle size {mb_s:?}")))?;
        if !(mb.is_finite() && mb > 0.0) {
            return Err(err(
                lineno,
                format!("shuffle size must be positive, got {mb}"),
            ));
        }
        reducers.push((port, mb));
    }
    if it.next().is_some() {
        return Err(err(lineno, "trailing tokens after the reducer list"));
    }
    Ok(TraceCoflow {
        id,
        arrival_ms,
        mappers,
        reducers,
    })
}

fn check_port(port: usize, num_ports: usize, lineno: usize) -> Result<(), TraceError> {
    // `== num_ports` is legal in 1-based traces; rebasing is resolved
    // trace-wide by `port_base`.
    if port > num_ports {
        return Err(err(
            lineno,
            format!("port {port} outside the declared {num_ports} ports"),
        ));
    }
    Ok(())
}

fn parse_tok<T: std::str::FromStr>(
    tok: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, TraceError> {
    tok.ok_or_else(|| err(lineno, format!("missing {what}")))?
        .parse()
        .map_err(|_| err(lineno, format!("unparsable {what}")))
}

/// Strips a trailing `#` comment (an extension over the original
/// format, handy for annotated fixtures) and whitespace.
fn strip(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

impl Trace {
    /// Parses a whole trace, strictly: the header's coflow count must
    /// match the number of coflow lines.
    ///
    /// # Errors
    ///
    /// [`TraceError`] with the offending line number.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, strip(l)))
            .filter(|(_, l)| !l.is_empty());
        let (lineno, header) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
        let (num_ports, declared) = parse_header(header, lineno)?;
        let mut coflows = Vec::with_capacity(declared);
        for (lineno, line) in lines {
            if coflows.len() == declared {
                return Err(err(
                    lineno,
                    format!("more than the declared {declared} coflows"),
                ));
            }
            coflows.push(parse_coflow(line, lineno, num_ports)?);
        }
        if coflows.len() != declared {
            return Err(err(
                0,
                format!(
                    "header declares {declared} coflows, found {}",
                    coflows.len()
                ),
            ));
        }
        Ok(Trace { num_ports, coflows })
    }

    /// Aggregate statistics (powering `coflow trace summarize`).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            num_ports: self.num_ports,
            coflows: self.coflows.len(),
            flows: self.coflows.iter().map(TraceCoflow::width).sum(),
            single_flow: self.coflows.iter().filter(|c| c.width() == 1).count(),
            max_width: self
                .coflows
                .iter()
                .map(TraceCoflow::width)
                .max()
                .unwrap_or(0),
            total_mb: self.coflows.iter().map(TraceCoflow::total_mb).sum(),
            span_ms: self.coflows.iter().map(|c| c.arrival_ms).max().unwrap_or(0),
        }
    }

    /// Detects the port numbering base: `1` when some port id equals
    /// `num_ports` (necessarily 1-based), else `0`.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] when the ids are inconsistent
    /// (a port equal to `num_ports` *and* a port 0 in the same trace).
    pub fn port_base(&self) -> Result<usize, CoflowError> {
        let ports = || {
            self.coflows.iter().flat_map(|c| {
                c.mappers
                    .iter()
                    .copied()
                    .chain(c.reducers.iter().map(|&(p, _)| p))
            })
        };
        if ports().any(|p| p == self.num_ports) {
            if ports().any(|p| p == 0) {
                return Err(CoflowError::BadInstance(
                    "trace mixes 0-based and 1-based port ids".into(),
                ));
            }
            Ok(1)
        } else {
            Ok(0)
        }
    }

    /// Expands the (limited, weighted, scaled) coflows, handing each
    /// `(mapper_port, reducer_port)` pair to `endpoint` for node
    /// placement. Ports passed to `endpoint` are rebased to `0..num_ports`.
    fn expand(
        &self,
        opts: &ReplayOptions,
        mut endpoint: impl FnMut(usize, usize) -> (NodeId, NodeId),
    ) -> Result<Vec<Coflow>, CoflowError> {
        opts.validate()?;
        let base = self.port_base()?;
        let take = if opts.limit == 0 {
            self.coflows.len()
        } else {
            opts.limit.min(self.coflows.len())
        };
        let mut weight_rng = match opts.weights {
            WeightRule::Unit => None,
            WeightRule::Uniform { seed } => Some(StdRng::seed_from_u64(seed)),
        };
        let mut out = Vec::with_capacity(take);
        for c in &self.coflows[..take] {
            let release = c.release_slot(opts);
            let weight = match &mut weight_rng {
                None => 1.0,
                Some(rng) => rng.gen_range(1.0..=100.0),
            };
            let flows = c
                .port_flows(base, opts)
                .into_iter()
                .map(|(m, r, demand)| {
                    let (src, dst) = endpoint(m, r);
                    Flow::released(src, dst, demand, release)
                })
                .collect();
            out.push(Coflow::weighted(weight, flows));
        }
        Ok(out)
    }

    /// Replays the trace on the classic big switch: a bipartite
    /// `num_ports × num_ports` fabric wrapped in the paper's footnote-1
    /// I/O gadget, so every port's aggregate send and receive rates are
    /// capped at one `mb_per_slot` unit per slot — the Varys/Sincronia
    /// switch model. Demands are normalized to those units.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] on bad options, inconsistent port
    /// ids, or (impossible here) instance validation failures.
    pub fn switch_instance(&self, opts: &ReplayOptions) -> Result<CoflowInstance, CoflowError> {
        let fabric = topology::bipartite_switch(self.num_ports, 1.0);
        let limits = vec![IoLimit::symmetric(1.0); fabric.graph.node_count()];
        let gg = with_io_gadget(&fabric.graph, &limits);
        let ins: Vec<NodeId> = fabric.sources.iter().map(|v| gg.inner[v.index()]).collect();
        let outs: Vec<NodeId> = fabric.sinks.iter().map(|v| gg.inner[v.index()]).collect();
        let coflows = self.expand(opts, |m, r| (ins[m], outs[r]))?;
        let mut inst = CoflowInstance::new(gg.graph, coflows)?;
        if let Some(slack) = opts.deadline_slack {
            coflow_core::loads::apply_deadline_slack(&mut inst, slack);
        }
        Ok(inst)
    }

    /// Replays the trace on an arbitrary topology: mapper ports map
    /// round-robin onto `topo.sources`, reducer ports onto
    /// `topo.sinks`; when both land on the same node (shared WAN
    /// endpoint sets) the sink steps to the next eligible node.
    /// Capacities are used as-is — pick `mb_per_slot` relative to the
    /// topology's units (e.g. Gb per slot after
    /// [`Topology::scale_capacity`]).
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] when the topology has fewer than
    /// two distinct endpoints or on bad options / port ids.
    pub fn place(
        &self,
        topo: &Topology,
        opts: &ReplayOptions,
    ) -> Result<CoflowInstance, CoflowError> {
        if topo.sources.is_empty() || topo.sinks.is_empty() {
            return Err(CoflowError::BadInstance(
                "topology has no eligible endpoints".into(),
            ));
        }
        // Every source must see at least one distinct sink — otherwise
        // some flow is forced onto src == dst and the error would blame
        // the trace data instead of the topology.
        if topo
            .sources
            .iter()
            .any(|s| topo.sinks.iter().all(|t| t == s))
        {
            return Err(CoflowError::BadInstance(
                "topology needs a distinct sink for every source to host trace flows".into(),
            ));
        }
        let coflows = self.expand(opts, |m, r| {
            let src = topo.sources[m % topo.sources.len()];
            let mut k = r % topo.sinks.len();
            while topo.sinks[k] == src {
                k = (k + 1) % topo.sinks.len();
            }
            (src, topo.sinks[k])
        })?;
        let mut inst = CoflowInstance::new(topo.graph.clone(), coflows)?;
        if let Some(slack) = opts.deadline_slack {
            coflow_core::loads::apply_deadline_slack(&mut inst, slack);
        }
        Ok(inst)
    }
}

// ---------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------

/// Streaming trace reader: parses the header eagerly, then yields one
/// [`TraceCoflow`] per [`Iterator::next`] without buffering the file.
///
/// ```
/// use coflow_workloads::trace::{TraceStream, FB2010_SAMPLE};
///
/// let mut stream = TraceStream::new(FB2010_SAMPLE.as_bytes()).unwrap();
/// assert_eq!(stream.num_ports(), 16);
/// assert_eq!(stream.declared_coflows(), 20);
/// let first = stream.next().unwrap().unwrap();
/// assert_eq!(first.arrival_ms, 0);
/// assert_eq!(stream.count(), 19); // the rest
/// ```
pub struct TraceStream<B> {
    reader: B,
    lineno: usize,
    num_ports: usize,
    declared: usize,
}

impl<B: std::io::BufRead> TraceStream<B> {
    /// Reads the header line and positions the stream at the first
    /// coflow.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on I/O problems or a malformed header.
    pub fn new(mut reader: B) -> Result<Self, TraceError> {
        let mut lineno = 0;
        let header = loop {
            let mut buf = String::new();
            let n = reader
                .read_line(&mut buf)
                .map_err(|e| err(lineno + 1, format!("read error: {e}")))?;
            if n == 0 {
                return Err(err(0, "empty trace"));
            }
            lineno += 1;
            if !strip(&buf).is_empty() {
                break buf;
            }
        };
        let (num_ports, declared) = parse_header(strip(&header), lineno)?;
        Ok(TraceStream {
            reader,
            lineno,
            num_ports,
            declared,
        })
    }

    /// Port count from the header.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Coflow count the header declares (the stream itself yields
    /// however many lines actually follow).
    pub fn declared_coflows(&self) -> usize {
        self.declared
    }
}

impl<B: std::io::BufRead> Iterator for TraceStream<B> {
    type Item = Result<TraceCoflow, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut buf = String::new();
            match self.reader.read_line(&mut buf) {
                Err(e) => return Some(Err(err(self.lineno + 1, format!("read error: {e}")))),
                Ok(0) => return None,
                Ok(_) => {
                    self.lineno += 1;
                    let line = strip(&buf);
                    if line.is_empty() {
                        continue;
                    }
                    return Some(parse_coflow(line, self.lineno, self.num_ports));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bundled_fixture() {
        let t = Trace::parse(FB2010_SAMPLE).unwrap();
        assert_eq!(t.num_ports, 16);
        assert_eq!(t.coflows.len(), 20);
        let s = t.summary();
        assert_eq!(s.flows, 58);
        assert_eq!(s.single_flow, 12);
        assert_eq!(s.max_width, 12);
        assert_eq!(s.span_ms, 5200);
        assert!(s.total_mb > 4000.0 && s.total_mb < 6000.0, "{}", s.total_mb);
        // The fixture uses 1-based ports (port 16 appears).
        assert_eq!(t.port_base().unwrap(), 1);
    }

    #[test]
    fn streaming_matches_eager_parsing() {
        let eager = Trace::parse(FB2010_SAMPLE).unwrap();
        let stream = TraceStream::new(FB2010_SAMPLE.as_bytes()).unwrap();
        assert_eq!(stream.num_ports(), eager.num_ports);
        assert_eq!(stream.declared_coflows(), eager.coflows.len());
        let streamed: Vec<TraceCoflow> = stream.map(|c| c.unwrap()).collect();
        assert_eq!(streamed, eager.coflows);
    }

    #[test]
    fn reducer_volume_splits_across_mappers() {
        let text = "4 1\n1 0 2 0 1 2 2:100 3:50\n";
        let t = Trace::parse(text).unwrap();
        let inst = t
            .switch_instance(&ReplayOptions {
                mb_per_slot: 100.0,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(inst.num_coflows(), 1);
        let demands: Vec<f64> = inst.coflows[0].flows.iter().map(|f| f.demand).collect();
        // 100 MB reducer split over 2 mappers at 100 MB/slot = 0.5 each;
        // 50 MB reducer = 0.25 each.
        assert_eq!(demands, vec![0.5, 0.5, 0.25, 0.25]);
    }

    #[test]
    fn arrival_times_become_release_slots() {
        let text = "2 2\n1 0 1 0 1 1:10\n2 3700 1 1 1 0:10\n";
        let t = Trace::parse(text).unwrap();
        let inst = t.switch_instance(&ReplayOptions::default()).unwrap();
        assert_eq!(inst.coflows[0].release(), 0);
        assert_eq!(inst.coflows[1].release(), 3); // 3700 ms / 1000 ms-per-slot
        let halved = t
            .switch_instance(&ReplayOptions {
                ms_per_slot: 500.0,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(halved.coflows[1].release(), 7);
    }

    #[test]
    fn switch_instance_enforces_port_limits_via_the_gadget() {
        let t = Trace::parse(FB2010_SAMPLE).unwrap();
        let inst = t.switch_instance(&ReplayOptions::default()).unwrap();
        // 16 in + 16 out ports, each doubled by the gadget.
        assert_eq!(inst.graph.node_count(), 64);
        // Fabric 16×16 plus 2 gadget edges per port.
        assert_eq!(inst.graph.edge_count(), 256 + 64);
        // Endpoints are the gadget's inner nodes.
        for (_, f) in inst.flows() {
            assert!(inst.graph.label(f.src).ends_with(".inner"));
            assert!(inst.graph.label(f.dst).ends_with(".inner"));
        }
    }

    #[test]
    fn limit_weights_and_scale_knobs() {
        let t = Trace::parse(FB2010_SAMPLE).unwrap();
        let small = t
            .switch_instance(&ReplayOptions {
                limit: 5,
                demand_scale: 0.5,
                weights: WeightRule::Uniform { seed: 9 },
                ..Default::default()
            })
            .unwrap();
        assert_eq!(small.num_coflows(), 5);
        assert!(small.coflows.iter().any(|c| c.weight > 1.0));
        let unit = t
            .switch_instance(&ReplayOptions {
                limit: 5,
                ..Default::default()
            })
            .unwrap();
        assert!(unit.coflows.iter().all(|c| c.weight == 1.0));
        for (a, b) in small.coflows.iter().zip(&unit.coflows) {
            for (fa, fb) in a.flows.iter().zip(&b.flows) {
                assert!((fa.demand - 0.5 * fb.demand).abs() < 1e-12);
            }
        }
        // Deterministic: same options, same weights.
        let again = t
            .switch_instance(&ReplayOptions {
                limit: 5,
                demand_scale: 0.5,
                weights: WeightRule::Uniform { seed: 9 },
                ..Default::default()
            })
            .unwrap();
        for (a, b) in small.coflows.iter().zip(&again.coflows) {
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn places_on_wan_topologies() {
        let t = Trace::parse(FB2010_SAMPLE).unwrap();
        let topo = topology::swan().scale_capacity(50.0);
        let inst = t
            .place(
                &topo,
                &ReplayOptions {
                    mb_per_slot: 1000.0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(inst.num_coflows(), 20);
        for (_, f) in inst.flows() {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn place_rejects_topologies_where_a_source_sees_no_distinct_sink() {
        use coflow_netgraph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_bidirected(a, c, 1.0).unwrap();
        let topo = Topology {
            name: "degenerate".into(),
            graph: b.build(),
            sources: vec![a, c],
            sinks: vec![a], // source `a` has no distinct sink
        };
        let t = Trace::parse("2 1\n1 0 1 0 1 1:5\n").unwrap();
        let err = t.place(&topo, &ReplayOptions::default()).unwrap_err();
        assert!(err.to_string().contains("distinct sink"), "{err}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("", 0, "empty trace"),
            ("4\n", 1, "missing coflow count"),
            ("0 1\n1 0 1 0 1 1:5\n", 1, "port count must be positive"),
            ("4 1\n1 0 0 1 1:5\n", 2, "no mappers"),
            ("4 1\n1 0 1 0 0\n", 2, "no reducers"),
            ("4 1\n1 0 1 9 1 1:5\n", 2, "outside the declared"),
            ("4 1\n1 0 1 0 1 1:x\n", 2, "unparsable shuffle size"),
            ("4 1\n1 0 1 0 1 1:-3\n", 2, "must be positive"),
            ("4 1\n1 0 1 0 1 1\n", 2, "not port:MB"),
            ("4 1\n1 0 1 0 1 1:5 extra\n", 2, "trailing tokens"),
            ("4 2\n1 0 1 0 1 1:5\n", 0, "declares 2 coflows, found 1"),
            (
                "4 1\n1 0 1 0 1 1:5\n2 0 1 0 1 1:5\n",
                3,
                "more than the declared",
            ),
        ];
        for (text, line, expect) in cases {
            let e = Trace::parse(text).unwrap_err();
            assert!(e.msg.contains(expect), "for {text:?}: {e}");
            assert_eq!(e.line, line, "for {text:?}: {e}");
        }
    }

    #[test]
    fn mixed_port_bases_are_rejected() {
        // Port 0 and port 4 (== num_ports) in one 4-port trace.
        let text = "4 2\n1 0 1 0 1 1:5\n2 0 1 4 1 1:5\n";
        let t = Trace::parse(text).unwrap();
        assert!(t.port_base().is_err());
        assert!(t.switch_instance(&ReplayOptions::default()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated() {
        let text = "# annotated fixture\n2 1\n\n1 0 1 0 1 1:5 # tiny\n";
        let t = Trace::parse(text).unwrap();
        assert_eq!(t.coflows.len(), 1);
    }
}
