//! Structured communication scenarios beyond iid benchmark sampling.
//!
//! The distribution-sampled generators behind [`crate::build_instance`]
//! reproduce *aggregate* trace statistics, but real datacenter traffic is shaped
//! by application structure: gather stages funnel into one machine,
//! broadcasts fan out of one, MapReduce shuffles run in dependent
//! stages, ML training synchronizes over rings, and popular services
//! turn single ports hot. Each [`Scenario`] emits jobs with exactly
//! that structure, placeable on any [`Topology`] — the WANs, the
//! bipartite switch fabric, or anything built with `coflow_netgraph` —
//! because endpoints are drawn from the topology's declared
//! source/sink sets.
//!
//! Flow sizes are log-normal around [`ScenarioConfig::flow_gb`] (a
//! scenario stresses *where* traffic goes, not how sizes spread), and
//! everything is a pure function of the seed.
//!
//! ```
//! use coflow_workloads::scenarios::{build_scenario_instance, Scenario, ScenarioConfig};
//! use coflow_netgraph::topology;
//!
//! let cfg = ScenarioConfig {
//!     scenario: Scenario::by_name("incast").unwrap(),
//!     num_jobs: 4,
//!     seed: 7,
//!     ..Default::default()
//! };
//! let inst = build_scenario_instance(&topology::swan(), &cfg).unwrap();
//! assert_eq!(inst.num_coflows(), 4);
//! // Every coflow of an incast converges on a single machine.
//! for cf in &inst.coflows {
//!     let dst = cf.flows[0].dst;
//!     assert!(cf.flows.iter().all(|f| f.dst == dst));
//! }
//! ```

use crate::dists::{exponential, log_normal};
use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::CoflowError;
use coflow_netgraph::topology::Topology;
use coflow_netgraph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A structured communication pattern. Cardinalities are *requested*
/// sizes; they clamp to what the topology's endpoint sets can host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scenario {
    /// Many-to-one gather: `fanin` distinct sources converge on one
    /// sink (aggregation stages, parameter-server pushes).
    Incast {
        /// Requested number of senders per job.
        fanin: usize,
    },
    /// One-to-many: a single source replicates to `fanout` distinct
    /// sinks (block replication, model broadcast).
    Broadcast {
        /// Requested number of receivers per job.
        fanout: usize,
    },
    /// A multi-stage MapReduce shuffle DAG: each job runs `stages`
    /// dependent `mappers × reducers` shuffles. The model has no
    /// precedence constraints, so stage `k` is released
    /// `k · stage_gap_slots` after the job arrives — the release-time
    /// emulation of a pipeline DAG. A reducer co-located with a mapper
    /// (possible on WANs, whose endpoint sets coincide) reads that
    /// partition locally, so the pair contributes no network flow.
    Shuffle {
        /// Map-side machines per stage.
        mappers: usize,
        /// Reduce-side machines per stage.
        reducers: usize,
        /// Dependent stages per job (each is its own coflow).
        stages: usize,
    },
    /// Ring all-reduce over `workers` machines: one flow to each
    /// successor, each carrying the bandwidth-optimal `2(k−1)/k` share
    /// of the payload (ML data-parallel synchronization).
    AllReduce {
        /// Ring size.
        workers: usize,
    },
    /// A skewed mix: `width` flows per job, each landing on one fixed
    /// hot sink with probability `hot_fraction` (hot-object storage
    /// ports, celebrity shards).
    HotSpot {
        /// Flows per job.
        width: usize,
        /// Probability a flow targets the hot port.
        hot_fraction: f64,
    },
}

impl Scenario {
    /// The library's five scenarios in presentation order, with their
    /// default shapes (what `Scenario::by_name` returns and the
    /// `scen_library` figure sweeps).
    pub const ALL: [Scenario; 5] = [
        Scenario::Incast { fanin: 8 },
        Scenario::Broadcast { fanout: 8 },
        Scenario::Shuffle {
            mappers: 4,
            reducers: 4,
            stages: 3,
        },
        Scenario::AllReduce { workers: 8 },
        Scenario::HotSpot {
            width: 6,
            hot_fraction: 0.8,
        },
    ];

    /// Registry name (CLI `--scenario`, figure row labels).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Incast { .. } => "incast",
            Scenario::Broadcast { .. } => "broadcast",
            Scenario::Shuffle { .. } => "shuffle",
            Scenario::AllReduce { .. } => "allreduce",
            Scenario::HotSpot { .. } => "hotspot",
        }
    }

    /// One-line description (CLI help, figure notes).
    pub fn description(&self) -> &'static str {
        match self {
            Scenario::Incast { .. } => "many-to-one gather into a single sink",
            Scenario::Broadcast { .. } => "one-to-many replication out of a single source",
            Scenario::Shuffle { .. } => "multi-stage MapReduce shuffle DAG (release-staged)",
            Scenario::AllReduce { .. } => "ring all-reduce with the 2(k-1)/k optimal volume",
            Scenario::HotSpot { .. } => "skewed mix concentrating on one hot port",
        }
    }

    /// Looks up a scenario by its registry name, with the default shape.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::ALL
            .into_iter()
            .find(|s| s.name() == name.to_ascii_lowercase())
    }

    /// Returns a copy with the primary cardinality (fanin, fanout,
    /// mappers=reducers, workers, width) set to `n` — the CLI's
    /// `--fan` knob.
    pub fn with_fan(self, n: usize) -> Scenario {
        assert!(n >= 1, "fan must be at least 1");
        match self {
            Scenario::Incast { .. } => Scenario::Incast { fanin: n },
            Scenario::Broadcast { .. } => Scenario::Broadcast { fanout: n },
            Scenario::Shuffle { stages, .. } => Scenario::Shuffle {
                mappers: n,
                reducers: n,
                stages,
            },
            Scenario::AllReduce { .. } => Scenario::AllReduce { workers: n },
            Scenario::HotSpot { hot_fraction, .. } => Scenario::HotSpot {
                width: n,
                hot_fraction,
            },
        }
    }
}

/// Full scenario-generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Which pattern to generate.
    pub scenario: Scenario,
    /// Number of jobs. Every scenario emits one coflow per job except
    /// `shuffle`, which emits one per stage.
    pub num_jobs: usize,
    /// RNG seed; generation is a pure function of the config.
    pub seed: u64,
    /// Slot length in seconds — topology capacities (per-second units)
    /// are scaled to per-slot volumes, as in [`crate::build_instance`].
    pub slot_seconds: f64,
    /// Mean Poisson inter-arrival in slots (0 releases everything at 0).
    pub mean_interarrival_slots: f64,
    /// Draw weights uniformly from `[1, 100]`, or unit weights.
    pub weighted: bool,
    /// Mean flow size in Gb (log-normal, σ = 0.5 in ln-space).
    pub flow_gb: f64,
    /// Global demand multiplier (LP-tractability scaling).
    pub demand_scale: f64,
    /// Release offset between dependent shuffle stages, in slots.
    pub stage_gap_slots: u32,
    /// Deadline synthesis: when set, every coflow gets
    /// `deadline = release + max(1, ⌈slack · Γ⌉)` where `Γ` is its
    /// bottleneck lower bound (see
    /// [`coflow_core::loads::apply_deadline_slack`]). `None` (the
    /// default) leaves coflows deadline-free.
    pub deadline_slack: Option<f64>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            scenario: Scenario::ALL[0],
            num_jobs: 12,
            seed: 0,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            flow_gb: 300.0,
            demand_scale: 1.0,
            stage_gap_slots: 2,
            deadline_slack: None,
        }
    }
}

/// Samples `k` distinct indices from `0..n` (requires `k <= n`).
fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// One log-normal flow size around `flow_gb`, scaled.
fn size<R: Rng + ?Sized>(rng: &mut R, cfg: &ScenarioConfig) -> f64 {
    const SIGMA: f64 = 0.5;
    let mu = cfg.flow_gb.ln() - SIGMA * SIGMA / 2.0; // mean ≈ flow_gb
    (log_normal(rng, mu, SIGMA) * cfg.demand_scale).max(1e-3)
}

/// Steps `dst` forward through `sinks` until it differs from `src`
/// (WAN topologies share the endpoint sets, so collisions happen).
/// Falls back to the original pick after one full cycle — instance
/// validation then reports the degenerate topology cleanly.
fn avoid(src: NodeId, k: usize, sinks: &[NodeId]) -> NodeId {
    for step in 0..sinks.len() {
        let cand = sinks[(k + step) % sinks.len()];
        if cand != src {
            return cand;
        }
    }
    sinks[k]
}

/// Generates the instance: jobs with the scenario's structure, placed
/// on `topo` with capacities scaled to per-slot volumes.
///
/// # Errors
///
/// [`CoflowError::BadInstance`] when the topology cannot host the
/// pattern (fewer than two distinct endpoints) or on validation
/// failures (impossible for the bundled topologies).
pub fn build_scenario_instance(
    topo: &Topology,
    cfg: &ScenarioConfig,
) -> Result<CoflowInstance, CoflowError> {
    let sources = &topo.sources;
    let sinks = &topo.sinks;
    if sources.is_empty() || sinks.is_empty() {
        return Err(CoflowError::BadInstance(
            "topology has no eligible endpoints".into(),
        ));
    }
    let distinct_pairs = sources.iter().any(|s| sinks.iter().any(|t| t != s));
    if !distinct_pairs {
        return Err(CoflowError::BadInstance(
            "topology needs at least one distinct source/sink pair".into(),
        ));
    }
    let scaled = topo.scale_capacity(cfg.slot_seconds);
    // FNV-1a over the scenario name, mixed with the seed, so different
    // scenarios at the same seed draw uncorrelated streams.
    let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cfg.scenario.name().bytes() {
        tag ^= b as u64;
        tag = tag.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ tag);
    // The hot sink is fixed per instance — that is the skew.
    let hot = rng.gen_range(0..sinks.len());
    let mut coflows = Vec::new();
    let mut arrival = 0.0f64;
    for _ in 0..cfg.num_jobs {
        if cfg.mean_interarrival_slots > 0.0 {
            arrival += exponential(&mut rng, 1.0 / cfg.mean_interarrival_slots);
        }
        let release = arrival.floor() as u32;
        let weight = if cfg.weighted {
            rng.gen_range(1.0..=100.0)
        } else {
            1.0
        };
        emit_job(
            cfg,
            &mut rng,
            sources,
            sinks,
            hot,
            weight,
            release,
            &mut coflows,
        );
    }
    let mut inst = CoflowInstance::new(scaled.graph, coflows)?;
    if let Some(slack) = cfg.deadline_slack {
        coflow_core::loads::apply_deadline_slack(&mut inst, slack);
    }
    Ok(inst)
}

/// Emits one job's coflow(s) into `out`.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site
fn emit_job(
    cfg: &ScenarioConfig,
    rng: &mut StdRng,
    sources: &[NodeId],
    sinks: &[NodeId],
    hot: usize,
    weight: f64,
    release: u32,
    out: &mut Vec<Coflow>,
) {
    match cfg.scenario {
        Scenario::Incast { fanin } => {
            let t = sinks[rng.gen_range(0..sinks.len())];
            let cands: Vec<NodeId> = sources.iter().copied().filter(|&s| s != t).collect();
            let k = fanin.clamp(1, cands.len());
            let flows = sample_distinct(rng, cands.len(), k)
                .into_iter()
                .map(|i| Flow::released(cands[i], t, size(rng, cfg), release))
                .collect();
            out.push(Coflow::weighted(weight, flows));
        }
        Scenario::Broadcast { fanout } => {
            let s = sources[rng.gen_range(0..sources.len())];
            let cands: Vec<NodeId> = sinks.iter().copied().filter(|&t| t != s).collect();
            let k = fanout.clamp(1, cands.len());
            // One replica payload, identical to every receiver.
            let payload = size(rng, cfg);
            let flows = sample_distinct(rng, cands.len(), k)
                .into_iter()
                .map(|i| Flow::released(s, cands[i], payload, release))
                .collect();
            out.push(Coflow::weighted(weight, flows));
        }
        Scenario::Shuffle {
            mappers,
            reducers,
            stages,
        } => {
            let m = mappers.clamp(1, sources.len());
            let r = reducers.clamp(1, sinks.len());
            let maps = sample_distinct(rng, sources.len(), m);
            let reds = sample_distinct(rng, sinks.len(), r);
            for stage in 0..stages.max(1) as u32 {
                let rel = release + stage * cfg.stage_gap_slots;
                let mut flows = Vec::with_capacity(m * r);
                for &mi in &maps {
                    let src = sources[mi];
                    for &ri in &reds {
                        // A reducer co-located with a mapper reads that
                        // partition locally — no network flow (WAN
                        // topologies share the endpoint sets, so
                        // overlaps are routine).
                        let dst = sinks[ri];
                        if dst == src {
                            continue;
                        }
                        flows.push(Flow::released(src, dst, size(rng, cfg), rel));
                    }
                }
                // Degenerate tiny topologies can co-locate everything;
                // an all-local stage needs no coflow.
                if !flows.is_empty() {
                    out.push(Coflow::weighted(weight, flows));
                }
            }
        }
        Scenario::AllReduce { workers } => {
            let n = sources.len().min(sinks.len());
            let k = workers.clamp(2.min(n), n);
            let ring = sample_distinct(rng, n, k);
            let payload = size(rng, cfg);
            // Bandwidth-optimal ring all-reduce moves 2(k−1)/k of the
            // payload over every ring edge.
            let share = payload * 2.0 * (k as f64 - 1.0) / k as f64;
            let flows = (0..k)
                .map(|i| {
                    let src = sources[ring[i]];
                    let dst = avoid(src, ring[(i + 1) % k], sinks);
                    Flow::released(src, dst, share.max(1e-3), release)
                })
                .collect();
            out.push(Coflow::weighted(weight, flows));
        }
        Scenario::HotSpot {
            width,
            hot_fraction,
        } => {
            let flows = (0..width.max(1))
                .map(|_| {
                    let k = if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                        hot
                    } else {
                        rng.gen_range(0..sinks.len())
                    };
                    let mut src = sources[rng.gen_range(0..sources.len())];
                    if src == sinks[k] {
                        // Bounded rejection: scan for any distinct source.
                        src = sources
                            .iter()
                            .copied()
                            .find(|&s| s != sinks[k])
                            .unwrap_or(src);
                    }
                    Flow::released(src, sinks[k], size(rng, cfg), release)
                })
                .collect();
            out.push(Coflow::weighted(weight, flows));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_netgraph::topology;

    fn cfg(scenario: Scenario) -> ScenarioConfig {
        ScenarioConfig {
            scenario,
            num_jobs: 6,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn names_round_trip_and_shapes_clamp() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::by_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
        }
        assert!(Scenario::by_name("nope").is_none());
        assert_eq!(
            Scenario::by_name("incast").unwrap().with_fan(3),
            Scenario::Incast { fanin: 3 }
        );
    }

    #[test]
    fn every_scenario_builds_on_wan_and_switch() {
        let wan = topology::swan();
        let switch = topology::bipartite_switch(8, 10.0);
        for s in Scenario::ALL {
            for topo in [&wan, &switch] {
                let inst = build_scenario_instance(topo, &cfg(s)).unwrap();
                assert!(inst.num_coflows() >= 6, "{} on {}", s.name(), topo.name);
                for (_, f) in inst.flows() {
                    assert_ne!(f.src, f.dst, "{} placed src==dst", s.name());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = topology::gscale();
        for s in Scenario::ALL {
            let a = build_scenario_instance(&topo, &cfg(s)).unwrap();
            let b = build_scenario_instance(&topo, &cfg(s)).unwrap();
            assert_eq!(a.coflows, b.coflows, "{}", s.name());
        }
    }

    #[test]
    fn incast_converges_and_broadcast_diverges() {
        let topo = topology::gscale();
        let inc = build_scenario_instance(&topo, &cfg(Scenario::Incast { fanin: 5 })).unwrap();
        for cf in &inc.coflows {
            assert_eq!(cf.flows.len(), 5);
            let dst = cf.flows[0].dst;
            assert!(cf.flows.iter().all(|f| f.dst == dst));
            let mut srcs: Vec<_> = cf.flows.iter().map(|f| f.src).collect();
            srcs.dedup();
            assert_eq!(srcs.len(), 5, "incast sources must be distinct");
        }
        let bc = build_scenario_instance(&topo, &cfg(Scenario::Broadcast { fanout: 5 })).unwrap();
        for cf in &bc.coflows {
            let src = cf.flows[0].src;
            assert!(cf.flows.iter().all(|f| f.src == src));
            // Replication: every receiver gets the same payload.
            assert!(cf
                .flows
                .iter()
                .all(|f| (f.demand - cf.flows[0].demand).abs() < 1e-12));
        }
    }

    #[test]
    fn shuffle_emits_release_staged_coflows() {
        let topo = topology::gscale();
        let mut c = cfg(Scenario::Shuffle {
            mappers: 3,
            reducers: 2,
            stages: 3,
        });
        c.num_jobs = 4;
        c.stage_gap_slots = 5;
        let inst = build_scenario_instance(&topo, &c).unwrap();
        assert_eq!(inst.num_coflows(), 12); // 4 jobs × 3 stages
        for job in inst.coflows.chunks(3) {
            let base = job[0].release();
            // 3×2 pairs minus co-located mapper/reducer nodes (at most
            // min(3, 2) of them on a shared-endpoint WAN).
            let width = job[0].flows.len();
            assert!((4..=6).contains(&width), "stage width {width}");
            for (k, stage) in job.iter().enumerate() {
                assert_eq!(stage.flows.len(), width, "stages share placement");
                assert_eq!(stage.release(), base + 5 * k as u32);
                assert_eq!(stage.weight, job[0].weight);
                // The faithful shuffle: every remaining pair is a real
                // cross-machine transfer.
                for f in &stage.flows {
                    assert_ne!(f.src, f.dst);
                }
            }
        }
    }

    #[test]
    fn allreduce_forms_a_ring_with_optimal_volume() {
        let topo = topology::bipartite_switch(8, 10.0);
        let inst =
            build_scenario_instance(&topo, &cfg(Scenario::AllReduce { workers: 6 })).unwrap();
        for cf in &inst.coflows {
            assert_eq!(cf.flows.len(), 6);
            // Ring: in-degree and out-degree 1 in port space; all
            // shares equal 2(k−1)/k × payload.
            let d0 = cf.flows[0].demand;
            assert!(cf.flows.iter().all(|f| (f.demand - d0).abs() < 1e-9));
            let mut dsts: Vec<_> = cf.flows.iter().map(|f| f.dst).collect();
            dsts.sort_unstable();
            dsts.dedup();
            assert_eq!(dsts.len(), 6, "each worker receives exactly once");
        }
    }

    #[test]
    fn hotspot_concentrates_on_one_sink() {
        let topo = topology::gscale();
        let mut c = cfg(Scenario::HotSpot {
            width: 6,
            hot_fraction: 0.9,
        });
        c.num_jobs = 40;
        let inst = build_scenario_instance(&topo, &c).unwrap();
        let mut counts = std::collections::HashMap::new();
        for (_, f) in inst.flows() {
            *counts.entry(f.dst).or_insert(0usize) += 1;
        }
        let total: usize = counts.values().sum();
        let max = counts.values().copied().max().unwrap();
        assert!(
            max as f64 / total as f64 > 0.6,
            "hot sink got only {max}/{total}"
        );
    }

    #[test]
    fn degenerate_topologies_are_rejected() {
        let lonely = topology::star(1, 1.0); // one leaf: sources == sinks == [leaf]
        let e = build_scenario_instance(&lonely, &cfg(Scenario::ALL[0]));
        assert!(e.is_err());
    }
}
