//! Distribution primitives used by the workload generators.
//!
//! `rand` alone (without `rand_distr`) ships only uniform sampling, so
//! the handful of distributions the generators need are implemented
//! here: exponential (inter-arrival times), normal via Box–Muller,
//! log-normal (transfer sizes), and bounded Pareto (heavy-tailed coflow
//! widths and the Facebook size tail).

use rand::Rng;

/// Exponential with rate `lambda` (mean `1/lambda`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal: `exp(mu + sigma · Z)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0);
    (mu + sigma * standard_normal(rng)).exp()
}

/// Bounded Pareto on `[lo, hi]` with shape `alpha` (heavier tail for
/// smaller `alpha`).
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
    bounded_pareto_icdf(alpha, lo, hi, rng.gen_range(0.0..1.0))
}

/// Inverse CDF of the bounded Pareto:
/// `x = lo · (1 − u·(1 − (lo/hi)^α))^(−1/α)`.
pub fn bounded_pareto_icdf(alpha: f64, lo: f64, hi: f64, u: f64) -> f64 {
    let ratio = (lo / hi).powf(alpha);
    lo * (1.0 - u * (1.0 - ratio)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 3.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of log-normal = e^mu ≈ 20.09.
        assert!((median - 20.09f64).abs() / 20.09 < 0.08, "median {median}");
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5000 {
            let x = bounded_pareto(&mut rng, 1.2, 2.0, 500.0);
            assert!(
                (2.0 - 1e-9..=500.0 + 1e-9).contains(&x),
                "out of range: {x}"
            );
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| bounded_pareto(&mut rng, 1.0, 1.0, 1000.0))
            .collect();
        let below_10 = xs.iter().filter(|&&x| x < 10.0).count() as f64 / n as f64;
        // For alpha=1 truncated at 1000, ~90% of mass is below 10.
        assert!((below_10 - 0.90).abs() < 0.03, "P(<10) = {below_10}");
    }

    #[test]
    fn icdf_matches_sampler_edges() {
        // u=0 -> lo, u→1 -> hi.
        let lo = bounded_pareto_icdf(1.5, 3.0, 300.0, 0.0);
        assert!((lo - 3.0).abs() < 1e-9, "{lo}");
        let hi = bounded_pareto_icdf(1.5, 3.0, 300.0, 0.999999);
        assert!(hi > 250.0, "{hi}");
    }
}
