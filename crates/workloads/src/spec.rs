//! Workload configuration and per-benchmark parameter tables.

/// Which benchmark shape to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// BigBench (TPCx-BB): mixed analytic/ML queries — moderate-width
    /// shuffles with a few very large aggregation stages.
    BigBench,
    /// TPC-DS: many short decision-support queries — narrow coflows with
    /// small-to-medium shuffle volumes.
    TpcDs,
    /// TPC-H: ad-hoc join-heavy queries — wider coflows with large
    /// shuffle volumes.
    TpcH,
    /// Facebook production trace shape (Varys/coflow-benchmark
    /// statistics): majority single-flow coflows, heavy-tailed widths
    /// and sizes spanning several orders of magnitude.
    Facebook,
}

impl WorkloadKind {
    /// All four workloads in the paper's presentation order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::BigBench,
        WorkloadKind::TpcDs,
        WorkloadKind::TpcH,
        WorkloadKind::Facebook,
    ];

    /// Display name matching the figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::BigBench => "BigBench",
            WorkloadKind::TpcDs => "TPC-DS",
            WorkloadKind::TpcH => "TPC-H",
            WorkloadKind::Facebook => "FB",
        }
    }

    /// Shape parameters for this workload.
    pub fn params(self) -> WorkloadParams {
        match self {
            // Width: lognormal-ish moderate; sizes with big aggregates.
            WorkloadKind::BigBench => WorkloadParams {
                width_alpha: 1.6,
                width_max: 8,
                size_mu: 6.2, // median e^6.2 ≈ 490 Gb ≈ 49 s on a 10 Gbps link
                size_sigma: 1.1,
                size_tail_prob: 0.15,
                size_tail_alpha: 1.1,
                size_tail_max: 2.0e4,
            },
            WorkloadKind::TpcDs => WorkloadParams {
                width_alpha: 2.2,
                width_max: 5,
                size_mu: 5.6, // median ≈ 270 Gb
                size_sigma: 0.9,
                size_tail_prob: 0.08,
                size_tail_alpha: 1.3,
                size_tail_max: 8.0e3,
            },
            WorkloadKind::TpcH => WorkloadParams {
                width_alpha: 1.4,
                width_max: 10,
                size_mu: 6.6, // median ≈ 735 Gb
                size_sigma: 1.0,
                size_tail_prob: 0.20,
                size_tail_alpha: 1.1,
                size_tail_max: 3.0e4,
            },
            WorkloadKind::Facebook => WorkloadParams {
                width_alpha: 1.1, // heaviest width tail; most coflows narrow
                width_max: 20,
                size_mu: 5.0, // median ≈ 148 Gb, widest spread
                size_sigma: 1.6,
                size_tail_prob: 0.10,
                size_tail_alpha: 0.9,
                size_tail_max: 5.0e4,
            },
        }
    }
}

/// Shape parameters of one workload's generator.
///
/// Widths follow a bounded Pareto (`width_alpha`, truncated at
/// `width_max`); flow sizes are log-normal (`size_mu`, `size_sigma` — in
/// ln-gigabits) with probability `size_tail_prob` of being replaced by a
/// bounded-Pareto "elephant" (`size_tail_alpha`, up to `size_tail_max`
/// Gb). These reproduce the qualitative statistics reported for the
/// respective benchmarks (see module docs of [`crate`]).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Pareto shape for coflow width (number of flows).
    pub width_alpha: f64,
    /// Maximum coflow width.
    pub width_max: usize,
    /// Log-normal location for flow sizes (ln Gb).
    pub size_mu: f64,
    /// Log-normal scale for flow sizes.
    pub size_sigma: f64,
    /// Probability a flow is an "elephant" drawn from the Pareto tail.
    pub size_tail_prob: f64,
    /// Pareto shape of the elephant tail.
    pub size_tail_alpha: f64,
    /// Maximum elephant size (Gb).
    pub size_tail_max: f64,
}

/// Full generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Which benchmark shape.
    pub kind: WorkloadKind,
    /// Number of jobs (coflows); the paper uses 200 per experiment.
    pub num_jobs: usize,
    /// RNG seed; every run is a pure function of `(kind, seed, …)`.
    pub seed: u64,
    /// Slot length in seconds (capacities are Gbps × this). Paper: 50 s.
    pub slot_seconds: f64,
    /// Mean job inter-arrival time in slots (Poisson arrivals "similar
    /// to production traces"). 0 disables release times.
    pub mean_interarrival_slots: f64,
    /// Draw weights uniformly from `[1, 100]` (paper) or set all to 1
    /// (the unweighted Terra comparisons, Figures 11–12).
    pub weighted: bool,
    /// Global multiplier on all flow demands — used to scale experiments
    /// down to LP-tractable sizes while preserving shape.
    pub demand_scale: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: 200,
            seed: 0,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            demand_scale: 1.0,
        }
    }
}
