//! The LP-free ordering tier: Sincronia BSSI and deadline-aware DCoflow.
//!
//! Every other scheduler in this suite prices an LP. This module is the
//! quality/speed tier below that: compute a *coflow order* directly from
//! the per-link load matrix in `O(n · (n + m))`, then rate-fill the
//! order with the work-conserving greedy allocator
//! ([`coflow_core::greedy`]). Two algorithm families:
//!
//! * **Sincronia** (Agarwal et al., SIGCOMM 2018) —
//!   Bottleneck-Select-Scale-Iterate ([`sincronia_order`]): repeatedly
//!   pick the most-loaded link, schedule *last* the coflow with the
//!   smallest weight-to-load ratio on it, scale the remaining weights
//!   down by the "dual payment", and iterate. Any order-preserving rate
//!   filling of the resulting order is a 4-approximation to `Σ w_j C_j`
//!   on the big switch.
//! * **DCoflow** (Luu et al., 2022) — the deadline-aware variant
//!   ([`dcoflow_order`]): same backward greedy skeleton, but the coflow
//!   placed last is the one whose deadline tolerates the bottleneck's
//!   total load; when even the loosest deadline would be violated, a
//!   *victim* is rejected outright (two victim rules, see
//!   [`DcoflowVariant`]). Rejected coflows are demoted to a best-effort
//!   tail after all admitted coflows.
//!
//! # Exemplar fidelity and tie-breaking
//!
//! [`sincronia_order`] follows the reference MATLAB implementation
//! (SNIPPETS.md) operation for operation, including its tie-breaks:
//!
//! * bottleneck link: maximum cumulative load, ties broken toward the
//!   **largest link index** (the reference's
//!   `b = max(b_candidates(...))` test pin);
//! * last-scheduled coflow: minimum `W(k)/D(b,k)` over coflows with
//!   positive load on `b`, ties broken toward the **smallest coflow
//!   id** (where the reference draws randomly, this port is pinned
//!   deterministic);
//! * weight scaling: `W(k) -= W(last) · D(b,k)/D(b,last)` — weights may
//!   go negative, exactly as in the reference (no clamping).
//!
//! The DCoflow reference snippet truncates before its rejection branch,
//! so the victim rules below are fixed by this documentation and pinned
//! by the hand-built instances in this module's tests:
//!
//! * candidate placed last: largest deadline among users of the
//!   bottleneck (ties → larger load on the bottleneck, then smaller
//!   id). If it fits (`cumul(b) ≤ deadline`), it is scheduled; note
//!   that if the *largest* deadline is violated, every user of the
//!   bottleneck would miss, so a victim must go;
//! * [`DcoflowVariant::MinLink`] victim: largest load on the bottleneck
//!   link (ties → smaller id);
//! * [`DcoflowVariant::MinSumNegative`] victim: largest summed load on
//!   *negative-slack* links — links whose cumulative load exceeds the
//!   tightest deadline among their users (ties → larger bottleneck
//!   load, then smaller id).
//!
//! # Deadline guarantee
//!
//! [`OrderingSolver`] wraps the DCoflow order in a demote-and-refill
//! fixed point: after rate filling, any *admitted* coflow that still
//! misses its deadline (the ordering is a heuristic; rate filling is
//! slotted) is demoted to the best-effort tail and the rates are
//! refilled. The loop terminates (the admitted set strictly shrinks)
//! and its fixed point is the invariant the property suite pins: **an
//! admitted coflow is never scheduled past its deadline**.

use coflow_core::greedy::greedy_schedule;
use coflow_core::loads::link_loads;
use coflow_core::model::CoflowInstance;
use coflow_core::routing::Routing;
use coflow_core::solve::{CoflowSolver, SolveContext, SolveOutcome};
use coflow_core::CoflowError;

/// Load / score comparison slack (matches the greedy allocator's EPS).
const EPS: f64 = 1e-9;

/// Sincronia's Bottleneck-Select-Scale-Iterate ordering.
///
/// `loads[l][j]` is the slots-of-capacity coflow `j` needs on link `l`
/// (see [`coflow_core::loads::link_loads`]); `weights[j] > 0`. Returns
/// the scheduling order, highest priority first (a permutation of
/// `0..n`). Tie-breaking is documented at the [module level](self).
pub fn sincronia_order(loads: &[Vec<f64>], weights: &[f64]) -> Vec<usize> {
    let n = weights.len();
    let mut d: Vec<Vec<f64>> = loads.to_vec();
    let mut w = weights.to_vec();
    let mut order = vec![0usize; n];
    let mut placed = vec![false; n];
    for pos in (0..n).rev() {
        // Bottleneck: max cumulative load, ties → largest link index.
        let mut b = 0usize;
        let mut best = f64::NEG_INFINITY;
        for (l, row) in d.iter().enumerate() {
            let cumul: f64 = row.iter().sum();
            if cumul >= best {
                best = cumul;
                b = l;
            }
        }
        // Schedule last: min W/D on the bottleneck, ties → smallest id.
        let mut last = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for j in 0..n {
            if placed[j] || d[b][j] <= 0.0 {
                continue;
            }
            let ratio = w[j] / d[b][j];
            if ratio < best_ratio {
                best_ratio = ratio;
                last = j;
            }
        }
        if last == usize::MAX {
            // Remaining coflows have zero load on every link (possible
            // only for degenerate all-zero columns): place smallest id.
            last = (0..n).find(|&j| !placed[j]).expect("coflow remains");
        } else {
            // Scale: W(k) -= W(last) · D(b,k)/D(b,last), no clamping.
            let (wl, dl) = (w[last], d[b][last]);
            for j in 0..n {
                if !placed[j] && j != last && d[b][j] > 0.0 {
                    w[j] -= wl * d[b][j] / dl;
                }
            }
        }
        order[pos] = last;
        placed[last] = true;
        for row in d.iter_mut() {
            row[last] = 0.0;
        }
    }
    order
}

/// Victim-selection rule used by [`dcoflow_order`] when a deadline
/// cannot be honored (rules documented at the [module level](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcoflowVariant {
    /// Reject the largest contributor to the bottleneck link.
    MinLink,
    /// Reject the coflow with the largest summed load on
    /// negative-slack links.
    MinSumNegative,
}

/// Output of [`dcoflow_order`]: a full scheduling permutation (admitted
/// coflows first, rejected best-effort tail last) plus the admission
/// verdict per coflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DcoflowOrdering {
    /// Scheduling order, highest priority first; always a permutation
    /// of `0..n` (rejected coflows are appended, in rejection order).
    pub order: Vec<usize>,
    /// `admitted[j]` — whether coflow `j` survived admission control.
    pub admitted: Vec<bool>,
}

/// DCoflow's deadline-aware backward greedy with admission control.
///
/// `loads` as in [`sincronia_order`]; `deadlines[j]` is coflow `j`'s
/// completion deadline in slots (`f64::INFINITY` for "none" — such
/// coflows are never rejected).
pub fn dcoflow_order(
    loads: &[Vec<f64>],
    deadlines: &[f64],
    variant: DcoflowVariant,
) -> DcoflowOrdering {
    let n = deadlines.len();
    let mut d: Vec<Vec<f64>> = loads.to_vec();
    let mut admitted = vec![true; n];
    let mut active = vec![true; n];
    let mut remaining = n;
    let mut placed = vec![0usize; n];
    let mut num_placed = 0usize;
    let mut rejected = Vec::new();
    while remaining > 0 {
        // Bottleneck over the still-active coflows (same tie-break as
        // Sincronia: largest link index).
        let mut b = 0usize;
        let mut best = f64::NEG_INFINITY;
        let mut cumul = vec![0.0; d.len()];
        for (l, row) in d.iter().enumerate() {
            cumul[l] = row.iter().sum();
            if cumul[l] >= best {
                best = cumul[l];
                b = l;
            }
        }
        let users: Vec<usize> = (0..n).filter(|&j| active[j] && d[b][j] > 0.0).collect();
        let Some(&k0) = users.first() else {
            // Only zero-load coflows remain: drain them in id order.
            for (j, a) in active.iter_mut().enumerate() {
                if *a {
                    placed[num_placed] = j;
                    num_placed += 1;
                    *a = false;
                }
            }
            break;
        };
        // Candidate for the last slot: largest deadline, ties → larger
        // bottleneck load, then smaller id.
        let k_star = users.iter().copied().fold(k0, |acc, j| {
            let better = deadlines[j] > deadlines[acc]
                || (deadlines[j] == deadlines[acc] && d[b][j] > d[b][acc] + EPS);
            if better {
                j
            } else {
                acc
            }
        });
        if cumul[b] <= deadlines[k_star] + EPS {
            placed[num_placed] = k_star;
            num_placed += 1;
            active[k_star] = false;
        } else {
            // Even the loosest deadline on the bottleneck misses:
            // reject a victim per the variant rule.
            let victim = match variant {
                DcoflowVariant::MinLink => {
                    users
                        .iter()
                        .copied()
                        .fold(k0, |acc, j| if d[b][j] > d[b][acc] + EPS { j } else { acc })
                }
                DcoflowVariant::MinSumNegative => {
                    // Negative-slack links: cumulative load exceeds the
                    // tightest deadline among the link's active users.
                    let negative: Vec<usize> = (0..d.len())
                        .filter(|&l| {
                            let tight = (0..n)
                                .filter(|&j| active[j] && d[l][j] > 0.0)
                                .map(|j| deadlines[j])
                                .fold(f64::INFINITY, f64::min);
                            cumul[l] > tight + EPS
                        })
                        .collect();
                    let score = |j: usize| -> f64 { negative.iter().map(|&l| d[l][j]).sum() };
                    users.iter().copied().fold(k0, |acc, j| {
                        let (sj, sa) = (score(j), score(acc));
                        if sj > sa + EPS || ((sj - sa).abs() <= EPS && d[b][j] > d[b][acc] + EPS) {
                            j
                        } else {
                            acc
                        }
                    })
                }
            };
            admitted[victim] = false;
            active[victim] = false;
            rejected.push(victim);
        }
        remaining -= 1;
        // Zero the column of whichever coflow just left the active set.
        for row in d.iter_mut() {
            for j in 0..n {
                if !active[j] {
                    row[j] = 0.0;
                }
            }
        }
    }
    // placed[] was filled back-to-front conceptually: num_placed entries
    // in *reverse* scheduling order (last scheduled first). Reverse to
    // get highest-priority-first, then append the rejected tail.
    let mut order: Vec<usize> = placed[..num_placed].iter().rev().copied().collect();
    order.extend(rejected);
    debug_assert_eq!(order.len(), n);
    DcoflowOrdering { order, admitted }
}

/// Which ordering drives an [`OrderingSolver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Weighted-CCT Sincronia BSSI (deadline-oblivious).
    Sincronia,
    /// Deadline-aware DCoflow with the given victim rule.
    Dcoflow(DcoflowVariant),
}

/// The ordering tier as a [`CoflowSolver`]: per-link load matrix →
/// priority order → order-preserving greedy rate filling. LP-free —
/// `lower_bound` is always `None`.
///
/// For DCoflow policies the solver runs the demote-and-refill admission
/// fixed point (module docs) and reports `admitted` / `rejected` /
/// `deadline_admitted_missed` (always 0 at the fixed point) in
/// [`SolveOutcome::aux`], alongside the instance-level deadline-miss
/// stats that [`SolveOutcome::from_schedule`] attaches.
#[derive(Clone, Copy, Debug)]
pub struct OrderingSolver {
    /// Ordering family to apply.
    pub policy: OrderingPolicy,
}

impl OrderingSolver {
    /// A Sincronia solver.
    pub fn sincronia() -> Self {
        OrderingSolver {
            policy: OrderingPolicy::Sincronia,
        }
    }

    /// A DCoflow solver with the given victim rule.
    pub fn dcoflow(variant: DcoflowVariant) -> Self {
        OrderingSolver {
            policy: OrderingPolicy::Dcoflow(variant),
        }
    }
}

impl CoflowSolver for OrderingSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let n = inst.num_coflows();
        match self.policy {
            OrderingPolicy::Sincronia => {
                let loads = link_loads(inst);
                let weights: Vec<f64> = inst.coflows.iter().map(|c| c.weight).collect();
                let order = sincronia_order(&loads, &weights);
                let schedule = greedy_schedule(inst, routing, &order)?;
                SolveOutcome::from_schedule(inst, routing, schedule, ctx.tolerance())
            }
            OrderingPolicy::Dcoflow(variant) => {
                let (schedule, admitted) = dcoflow_schedule(inst, routing, variant)?;
                let admitted_count = admitted.iter().filter(|&&a| a).count();
                let mut out =
                    SolveOutcome::from_schedule(inst, routing, schedule, ctx.tolerance())?;
                out.aux.extend([
                    ("admitted", admitted_count as f64),
                    ("rejected", (n - admitted_count) as f64),
                    ("deadline_admitted_missed", 0.0),
                ]);
                Ok(out)
            }
        }
    }
}

/// Runs the DCoflow pipeline and returns both the final schedule and
/// the per-coflow admission verdict — the test hook behind the
/// "admitted coflows never miss" property (the solver's aux only
/// carries counts).
///
/// # Errors
///
/// Propagates greedy rate-filling errors.
pub fn dcoflow_schedule(
    inst: &CoflowInstance,
    routing: &Routing,
    variant: DcoflowVariant,
) -> Result<(coflow_core::schedule::Schedule, Vec<bool>), CoflowError> {
    let loads = link_loads(inst);
    let deadlines: Vec<f64> = inst
        .coflows
        .iter()
        .map(|c| c.deadline.map_or(f64::INFINITY, f64::from))
        .collect();
    let DcoflowOrdering {
        mut order,
        mut admitted,
    } = dcoflow_order(&loads, &deadlines, variant);
    loop {
        let schedule = greedy_schedule(inst, routing, &order)?;
        let comp = schedule
            .completions(inst)
            .ok_or_else(|| CoflowError::InvalidSchedule("greedy incomplete".into()))?;
        let mut demoted = false;
        for j in 0..inst.num_coflows() {
            if admitted[j] && comp.per_coflow[j] as f64 > deadlines[j] {
                admitted[j] = false;
                demoted = true;
            }
        }
        if !demoted {
            return Ok((schedule, admitted));
        }
        let (kept, tail): (Vec<usize>, Vec<usize>) = order.iter().partition(|&&j| admitted[j]);
        order = kept;
        order.extend(tail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_core::model::{Coflow, Flow};
    use coflow_netgraph::gadget::{with_io_gadget, IoLimit};
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Literal port of the reference MATLAB loop (SNIPPETS.md), used as
    /// the differential oracle for [`sincronia_order`]: compute the max
    /// / min candidate sets explicitly, break bottleneck ties with
    /// `max(candidates)` (the reference's TEST pin) and coflow ties
    /// with the smallest id (where the reference draws randomly).
    fn sincronia_matlab_oracle(loads: &[Vec<f64>], weights: &[f64]) -> Vec<usize> {
        let n = weights.len();
        let m = loads.len();
        let mut d: Vec<Vec<f64>> = loads.to_vec();
        let mut w = weights.to_vec();
        let mut order = vec![0usize; n];
        let mut unplaced: Vec<usize> = (0..n).collect();
        for pos in (0..n).rev() {
            let cumul: Vec<f64> = (0..m).map(|l| d[l].iter().sum()).collect();
            let max = cumul.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let b = (0..m).filter(|&l| cumul[l] == max).max().unwrap();
            let ratios: Vec<(usize, f64)> = unplaced
                .iter()
                .filter(|&&j| d[b][j] > 0.0)
                .map(|&j| (j, w[j] / d[b][j]))
                .collect();
            let last = if let Some(&(_, min)) =
                ratios.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            {
                ratios
                    .iter()
                    .filter(|&&(_, r)| r == min)
                    .map(|&(j, _)| j)
                    .min()
                    .unwrap()
            } else {
                *unplaced.iter().min().unwrap()
            };
            if d[b][last] > 0.0 {
                let (wl, dl) = (w[last], d[b][last]);
                for &j in &unplaced {
                    if j != last && d[b][j] > 0.0 {
                        w[j] -= wl * d[b][j] / dl;
                    }
                }
            }
            for row in d.iter_mut() {
                row[last] = 0.0;
            }
            unplaced.retain(|&j| j != last);
            order[pos] = last;
        }
        order
    }

    /// The worked example: 4 unit-weight coflows on a 2×2 switch
    /// (links 1,2 = ingress ports, 3,4 = egress ports, matching the
    /// reference's indicator convention).
    ///
    ///   C1: 1→1' (1), 2→2' (1)     C2: 1→1' (2)
    ///   C3: 2→2' (2)               C4: 1→2' (1), 2→1' (1)
    ///
    /// Hand trace of the reference loop:
    ///  * round 1: every link totals 4 → b = link 4 (tie → max index);
    ///    ratios on 4: C1=1, C3=1/2, C4=1 → C3 last; W ← [0.5,1,-,0.5].
    ///  * round 2: links 1 and 3 total 4 → b = 3; ratios all 0.5 →
    ///    three-way tie → C1 (smallest id); W ← [-,0,-,0].
    ///  * round 3: b = 3 again; ratios 0 = 0 → C2 (smallest id).
    ///  * round 4: C4 remains.
    ///
    /// Final priority order: C4 ≻ C2 ≻ C1 ≻ C3.
    fn worked_example_loads() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0, 0.0, 1.0], // link 1: ingress port 1
            vec![1.0, 0.0, 2.0, 1.0], // link 2: ingress port 2
            vec![1.0, 2.0, 0.0, 1.0], // link 3: egress port 1'
            vec![1.0, 0.0, 2.0, 1.0], // link 4: egress port 2'
        ]
    }

    #[test]
    fn sincronia_reproduces_the_worked_example() {
        let loads = worked_example_loads();
        let w = vec![1.0; 4];
        assert_eq!(sincronia_order(&loads, &w), vec![3, 1, 0, 2]);
        assert_eq!(sincronia_matlab_oracle(&loads, &w), vec![3, 1, 0, 2]);
    }

    #[test]
    fn sincronia_matches_the_matlab_oracle_on_random_matrices() {
        let mut rng = StdRng::seed_from_u64(20260808);
        for round in 0..200 {
            let n = rng.gen_range(1..7);
            let m = rng.gen_range(1..6);
            let loads: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    (0..n)
                        .map(|_| {
                            if rng.gen_bool(0.3) {
                                0.0
                            } else {
                                // Quantized demands make exact-equality
                                // ties common, exercising both rules.
                                f64::from(rng.gen_range(1..5u32))
                            }
                        })
                        .collect()
                })
                .collect();
            let weights: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(1..4u32))).collect();
            assert_eq!(
                sincronia_order(&loads, &weights),
                sincronia_matlab_oracle(&loads, &weights),
                "diverged on round {round}: loads {loads:?} weights {weights:?}"
            );
        }
    }

    /// The worked example as a real big-switch instance; endpoints sit
    /// on the I/O-gadget inner nodes so the port loads equal the hand
    /// matrix above.
    fn worked_example_instance() -> CoflowInstance {
        let topo = topology::bipartite_switch(2, 1.0);
        let limits = vec![IoLimit::symmetric(1.0); topo.graph.node_count()];
        let gg = with_io_gadget(&topo.graph, &limits);
        let (i1, i2) = (
            gg.inner[topo.sources[0].index()],
            gg.inner[topo.sources[1].index()],
        );
        let (e1, e2) = (
            gg.inner[topo.sinks[0].index()],
            gg.inner[topo.sinks[1].index()],
        );
        CoflowInstance::new(
            gg.graph,
            vec![
                Coflow::new(vec![Flow::new(i1, e1, 1.0), Flow::new(i2, e2, 1.0)]),
                Coflow::new(vec![Flow::new(i1, e1, 2.0)]),
                Coflow::new(vec![Flow::new(i2, e2, 2.0)]),
                Coflow::new(vec![Flow::new(i1, e2, 1.0), Flow::new(i2, e1, 1.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn solver_end_to_end_on_the_worked_example() {
        let inst = worked_example_instance();
        let mut ctx = SolveContext::new();
        let out = OrderingSolver::sincronia()
            .solve(&inst, &Routing::FreePath, &mut ctx)
            .unwrap();
        // Priorities C4 ≻ C2 ≻ C1 ≻ C3 rate-fill to completions
        // [4, 3, 4, 1] on the unit-capacity 2×2 switch.
        assert_eq!(out.validation.completions.per_coflow, vec![4, 3, 4, 1]);
        assert_eq!(out.cost, 12.0);
        assert!(
            out.lower_bound.is_none(),
            "LP-free tier must not price an LP"
        );
    }

    // ---- DCoflow hand-built tie-break pins ---------------------------

    #[test]
    fn dcoflow_admits_when_the_loosest_deadline_fits() {
        // One link, loads [2, 2], deadlines [2, 4]: total 4 fits C2's
        // deadline → C2 last; then C1 alone (2 ≤ 2) → order C1, C2.
        let loads = vec![vec![2.0, 2.0]];
        let out = dcoflow_order(&loads, &[2.0, 4.0], DcoflowVariant::MinLink);
        assert_eq!(out.order, vec![0, 1]);
        assert_eq!(out.admitted, vec![true, true]);
    }

    #[test]
    fn dcoflow_min_link_rejects_the_largest_bottleneck_user() {
        // One link, loads [1, 3, 2], deadlines [3, 3, 3]: total 6 > 3
        // → reject C2 (largest load). Remaining total 3 fits.
        let loads = vec![vec![1.0, 3.0, 2.0]];
        let out = dcoflow_order(&loads, &[3.0; 3], DcoflowVariant::MinLink);
        assert_eq!(out.admitted, vec![true, false, true]);
        // Admitted back-to-front: C3 placed last (tie on deadline →
        // larger load on the bottleneck), then C1; rejected tail C2.
        assert_eq!(out.order, vec![0, 2, 1]);
    }

    #[test]
    fn dcoflow_min_link_victim_tie_breaks_to_smaller_id() {
        let loads = vec![vec![2.0, 2.0]];
        let out = dcoflow_order(&loads, &[1.0, 1.0], DcoflowVariant::MinLink);
        // Both would miss, equal loads → victim C1; then C2 fits (2 > 1
        // fails — C2 is rejected too).
        assert_eq!(out.admitted, vec![false, false]);
        assert_eq!(out.order, vec![0, 1], "rejection order");
    }

    #[test]
    fn dcoflow_min_sum_negative_counts_congested_links() {
        // Link 1: loads [3, 1, 1], tightest deadline 2 → cumul 5 > 2,
        //   negative. Link 2: loads [0, 1, 0], tightest 2, cumul 1 ≤ 2.
        // Bottleneck is link 1; all three would miss (max deadline 2 <
        // 5). Scores: C1 = 3, C2 = 1, C3 = 1 → MinSumNegative rejects
        // C1. MinLink agrees here; the next test separates them.
        let loads = vec![vec![3.0, 1.0, 1.0], vec![0.0, 1.0, 0.0]];
        let out = dcoflow_order(&loads, &[2.0; 3], DcoflowVariant::MinSumNegative);
        assert_eq!(out.admitted, vec![false, true, true]);
        // Back-to-front: C2 placed last (deadline tie → id), then C3;
        // reversing gives C3 ≻ C2, rejected tail C1.
        assert_eq!(out.order, vec![2, 1, 0]);
    }

    #[test]
    fn dcoflow_variants_pick_different_victims() {
        // Links tie at cumul 5 → bottleneck is link 2 (larger index).
        // Its users are C2 (load 2) and C3 (load 3); max deadline 4 < 5
        // → someone must go. MinLink rejects C3 (largest bottleneck
        // load); MinSumNegative scores over *both* negative-slack links
        // — C2 = 2+2 = 4 beats C3 = 3 — and rejects C2 instead. The
        // runs then diverge completely: MinLink must also drop C1
        // (link 1 stays at 5 > 4), ending with only C2 admitted, while
        // MinSumNegative keeps both C1 and C3.
        let loads = vec![
            vec![3.0, 2.0, 0.0], // link 1
            vec![0.0, 2.0, 3.0], // link 2
        ];
        let deadlines = [4.0, 4.0, 4.0];
        let min_link = dcoflow_order(&loads, &deadlines, DcoflowVariant::MinLink);
        let min_sum = dcoflow_order(&loads, &deadlines, DcoflowVariant::MinSumNegative);
        assert_eq!(min_link.admitted, vec![false, true, false]);
        assert_eq!(min_link.order, vec![1, 2, 0]);
        assert_eq!(min_sum.admitted, vec![true, false, true]);
        assert_eq!(min_sum.order, vec![0, 2, 1]);
    }

    #[test]
    fn dcoflow_infinite_deadlines_reduce_to_full_admission() {
        let loads = worked_example_loads();
        let out = dcoflow_order(&loads, &[f64::INFINITY; 4], DcoflowVariant::MinLink);
        assert_eq!(out.admitted, vec![true; 4]);
        let mut sorted = out.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dcoflow_solver_never_misses_an_admitted_deadline() {
        let mut inst = worked_example_instance();
        // Tight deadlines: some coflows must be rejected.
        for (j, d) in [2u32, 3, 2, 1].into_iter().enumerate() {
            inst.coflows[j].deadline = Some(d);
        }
        for variant in [DcoflowVariant::MinLink, DcoflowVariant::MinSumNegative] {
            let (schedule, admitted) =
                dcoflow_schedule(&inst, &Routing::FreePath, variant).unwrap();
            let comp = schedule.completions(&inst).unwrap();
            for (j, cf) in inst.coflows.iter().enumerate() {
                if admitted[j] {
                    assert!(
                        comp.per_coflow[j] <= cf.deadline.unwrap(),
                        "{variant:?}: admitted coflow {j} missed"
                    );
                }
            }
            assert!(admitted.iter().any(|&a| a), "{variant:?} admitted none");
            assert!(!admitted.iter().all(|&a| a), "{variant:?} rejected none");
        }
    }
}
