//! Shortest-job-first greedy baselines.
//!
//! Zhao et al. (RAPIER, INFOCOM 2015) "give a heuristic based on shortest
//! job first, and use the idle slots to schedule flows from the longest
//! job" (paper §1.1). This module provides that flavour of baseline: a
//! work-conserving greedy allocation visiting coflows in shortest-total-
//! demand order (idle capacity automatically flows to later/longer jobs
//! because the allocator is work-conserving), plus a weighted variant.

use coflow_core::greedy::{greedy_schedule, sjf_order, weighted_sjf_order};
use coflow_core::model::CoflowInstance;
use coflow_core::routing::Routing;
use coflow_core::schedule::Schedule;
use coflow_core::solve::{CoflowSolver, SolveContext, SolveOutcome};
use coflow_core::CoflowError;

/// The one greedy implementation behind both SJF flavours: visit coflows
/// in ascending total demand (`weighted = false`) or descending
/// Smith ratio `weight / total demand` (`weighted = true`) and let the
/// work-conserving allocator hand idle capacity to later jobs.
///
/// # Errors
///
/// Propagates allocator errors (unroutable flows).
pub fn smith_greedy(
    inst: &CoflowInstance,
    routing: &Routing,
    weighted: bool,
) -> Result<Schedule, CoflowError> {
    let order = if weighted {
        weighted_sjf_order(inst)
    } else {
        sjf_order(inst)
    };
    greedy_schedule(inst, routing, &order)
}

/// Shortest-job-first greedy schedule (total coflow demand ascending).
///
/// # Errors
///
/// Propagates allocator errors (unroutable flows).
pub fn sjf(inst: &CoflowInstance, routing: &Routing) -> Result<Schedule, CoflowError> {
    smith_greedy(inst, routing, false)
}

/// Weighted SJF: coflows ordered by descending `weight / total demand`
/// (Smith-ratio order).
///
/// # Errors
///
/// Propagates allocator errors.
pub fn weighted_sjf(inst: &CoflowInstance, routing: &Routing) -> Result<Schedule, CoflowError> {
    smith_greedy(inst, routing, true)
}

/// Both SJF flavours as one parameterized [`CoflowSolver`] — registered
/// in the registry under `sjf` (unweighted) and `weighted-sjf`
/// (Smith-ratio order).
#[derive(Clone, Copy, Debug)]
pub struct SmithGreedySolver {
    /// Order by Smith ratio (`true`) or plain total demand (`false`).
    pub weighted: bool,
}

impl CoflowSolver for SmithGreedySolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let schedule = smith_greedy(inst, routing, self.weighted)?;
        SolveOutcome::from_schedule(inst, routing, schedule, ctx.tolerance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_core::model::{Coflow, Flow};
    use coflow_core::validate::{validate, Tolerance};
    use coflow_netgraph::topology;

    fn shared_edge_instance() -> CoflowInstance {
        // Two coflows over one unit edge: small (1) and big (4).
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(1.0, vec![Flow::new(v0, v1, 4.0)]),
                Coflow::weighted(1.0, vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sjf_runs_short_job_first() {
        let inst = shared_edge_instance();
        let sched = sjf(&inst, &Routing::FreePath).unwrap();
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
        // Short job (coflow 1) completes at slot 1; long at slot 5.
        assert_eq!(rep.completions.per_coflow, vec![5, 1]);
    }

    #[test]
    fn weighted_sjf_respects_smith_ratios() {
        // Same sizes but the big job carries weight 100: it goes first.
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(100.0, vec![Flow::new(v0, v1, 4.0)]),
                Coflow::weighted(1.0, vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let sched = weighted_sjf(&inst, &Routing::FreePath).unwrap();
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
        assert_eq!(rep.completions.per_coflow, vec![4, 5]);
    }
}
