//! The Jahanjou, Kantor & Rajaraman baseline (SPAA 2017) for the
//! single-path ("circuit-based coflows with paths given") model.
//!
//! Paper §6.2's description of their approach: *"First write an LP using
//! geometric time intervals, then schedule each job according to the
//! interval its α point (the time when α fraction of this job is
//! finished) belongs to. […] To optimize the approximation ratio, ε is
//! set to 0.5436."*
//!
//! Reproduction: we reuse the geometric-interval LP from
//! `coflow-core::interval`, compute each coflow's α-point interval from
//! the LP's cumulative fractions, and schedule the coflows batch by
//! batch in α-point order. Two batch disciplines are provided:
//!
//! * [`BatchMode::Strict`] (default, used in the figure harnesses) —
//!   batch `k+1` starts only after batch `k` completes, mirroring the
//!   interval-by-interval structure of their rounding (their analysis
//!   dilates each interval to fit its α-point jobs; the sequential
//!   barrier is the schedule that analysis actually charges against).
//! * [`BatchMode::WorkConserving`] — batches define a static priority
//!   order and idle capacity flows to later batches. Strictly better in
//!   practice; included so the comparison cannot be accused of
//!   weakening the baseline (both series appear in `EXPERIMENTS.md`).
//!
//! Within a batch, coflows are visited in Smith-ratio (weight/demand)
//! order, and each flow is confined to its fixed path.

use coflow_core::greedy::SlotAllocator;
use coflow_core::interval::{solve_interval, IntervalRelaxation};
use coflow_core::model::CoflowInstance;
use coflow_core::routing::Routing;
use coflow_core::schedule::Schedule;
use coflow_core::solve::{CoflowSolver, SolveContext, SolveOutcome};
use coflow_core::CoflowError;
use coflow_lp::SolverOptions;

/// The ε Jahanjou et al. use to optimize their approximation ratio.
pub const EPSILON_OPT: f64 = 0.5436;

/// How α-point batches share the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchMode {
    /// Sequential batch barriers (paper-faithful default).
    Strict,
    /// Batches as static priorities; work conserving.
    WorkConserving,
}

/// Configuration for [`jahanjou_schedule`].
#[derive(Clone, Copy, Debug)]
pub struct JahanjouConfig {
    /// Geometric-interval parameter (their optimized value by default).
    pub epsilon: f64,
    /// The α of the α-point rule.
    pub alpha: f64,
    /// Batch discipline.
    pub mode: BatchMode,
}

impl Default for JahanjouConfig {
    fn default() -> Self {
        JahanjouConfig {
            epsilon: EPSILON_OPT,
            alpha: 0.5,
            mode: BatchMode::Strict,
        }
    }
}

/// Outcome of the baseline: the schedule plus the interval LP it used.
#[derive(Clone, Debug)]
pub struct JahanjouOutcome {
    /// The rounded, feasible schedule.
    pub schedule: Schedule,
    /// The interval relaxation (its objective is their LP lower bound).
    pub relaxation: IntervalRelaxation,
    /// α-point interval index per coflow (1-based interval number).
    pub alpha_interval: Vec<usize>,
}

/// Just the rounding half's products ([`jahanjou_round`]); the caller
/// already holds the relaxation.
#[derive(Clone, Debug)]
pub struct JahanjouRounding {
    /// The rounded, feasible schedule.
    pub schedule: Schedule,
    /// α-point interval index per coflow (1-based interval number).
    pub alpha_interval: Vec<usize>,
}

fn require_single_path(routing: &Routing) -> Result<(), CoflowError> {
    if matches!(routing, Routing::SinglePath(_)) {
        Ok(())
    } else {
        Err(CoflowError::BadRouting(
            "Jahanjou et al. applies to the single-path model".into(),
        ))
    }
}

/// Runs the baseline. `routing` must be [`Routing::SinglePath`].
///
/// # Errors
///
/// [`CoflowError::BadRouting`] unless single-path routing is given;
/// otherwise propagates LP/allocator errors.
pub fn jahanjou_schedule(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    cfg: &JahanjouConfig,
    lp_opts: &SolverOptions,
) -> Result<JahanjouOutcome, CoflowError> {
    require_single_path(routing)?;
    let relaxation = solve_interval(inst, routing, horizon, cfg.epsilon, lp_opts)?;
    let rounded = jahanjou_round(inst, routing, &relaxation, cfg)?;
    Ok(JahanjouOutcome {
        schedule: rounded.schedule,
        relaxation,
        alpha_interval: rounded.alpha_interval,
    })
}

/// The α-point rounding half of the baseline, for callers that already
/// hold the geometric-interval relaxation (e.g. a
/// [`coflow_core::solve::SolveContext`] cache). `relaxation` must have
/// been solved on `routing` with `cfg.epsilon`.
///
/// # Errors
///
/// [`CoflowError::BadRouting`] unless single-path routing is given;
/// otherwise propagates allocator errors.
pub fn jahanjou_round(
    inst: &CoflowInstance,
    routing: &Routing,
    relaxation: &IntervalRelaxation,
    cfg: &JahanjouConfig,
) -> Result<JahanjouRounding, CoflowError> {
    require_single_path(routing)?;
    assert!(
        cfg.alpha > 0.0 && cfg.alpha <= 1.0,
        "alpha must lie in (0, 1]"
    );

    // α-point interval per coflow: the first interval by whose end an α
    // fraction of EVERY flow is scheduled (coflow progress is the min of
    // its flows' cumulative fractions).
    let nk = relaxation.boundaries.len() - 1;
    let mut alpha_interval = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let mut k_alpha = nk;
        // Cumulative per flow, then coflow min at each interval.
        'outer: for k in 1..=nk {
            let mut coflow_min = f64::INFINITY;
            for i in 0..cf.flows.len() {
                let cum: f64 = relaxation.flow_fractions[j][i][..k].iter().sum();
                coflow_min = coflow_min.min(cum);
            }
            if coflow_min >= cfg.alpha - 1e-9 {
                k_alpha = k;
                break 'outer;
            }
        }
        alpha_interval.push(k_alpha);
    }

    // Batch order: α-point interval ascending; Smith ratio within.
    let mut order: Vec<usize> = (0..inst.num_coflows()).collect();
    order.sort_by(|&a, &b| {
        alpha_interval[a].cmp(&alpha_interval[b]).then_with(|| {
            let ra = inst.coflows[a].weight / inst.coflows[a].total_demand();
            let rb = inst.coflows[b].weight / inst.coflows[b].total_demand();
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        })
    });

    let schedule = match cfg.mode {
        BatchMode::WorkConserving => {
            let mut alloc = SlotAllocator::new(inst, routing)?;
            while !alloc.is_done() {
                alloc.step(&order)?;
            }
            alloc.finish()
        }
        BatchMode::Strict => {
            let mut alloc = SlotAllocator::new(inst, routing)?;
            // Group consecutive coflows with the same α-point interval.
            let mut start = 0;
            while start < order.len() {
                let k = alpha_interval[order[start]];
                let mut end = start;
                while end < order.len() && alpha_interval[order[end]] == k {
                    end += 1;
                }
                let batch = &order[start..end];
                while !batch_done(&alloc, inst, batch) {
                    alloc.step(batch)?;
                }
                start = end;
            }
            alloc.finish()
        }
    };

    Ok(JahanjouRounding {
        schedule,
        alpha_interval,
    })
}

/// Jahanjou et al. as a [`CoflowSolver`]: the context supplies the
/// horizon and the cached interval relaxation at `config.epsilon`, so a
/// comparison harness that also plots the interval LP at the same ε pays
/// for it once. The outcome's lower bound is the interval LP optimum;
/// extras carry `alpha` (the α-point used).
#[derive(Clone, Copy, Debug, Default)]
pub struct JahanjouSolver {
    /// ε, α, and the batch discipline.
    pub config: JahanjouConfig,
}

impl CoflowSolver for JahanjouSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        // Fast-fail before paying for the interval LP.
        require_single_path(routing)?;
        let relaxation = ctx.interval(inst, routing, self.config.epsilon)?;
        let rounded = jahanjou_round(inst, routing, &relaxation, &self.config)?;
        let mut out =
            SolveOutcome::from_schedule(inst, routing, rounded.schedule, ctx.tolerance())?;
        out.lower_bound = Some(relaxation.lp.objective);
        out.lp_size = Some(relaxation.lp.size);
        out.lp_iterations = Some(relaxation.lp.lp_iterations);
        out.horizon = Some(relaxation.lp.horizon);
        out.aux.extend([("alpha", self.config.alpha)]);
        Ok(out)
    }
}

fn batch_done(alloc: &SlotAllocator<'_>, inst: &CoflowInstance, batch: &[usize]) -> bool {
    batch
        .iter()
        .all(|&j| (0..inst.coflows[j].flows.len()).all(|i| alloc.flow_remaining(j, i) <= 1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_core::model::{Coflow, Flow};
    use coflow_core::routing;
    use coflow_core::validate::{validate, Tolerance};
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn swan_instance(n: usize) -> (CoflowInstance, Routing) {
        use rand::Rng;
        let topo = topology::swan();
        let g = topo.graph;
        let nodes: Vec<_> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut coflows = Vec::new();
        for _ in 0..n {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            coflows.push(Coflow::weighted(
                rng.gen_range(1.0..100.0),
                vec![Flow::new(a, b, rng.gen_range(10.0..80.0))],
            ));
        }
        let inst = CoflowInstance::new(g, coflows).unwrap();
        let r = routing::random_shortest_paths(&inst, &mut rng).unwrap();
        (inst, r)
    }

    #[test]
    fn produces_feasible_schedules_in_both_modes() {
        let (inst, r) = swan_instance(6);
        let horizon = coflow_core::horizon::horizon(
            &inst,
            &r,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.5 },
        )
        .unwrap();
        for mode in [BatchMode::Strict, BatchMode::WorkConserving] {
            let cfg = JahanjouConfig {
                mode,
                ..Default::default()
            };
            let out =
                jahanjou_schedule(&inst, &r, horizon, &cfg, &SolverOptions::default()).unwrap();
            validate(&inst, &r, &out.schedule, Tolerance::default())
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn work_conserving_never_loses_to_strict() {
        let (inst, r) = swan_instance(8);
        let horizon = coflow_core::horizon::horizon(
            &inst,
            &r,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.5 },
        )
        .unwrap();
        let strict = jahanjou_schedule(
            &inst,
            &r,
            horizon,
            &JahanjouConfig::default(),
            &SolverOptions::default(),
        )
        .unwrap();
        let wc = jahanjou_schedule(
            &inst,
            &r,
            horizon,
            &JahanjouConfig {
                mode: BatchMode::WorkConserving,
                ..Default::default()
            },
            &SolverOptions::default(),
        )
        .unwrap();
        let cost = |s: &Schedule| s.completions(&inst).unwrap().weighted_total;
        assert!(
            cost(&wc.schedule) <= cost(&strict.schedule) + 1e-9,
            "wc {} > strict {}",
            cost(&wc.schedule),
            cost(&strict.schedule)
        );
    }

    #[test]
    fn alpha_points_are_monotone_in_alpha() {
        let (inst, r) = swan_instance(5);
        let horizon = coflow_core::horizon::horizon(
            &inst,
            &r,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.5 },
        )
        .unwrap();
        let lo = jahanjou_schedule(
            &inst,
            &r,
            horizon,
            &JahanjouConfig {
                alpha: 0.25,
                ..Default::default()
            },
            &SolverOptions::default(),
        )
        .unwrap();
        let hi = jahanjou_schedule(
            &inst,
            &r,
            horizon,
            &JahanjouConfig {
                alpha: 0.9,
                ..Default::default()
            },
            &SolverOptions::default(),
        )
        .unwrap();
        for (a, b) in lo.alpha_interval.iter().zip(&hi.alpha_interval) {
            assert!(a <= b, "α-point must move later as α grows");
        }
    }

    #[test]
    fn rejects_non_single_path_models() {
        let (inst, _) = swan_instance(3);
        let err = jahanjou_schedule(
            &inst,
            &Routing::FreePath,
            20,
            &JahanjouConfig::default(),
            &SolverOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoflowError::BadRouting(_)));
    }
}
