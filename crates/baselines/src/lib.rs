//! Baseline coflow schedulers the paper compares against (§6.2), plus
//! the concurrent open shop machinery behind its hardness proof (§5).
//!
//! * [`jahanjou`] — Jahanjou, Kantor & Rajaraman's single-path algorithm
//!   (SPAA 2017): geometric-interval LP + α-point batching. The paper's
//!   Figures 9–10 comparator.
//! * [`terra`] — Terra's offline free-path algorithm (You & Chowdhury):
//!   per-coflow standalone minimum completion times, then shortest
//!   remaining time first. The paper's Figures 11–12 comparator
//!   (unweighted).
//! * [`sjf`] — shortest-job-first greedy in the spirit of Zhao et al.'s
//!   RAPIER heuristic (related work), as an extra reference point.
//! * [`primal_dual`] — the LP-free combinatorial ordering of Ahmadi et
//!   al. / Sincronia (§1.1's "very practical combinatorial algorithm"),
//!   ported to the graph setting via the edge-machine open shop.
//! * [`ordering`] — the LP-free ordering tier: Sincronia's
//!   bottleneck-select-scale-iterate ordering (exemplar-faithful port)
//!   and the deadline-aware DCoflow variants with admission control,
//!   both rate-filled order-preservingly by the greedy allocator.
//! * [`openshop`] — concurrent open shop instances, both directions of
//!   the §5 reduction, and an exact brute-force optimum for tiny
//!   instances (used to test the (2−ε)-hardness reduction's
//!   objective-preservation and to sanity-check approximation factors).
//! * [`registry`] — the name→constructor table over every
//!   [`coflow_core::solve::CoflowSolver`] in the suite (paper pipeline
//!   and baselines), with per-algorithm descriptions and capability
//!   flags. Figure harnesses and `coflow solve --algo` dispatch through
//!   it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod jahanjou;
pub mod openshop;
pub mod ordering;
pub mod primal_dual;
pub mod registry;
pub mod sjf;
pub mod terra;
