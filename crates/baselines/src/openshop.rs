//! Concurrent open shop: the problem behind the paper's hardness result.
//!
//! §5 proves coflow scheduling is NP-hard to approximate within `2 − ε`
//! by an objective-preserving reduction from concurrent open shop
//! (Bansal–Khot / Sachdeva–Saket hardness). This module implements:
//!
//! * the concurrent open shop model ([`OpenShopInstance`]);
//! * an exact solver for tiny instances ([`exact_optimum`]) — optimal
//!   schedules may be assumed to be *permutation* schedules, so
//!   brute-forcing job orders is exact;
//! * the reduction in both directions ([`to_coflow_instance`],
//!   [`coflow_schedule_cost_to_openshop`], [`permutation_to_coflow_schedule`]),
//!   following the proof's constructions line by line.
//!
//! Integration tests use these to verify the reduction preserves
//! objectives and to benchmark our algorithms against exact optima on
//! tiny instances.

use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::routing::Routing;
use coflow_core::schedule::{Schedule, SlotTransfer};
use coflow_core::CoflowError;
use coflow_netgraph::{GraphBuilder, Path};
use rand::Rng;

/// One job: processing demand per machine (0 = job absent from machine).
#[derive(Clone, Debug, PartialEq)]
pub struct OpenShopJob {
    /// Priority weight `w_j > 0`.
    pub weight: f64,
    /// `processing[i]` = time units required on machine `i`.
    pub processing: Vec<f64>,
}

/// A concurrent open shop instance: jobs may be processed on all their
/// machines simultaneously; a job completes when all machines finish its
/// demand; machines process one unit of work per time unit.
#[derive(Clone, Debug)]
pub struct OpenShopInstance {
    /// Number of machines `m`.
    pub machines: usize,
    /// The jobs.
    pub jobs: Vec<OpenShopJob>,
}

impl OpenShopInstance {
    /// Validates shapes and positivity.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] on malformed data.
    pub fn new(machines: usize, jobs: Vec<OpenShopJob>) -> Result<Self, CoflowError> {
        if machines == 0 {
            return Err(CoflowError::BadInstance("need at least one machine".into()));
        }
        for (j, job) in jobs.iter().enumerate() {
            if job.processing.len() != machines {
                return Err(CoflowError::BadInstance(format!(
                    "job {j}: {} machine entries for {machines} machines",
                    job.processing.len()
                )));
            }
            if !(job.weight.is_finite() && job.weight > 0.0) {
                return Err(CoflowError::BadInstance(format!("job {j}: bad weight")));
            }
            if job.processing.iter().any(|&p| !(p.is_finite() && p >= 0.0)) {
                return Err(CoflowError::BadInstance(format!(
                    "job {j}: negative or non-finite processing time"
                )));
            }
            if job.processing.iter().all(|&p| p == 0.0) {
                return Err(CoflowError::BadInstance(format!(
                    "job {j}: no processing demand on any machine"
                )));
            }
        }
        Ok(OpenShopInstance { machines, jobs })
    }

    /// Uniform random instance with integer processing times in
    /// `1..=p_max` (some entries zeroed with probability `sparsity`).
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        machines: usize,
        jobs: usize,
        p_max: u32,
        sparsity: f64,
        weighted: bool,
    ) -> Self {
        let jobs = (0..jobs)
            .map(|_| {
                let mut processing: Vec<f64> = (0..machines)
                    .map(|_| {
                        if rng.gen_bool(sparsity) {
                            0.0
                        } else {
                            rng.gen_range(1..=p_max) as f64
                        }
                    })
                    .collect();
                if processing.iter().all(|&p| p == 0.0) {
                    let i = rng.gen_range(0..machines);
                    processing[i] = rng.gen_range(1..=p_max) as f64;
                }
                OpenShopJob {
                    weight: if weighted {
                        rng.gen_range(1.0..10.0)
                    } else {
                        1.0
                    },
                    processing,
                }
            })
            .collect();
        OpenShopInstance { machines, jobs }
    }

    /// Cost of the permutation schedule given by `order` (§5 proof: jobs
    /// processed non-preemptively per machine in the given order; a
    /// job's completion on machine `i` is the prefix sum of processing
    /// times of jobs up to it; the job completes at the max over
    /// machines).
    pub fn permutation_cost(&self, order: &[usize]) -> f64 {
        let mut completion = vec![0.0f64; self.jobs.len()];
        for i in 0..self.machines {
            let mut t = 0.0;
            for &j in order {
                let p = self.jobs[j].processing[i];
                if p > 0.0 {
                    t += p;
                    completion[j] = completion[j].max(t);
                }
            }
        }
        completion
            .iter()
            .zip(&self.jobs)
            .map(|(&c, job)| job.weight * c)
            .sum()
    }
}

/// Exact optimum over all permutation schedules (optimal for concurrent
/// open shop). Exponential — intended for ≤ 9 jobs.
pub fn exact_optimum(inst: &OpenShopInstance) -> (f64, Vec<usize>) {
    let n = inst.jobs.len();
    assert!(n <= 10, "exact solver is factorial; use <= 10 jobs");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = (f64::INFINITY, perm.clone());
    heaps(n, &mut perm, inst, &mut best);
    best
}

fn heaps(k: usize, perm: &mut Vec<usize>, inst: &OpenShopInstance, best: &mut (f64, Vec<usize>)) {
    if k <= 1 {
        let c = inst.permutation_cost(perm);
        if c < best.0 {
            *best = (c, perm.clone());
        }
        return;
    }
    for i in 0..k {
        heaps(k - 1, perm, inst, best);
        if k.is_multiple_of(2) {
            perm.swap(i, k - 1);
        } else {
            perm.swap(0, k - 1);
        }
    }
}

/// The §5 reduction, forward direction: machine `i` becomes a
/// unit-capacity edge `x_i → y_i`; job `j` becomes a coflow with one
/// flow of demand `p_{ij}` per machine it uses. Returns the instance and
/// the (forced) single-path routing.
///
/// # Errors
///
/// Propagates validation errors (none for valid open shop instances).
pub fn to_coflow_instance(os: &OpenShopInstance) -> Result<(CoflowInstance, Routing), CoflowError> {
    let mut b = GraphBuilder::new();
    let mut xs = Vec::with_capacity(os.machines);
    let mut ys = Vec::with_capacity(os.machines);
    for i in 0..os.machines {
        xs.push(b.add_node(format!("x{i}")));
        ys.push(b.add_node(format!("y{i}")));
    }
    for i in 0..os.machines {
        b.add_edge(xs[i], ys[i], 1.0)
            .expect("static gadget is valid");
    }
    let g = b.build();

    let mut coflows = Vec::with_capacity(os.jobs.len());
    let mut paths = Vec::with_capacity(os.jobs.len());
    for job in &os.jobs {
        let mut flows = Vec::new();
        let mut fpaths = Vec::new();
        for i in 0..os.machines {
            let p = job.processing[i];
            if p > 0.0 {
                flows.push(Flow::new(xs[i], ys[i], p));
                fpaths.push(Path::from_nodes(&g, &[xs[i], ys[i]]).expect("edge exists"));
            }
        }
        coflows.push(Coflow::weighted(job.weight, flows));
        paths.push(fpaths);
    }
    let inst = CoflowInstance::new(g, coflows)?;
    Ok((inst, Routing::SinglePath(paths)))
}

/// §5 proof, coflow → open shop direction: given a feasible coflow
/// schedule for the reduced instance, per machine sort jobs by their
/// flow's completion slot and reschedule non-preemptively; the resulting
/// open shop cost is at most the coflow cost. Returns that cost.
pub fn coflow_schedule_cost_to_openshop(os: &OpenShopInstance, sched: &Schedule) -> f64 {
    let n = os.jobs.len();
    let mut completion = vec![0.0f64; n];
    for i in 0..os.machines {
        // Jobs using machine i, keyed by their flow completion slot in
        // the coflow schedule.
        let mut users: Vec<(u32, usize)> = Vec::new();
        for (j, job) in os.jobs.iter().enumerate() {
            if job.processing[i] > 0.0 {
                // Flow index within coflow j = rank of machine i among
                // j's used machines.
                let fi = job.processing[..i].iter().filter(|&&p| p > 0.0).count();
                let done_slot = sched.flows[j][fi]
                    .iter()
                    .rev()
                    .find(|st| st.volume > 1e-9)
                    .map(|st| st.slot)
                    .unwrap_or(0);
                users.push((done_slot, j));
            }
        }
        users.sort_unstable();
        let mut t = 0.0;
        for (_, j) in users {
            t += os.jobs[j].processing[i];
            completion[j] = completion[j].max(t);
        }
    }
    completion
        .iter()
        .zip(&os.jobs)
        .map(|(&c, job)| job.weight * c)
        .sum()
}

/// §5 proof, open shop → coflow direction: a permutation schedule maps
/// to a coflow schedule of the same cost ("we make the flow take up all
/// bandwidth of edge `(x_i, y_i)`" during its machine's busy window).
/// Requires integer processing times so slots align exactly.
pub fn permutation_to_coflow_schedule(
    os: &OpenShopInstance,
    inst: &CoflowInstance,
    order: &[usize],
) -> Schedule {
    let mut schedule = Schedule {
        flows: inst
            .coflows
            .iter()
            .map(|c| vec![Vec::new(); c.flows.len()])
            .collect(),
    };
    for i in 0..os.machines {
        let edge = inst
            .graph
            .find_edge(
                inst.graph.node_by_label(&format!("x{i}")).expect("exists"),
                inst.graph.node_by_label(&format!("y{i}")).expect("exists"),
            )
            .expect("gadget edge");
        let mut t = 0u32;
        for &j in order {
            let p = os.jobs[j].processing[i];
            if p <= 0.0 {
                continue;
            }
            assert!(
                (p - p.round()).abs() < 1e-9,
                "integer processing times required for exact slot alignment"
            );
            let fi = os.jobs[j].processing[..i]
                .iter()
                .filter(|&&q| q > 0.0)
                .count();
            for _ in 0..p.round() as u32 {
                t += 1;
                schedule.flows[j][fi].push(SlotTransfer {
                    slot: t,
                    volume: 1.0,
                    edges: vec![(edge, 1.0)],
                });
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_core::validate::{validate, Tolerance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> OpenShopInstance {
        OpenShopInstance::new(
            2,
            vec![
                OpenShopJob {
                    weight: 1.0,
                    processing: vec![2.0, 1.0],
                },
                OpenShopJob {
                    weight: 2.0,
                    processing: vec![1.0, 3.0],
                },
                OpenShopJob {
                    weight: 1.0,
                    processing: vec![0.0, 2.0],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn permutation_cost_by_hand() {
        let os = tiny();
        // Order [0, 1, 2]:
        // machine 0: job0 by 2, job1 by 3; machine 1: job0 by 1, job1 by
        // 4, job2 by 6. C = [2, 4, 6]; cost = 2 + 2*4 + 6 = 16.
        assert!((os.permutation_cost(&[0, 1, 2]) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn exact_beats_every_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let os = OpenShopInstance::random(&mut rng, 3, 5, 4, 0.3, true);
            let (best, order) = exact_optimum(&os);
            assert!((best - os.permutation_cost(&order)).abs() < 1e-9);
            // Spot-check a few random permutations.
            use rand::seq::SliceRandom;
            let mut perm: Vec<usize> = (0..5).collect();
            for _ in 0..20 {
                perm.shuffle(&mut rng);
                assert!(os.permutation_cost(&perm) >= best - 1e-9);
            }
        }
    }

    #[test]
    fn reduction_forward_shape() {
        let os = tiny();
        let (inst, routing) = to_coflow_instance(&os).unwrap();
        assert_eq!(inst.graph.node_count(), 4);
        assert_eq!(inst.graph.edge_count(), 2);
        assert_eq!(inst.num_coflows(), 3);
        assert_eq!(inst.num_flows(), 5); // job2 uses one machine
        routing.validate(&inst).unwrap();
    }

    #[test]
    fn permutation_maps_to_equal_cost_coflow_schedule() {
        let os = tiny();
        let (inst, routing) = to_coflow_instance(&os).unwrap();
        let (opt, order) = exact_optimum(&os);
        let sched = permutation_to_coflow_schedule(&os, &inst, &order);
        let rep = validate(&inst, &routing, &sched, Tolerance::default()).unwrap();
        assert!(
            (rep.completions.weighted_total - opt).abs() < 1e-9,
            "coflow cost {} vs open shop optimum {opt}",
            rep.completions.weighted_total
        );
    }

    #[test]
    fn coflow_schedule_maps_back_without_cost_increase() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let os = OpenShopInstance::random(&mut rng, 3, 4, 3, 0.25, true);
            let (inst, routing) = to_coflow_instance(&os).unwrap();
            // Any feasible coflow schedule works; use the SJF greedy.
            let sched = crate::sjf::weighted_sjf(&inst, &routing).unwrap();
            let rep = validate(&inst, &routing, &sched, Tolerance::default()).unwrap();
            let os_cost = coflow_schedule_cost_to_openshop(&os, &sched);
            assert!(
                os_cost <= rep.completions.weighted_total + 1e-9,
                "open shop {} > coflow {}",
                os_cost,
                rep.completions.weighted_total
            );
            // And it can never beat the exact optimum.
            let (opt, _) = exact_optimum(&os);
            assert!(os_cost >= opt - 1e-9);
        }
    }

    #[test]
    fn rejects_malformed_instances() {
        assert!(OpenShopInstance::new(0, vec![]).is_err());
        assert!(OpenShopInstance::new(
            2,
            vec![OpenShopJob {
                weight: 1.0,
                processing: vec![1.0],
            }]
        )
        .is_err());
        assert!(OpenShopInstance::new(
            1,
            vec![OpenShopJob {
                weight: 0.0,
                processing: vec![1.0],
            }]
        )
        .is_err());
        assert!(OpenShopInstance::new(
            1,
            vec![OpenShopJob {
                weight: 1.0,
                processing: vec![0.0],
            }]
        )
        .is_err());
    }
}
