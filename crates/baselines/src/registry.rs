//! The named algorithm registry: every scheduler in the suite — the
//! paper pipeline's `Algorithm` × `Relaxation` combinations and all
//! baselines — behind one `name → constructor` table.
//!
//! This is what makes algorithms pluggable: the figure harnesses declare
//! comparator series as registry names, and `coflow solve --algo NAME`
//! accepts any entry here. To add an algorithm:
//!
//! 1. implement [`coflow_core::solve::CoflowSolver`] for your
//!    scheduler (validate the schedule you return —
//!    `SolveOutcome::from_schedule` does it);
//! 2. append an [`AlgorithmEntry`] to [`ENTRIES`] with a unique name,
//!    description, and honest [`Capabilities`];
//! 3. done — `coflow algos` lists it, the cross-algorithm property test
//!    (`tests/registry_properties.rs`) starts covering it, and any
//!    figure can plot it by name.
//!
//! Construction is parameterized by [`AlgoParams`] (λ samples, seed,
//! interval ε, …) so harnesses can pin per-point settings without
//! per-algorithm plumbing; every field has the suite-wide default.
//!
//! # Example
//!
//! Dispatch by name, filtering on capability flags — the same loop the
//! figure harnesses and `coflow trace replay --model auto` run:
//!
//! ```
//! use coflow_baselines::registry::{self, AlgoParams, RoutingSupport};
//! use coflow_core::model::{Coflow, CoflowInstance, Flow};
//! use coflow_core::routing::Routing;
//! use coflow_core::solve::SolveContext;
//! use coflow_netgraph::topology;
//!
//! let topo = topology::fig2_example();
//! let g = topo.graph;
//! let (s, t) = (g.node_by_label("s").unwrap(), g.node_by_label("t").unwrap());
//! let inst = CoflowInstance::new(
//!     g,
//!     vec![Coflow::new(vec![Flow::new(s, t, 2.0)])],
//! )
//! .unwrap();
//!
//! // One shared context: every free-path entry reuses the same LPs.
//! let mut ctx = SolveContext::new();
//! for name in ["heuristic", "weighted-sjf", "terra"] {
//!     let entry = registry::by_name(name).expect("registered");
//!     assert_ne!(entry.caps.routing, RoutingSupport::SinglePathOnly);
//!     let out = entry
//!         .build(&AlgoParams::default())
//!         .solve(&inst, &Routing::FreePath, &mut ctx)
//!         .unwrap();
//!     // Free path splits the 2 units over the three disjoint unit
//!     // paths, so the coflow finishes in the first slot: cost 1.
//!     assert_eq!(out.cost, 1.0);
//! }
//! ```

use crate::jahanjou::JahanjouSolver;
use crate::ordering::{DcoflowVariant, OrderingSolver};
use crate::primal_dual::PrimalDualSolver;
use crate::sjf::SmithGreedySolver;
use crate::terra::TerraSolver;
use coflow_core::solve::{
    BatchOnlineSolver, CoflowSolver, DerandSolver, LpRoundingSolver, OnlineSolver,
};
use coflow_core::solver::{Algorithm, Relaxation};
use coflow_core::stretch::StretchOptions;

/// Which routing models an algorithm accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingSupport {
    /// Free path, single path, and multi path.
    Any,
    /// Fixed paths required (`Routing::SinglePath`).
    SinglePathOnly,
    /// Free path required (`Routing::FreePath`).
    FreePathOnly,
}

impl RoutingSupport {
    /// Short display label (`coflow algos`).
    pub fn label(self) -> &'static str {
        match self {
            RoutingSupport::Any => "any",
            RoutingSupport::SinglePathOnly => "single-path",
            RoutingSupport::FreePathOnly => "free-path",
        }
    }
}

/// Capability flags a harness can filter on before dispatching.
#[derive(Clone, Copy, Debug)]
pub struct Capabilities {
    /// Routing models the algorithm accepts.
    pub routing: RoutingSupport,
    /// Whether coflow weights influence the schedule (Terra and plain
    /// SJF ignore them — compare those on unweighted cost).
    pub weighted: bool,
    /// Whether an LP solver runs inside (LP-based algorithms report a
    /// lower bound in their outcome; Terra solves per-coflow LPs but no
    /// relaxation, so it is LP-based without a bound).
    pub lp_based: bool,
    /// No LP anywhere — always the complement of
    /// [`lp_based`](Capabilities::lp_based); kept as its own flag so
    /// harnesses (and the service fallback tier) can filter positively
    /// for the cheap entries.
    pub lp_free: bool,
    /// Whether [`coflow_core::model::Coflow::deadline`] influences the
    /// schedule (admission control / rejection). Deadline-oblivious
    /// entries still get deadline-miss stats in their outcome aux.
    pub deadline_aware: bool,
}

/// Broad family of an algorithm (`coflow algos` groups by this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// LP relaxation + rounding (the paper pipeline and Jahanjou et al.).
    LpRounding,
    /// Combinatorial — no LP anywhere.
    LpFree,
    /// Many small LPs + a combinatorial sweep (Terra).
    Hybrid,
    /// Online frameworks (arrivals revealed at release time).
    Online,
}

impl AlgoKind {
    /// Short display label (`coflow algos`).
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::LpRounding => "lp-rounding",
            AlgoKind::LpFree => "lp-free",
            AlgoKind::Hybrid => "hybrid",
            AlgoKind::Online => "online",
        }
    }
}

/// Construction-time parameters; harnesses set what they sweep and leave
/// the rest at suite defaults.
#[derive(Clone, Copy, Debug)]
pub struct AlgoParams {
    /// Independent λ draws for sampled Stretch (paper §6.1: 20).
    pub samples: usize,
    /// RNG seed for sampled Stretch.
    pub seed: u64,
    /// The fixed stretch factor for `fixed-lambda`.
    pub lambda: f64,
    /// Geometric-interval ε for the `interval-*` entries.
    pub epsilon: f64,
    /// ε for Jahanjou et al.'s own interval LP — kept separate from
    /// [`epsilon`](AlgoParams::epsilon) because their defining choice is
    /// the ratio-optimizing 0.5436 while comparison harnesses typically
    /// sweep the pipeline's ε independently.
    pub jahanjou_epsilon: f64,
    /// α-point for Jahanjou et al.
    pub alpha: f64,
    /// Idle-slot compaction for the LP-rounding pipeline (§6.1).
    pub compact: bool,
    /// Disable warm-started re-solves in the online frameworks (the
    /// `--cold` escape hatch for A/B measurements; warm is the default).
    pub cold: bool,
    /// Which LP engine every relaxation and re-solve runs on (the
    /// `--lp-engine` escape hatch; the sparse revised simplex is the
    /// default, `Dense` falls back to the tableau oracle).
    pub engine: coflow_lp::LpEngine,
    /// Entering-variable pricing rule for the sparse engine
    /// (`--pricing`; Devex by default, with warm epoch re-solves
    /// upgrading to dual steepest edge inside the resolver).
    pub pricing: coflow_lp::Pricing,
    /// Basis-update scheme between refactorizations (`--basis-update`;
    /// Forrest–Tomlin by default, `Eta` keeps the product-form chain as
    /// the differential oracle).
    pub basis_update: coflow_lp::BasisUpdate,
}

impl Default for AlgoParams {
    fn default() -> Self {
        AlgoParams {
            samples: 20,
            seed: 1,
            lambda: 1.0,
            epsilon: 0.2,
            jahanjou_epsilon: crate::jahanjou::EPSILON_OPT,
            alpha: 0.5,
            compact: true,
            cold: false,
            engine: coflow_lp::LpEngine::default(),
            pricing: coflow_lp::Pricing::Devex,
            basis_update: coflow_lp::BasisUpdate::ForrestTomlin,
        }
    }
}

/// One registry row: identity, documentation, capabilities, constructor.
pub struct AlgorithmEntry {
    /// Unique registry name (`coflow solve --algo NAME`).
    pub name: &'static str,
    /// Algorithm family.
    pub kind: AlgoKind,
    /// One-line description (`coflow algos`).
    pub description: &'static str,
    /// What the algorithm supports.
    pub caps: Capabilities,
    build: fn(&AlgoParams) -> Box<dyn CoflowSolver>,
}

impl AlgorithmEntry {
    /// Constructs the solver with the given parameters.
    pub fn build(&self, params: &AlgoParams) -> Box<dyn CoflowSolver> {
        (self.build)(params)
    }
}

impl std::fmt::Debug for AlgorithmEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmEntry")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("caps", &self.caps)
            .finish_non_exhaustive()
    }
}

fn opts(p: &AlgoParams) -> StretchOptions {
    StretchOptions { compact: p.compact }
}

fn pipeline(relaxation: Relaxation, rounding: Algorithm, p: &AlgoParams) -> Box<dyn CoflowSolver> {
    Box::new(LpRoundingSolver {
        relaxation,
        rounding,
        options: opts(p),
    })
}

const LP_ANY: Capabilities = Capabilities {
    routing: RoutingSupport::Any,
    weighted: true,
    lp_based: true,
    lp_free: false,
    deadline_aware: false,
};

/// Every algorithm in the suite, in presentation order.
pub const ENTRIES: &[AlgorithmEntry] = &[
    AlgorithmEntry {
        name: "heuristic",
        kind: AlgoKind::LpRounding,
        description: "time-indexed LP + the λ=1 heuristic (§6.2) — best in practice",
        caps: LP_ANY,
        build: |p| pipeline(Relaxation::TimeIndexed, Algorithm::LpHeuristic, p),
    },
    AlgorithmEntry {
        name: "stretch",
        kind: AlgoKind::LpRounding,
        description: "time-indexed LP + Stretch with sampled λ (§4.1, 2-approximation)",
        caps: LP_ANY,
        build: |p| {
            pipeline(
                Relaxation::TimeIndexed,
                Algorithm::Stretch {
                    samples: p.samples,
                    seed: p.seed,
                },
                p,
            )
        },
    },
    AlgorithmEntry {
        name: "fixed-lambda",
        kind: AlgoKind::LpRounding,
        description: "time-indexed LP + Stretch at one fixed λ",
        caps: LP_ANY,
        build: |p| pipeline(Relaxation::TimeIndexed, Algorithm::FixedLambda(p.lambda), p),
    },
    AlgorithmEntry {
        name: "derand",
        kind: AlgoKind::LpRounding,
        description: "time-indexed LP + derandomized Stretch (exact best λ, pure stretch)",
        caps: LP_ANY,
        build: |_| Box::new(DerandSolver::default()),
    },
    AlgorithmEntry {
        name: "interval-derand",
        kind: AlgoKind::LpRounding,
        description: "geometric-interval LP (parameter ε) + derandomized Stretch",
        caps: LP_ANY,
        build: |p| {
            Box::new(DerandSolver {
                relaxation: Relaxation::Interval { epsilon: p.epsilon },
            })
        },
    },
    AlgorithmEntry {
        name: "interval-heuristic",
        kind: AlgoKind::LpRounding,
        description: "geometric-interval LP (Appendix A, parameter ε) + the λ=1 heuristic",
        caps: LP_ANY,
        build: |p| {
            pipeline(
                Relaxation::Interval { epsilon: p.epsilon },
                Algorithm::LpHeuristic,
                p,
            )
        },
    },
    AlgorithmEntry {
        name: "interval-stretch",
        kind: AlgoKind::LpRounding,
        description: "geometric-interval LP (parameter ε) + Stretch with sampled λ",
        caps: LP_ANY,
        build: |p| {
            pipeline(
                Relaxation::Interval { epsilon: p.epsilon },
                Algorithm::Stretch {
                    samples: p.samples,
                    seed: p.seed,
                },
                p,
            )
        },
    },
    AlgorithmEntry {
        name: "interval-fixed-lambda",
        kind: AlgoKind::LpRounding,
        description: "geometric-interval LP (parameter ε) + Stretch at one fixed λ",
        caps: LP_ANY,
        build: |p| {
            pipeline(
                Relaxation::Interval { epsilon: p.epsilon },
                Algorithm::FixedLambda(p.lambda),
                p,
            )
        },
    },
    AlgorithmEntry {
        name: "jahanjou",
        kind: AlgoKind::LpRounding,
        description:
            "Jahanjou et al. (SPAA 2017): interval LP at ε=0.5436 + strict α-point batches",
        caps: Capabilities {
            routing: RoutingSupport::SinglePathOnly,
            weighted: true,
            lp_based: true,
            lp_free: false,
            deadline_aware: false,
        },
        build: |p| {
            Box::new(JahanjouSolver {
                config: crate::jahanjou::JahanjouConfig {
                    epsilon: p.jahanjou_epsilon,
                    alpha: p.alpha,
                    ..Default::default()
                },
            })
        },
    },
    AlgorithmEntry {
        name: "jahanjou-wc",
        kind: AlgoKind::LpRounding,
        description: "Jahanjou et al. with work-conserving (non-barrier) α-point batches",
        caps: Capabilities {
            routing: RoutingSupport::SinglePathOnly,
            weighted: true,
            lp_based: true,
            lp_free: false,
            deadline_aware: false,
        },
        build: |p| {
            Box::new(JahanjouSolver {
                config: crate::jahanjou::JahanjouConfig {
                    epsilon: p.jahanjou_epsilon,
                    alpha: p.alpha,
                    mode: crate::jahanjou::BatchMode::WorkConserving,
                },
            })
        },
    },
    AlgorithmEntry {
        name: "terra",
        kind: AlgoKind::Hybrid,
        description: "Terra offline (You & Chowdhury): per-coflow CCT LPs + SRTF, unweighted",
        caps: Capabilities {
            routing: RoutingSupport::FreePathOnly,
            weighted: false,
            lp_based: true,
            lp_free: false,
            deadline_aware: false,
        },
        build: |_| Box::new(TerraSolver),
    },
    AlgorithmEntry {
        name: "primal-dual",
        kind: AlgoKind::LpFree,
        description: "Ahmadi et al. / Sincronia BSSI ordering on the edge-machine open shop",
        caps: Capabilities {
            routing: RoutingSupport::SinglePathOnly,
            weighted: true,
            lp_based: false,
            lp_free: true,
            deadline_aware: false,
        },
        build: |_| Box::new(PrimalDualSolver),
    },
    AlgorithmEntry {
        name: "sincronia",
        kind: AlgoKind::LpFree,
        description: "Sincronia BSSI on routing-agnostic port loads + greedy rate filling",
        caps: Capabilities {
            routing: RoutingSupport::Any,
            weighted: true,
            lp_based: false,
            lp_free: true,
            deadline_aware: false,
        },
        build: |_| Box::new(OrderingSolver::sincronia()),
    },
    AlgorithmEntry {
        name: "dcoflow-min-link",
        kind: AlgoKind::LpFree,
        description: "DCoflow (Luu et al.): deadline admission, min-link victim rule",
        caps: Capabilities {
            routing: RoutingSupport::Any,
            weighted: false,
            lp_based: false,
            lp_free: true,
            deadline_aware: true,
        },
        build: |_| Box::new(OrderingSolver::dcoflow(DcoflowVariant::MinLink)),
    },
    AlgorithmEntry {
        name: "dcoflow-min-sum-neg",
        kind: AlgoKind::LpFree,
        description: "DCoflow: deadline admission, min-sum-negative-slack victim rule",
        caps: Capabilities {
            routing: RoutingSupport::Any,
            weighted: false,
            lp_based: false,
            lp_free: true,
            deadline_aware: true,
        },
        build: |_| Box::new(OrderingSolver::dcoflow(DcoflowVariant::MinSumNegative)),
    },
    AlgorithmEntry {
        name: "sjf",
        kind: AlgoKind::LpFree,
        description: "shortest-job-first greedy (RAPIER-style), total demand ascending",
        caps: Capabilities {
            routing: RoutingSupport::Any,
            weighted: false,
            lp_based: false,
            lp_free: true,
            deadline_aware: false,
        },
        build: |_| Box::new(SmithGreedySolver { weighted: false }),
    },
    AlgorithmEntry {
        name: "weighted-sjf",
        kind: AlgoKind::LpFree,
        description: "weighted SJF: Smith-ratio (weight/demand) greedy ordering",
        caps: Capabilities {
            routing: RoutingSupport::Any,
            weighted: true,
            lp_based: false,
            lp_free: true,
            deadline_aware: false,
        },
        build: |_| Box::new(SmithGreedySolver { weighted: true }),
    },
    AlgorithmEntry {
        name: "online",
        kind: AlgoKind::Online,
        description: "event-driven online re-solver: fresh LP + λ=1 rounding at each arrival",
        caps: LP_ANY,
        build: |p| Box::new(OnlineSolver { cold: p.cold }),
    },
    AlgorithmEntry {
        name: "batch-online",
        kind: AlgoKind::Online,
        description: "doubling-batch online framework: offline solves at boundaries 1, 2, 4, …",
        caps: LP_ANY,
        build: |p| Box::new(BatchOnlineSolver { cold: p.cold }),
    },
];

/// All registered algorithms, in presentation order.
pub fn all() -> &'static [AlgorithmEntry] {
    ENTRIES
}

/// Looks up one algorithm by its registry name.
pub fn by_name(name: &str) -> Option<&'static AlgorithmEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// Convenience: look up and construct in one step.
pub fn build(name: &str, params: &AlgoParams) -> Option<Box<dyn CoflowSolver>> {
    by_name(name).map(|e| e.build(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_lookup_works() {
        let mut names: Vec<&str> = ENTRIES.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len(), "duplicate registry names");
        for e in all() {
            assert!(by_name(e.name).is_some(), "{} not found", e.name);
            assert!(!e.description.is_empty());
        }
        assert!(by_name("no-such-algorithm").is_none());
    }

    #[test]
    fn sjf_flavours_share_one_implementation() {
        // Both names must construct (the dedup satellite: one
        // parameterized solver registered twice).
        let p = AlgoParams::default();
        assert!(build("sjf", &p).is_some());
        assert!(build("weighted-sjf", &p).is_some());
        assert!(!by_name("sjf").unwrap().caps.weighted);
        assert!(by_name("weighted-sjf").unwrap().caps.weighted);
    }

    #[test]
    fn params_reach_the_constructed_solvers() {
        use coflow_core::model::{Coflow, Flow};
        use coflow_core::routing::Routing;
        use coflow_core::solve::SolveContext;
        use coflow_netgraph::topology;

        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = coflow_core::model::CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v0, v1, 2.0)]),
                Coflow::new(vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let p = AlgoParams {
            samples: 3,
            ..Default::default()
        };
        let mut ctx = SolveContext::new();
        let out = build("stretch", &p)
            .unwrap()
            .solve(&inst, &Routing::FreePath, &mut ctx)
            .unwrap();
        assert_eq!(out.sweep.expect("stretch sweeps").samples.len(), 3);
    }
}
