//! The Terra offline baseline (You & Chowdhury, arXiv:1904.08480).
//!
//! Paper §6.2: *"It calculates the time for each single coflow to finish
//! individually, and then schedules with SRTF (shortest remaining time
//! first). Instead of one large LP like all other algorithms compared
//! here, this algorithm solves a large number of LPs, twice the number
//! of coflow jobs."* Terra "only works for the unweighted case".
//!
//! Reproduction:
//!
//! 1. **Standalone CCT** — for each coflow alone on the network, the
//!    minimum completion time equals `1/θ*` where `θ*` is the maximum
//!    concurrent-flow throughput (all flows shipping `θ·σ_i`
//!    simultaneously). One small LP per coflow; single-flow coflows take
//!    the max-flow shortcut (`CCT = σ / maxflow`), cross-checked against
//!    the LP in tests.
//! 2. **SRTF sweep** — slot-by-slot work-conserving allocation where
//!    each slot's priority order is ascending *remaining* time,
//!    estimated as `CCT_j × max_i(remaining_i/σ_i)` (under the
//!    standalone-optimal allocation all flows of a coflow finish
//!    together, so the slowest flow's remaining fraction scales the
//!    standalone time).
//!
//! Terra in the paper works at millisecond granularity without slots;
//! our slotted discretization is the same one all other algorithms use,
//! so comparisons stay apples-to-apples.

use coflow_core::greedy::SlotAllocator;
use coflow_core::model::{Coflow, CoflowInstance};
use coflow_core::routing::Routing;
use coflow_core::schedule::Schedule;
use coflow_core::solve::{CoflowSolver, SolveContext, SolveOutcome};
use coflow_core::CoflowError;
use coflow_lp::{Cmp, Model, Sense, SolverOptions, VarId};
use coflow_netgraph::{maxflow, Graph};

/// Result of the Terra baseline.
#[derive(Clone, Debug)]
pub struct TerraOutcome {
    /// The feasible slotted schedule.
    pub schedule: Schedule,
    /// Standalone minimum completion time per coflow (continuous,
    /// in slots).
    pub standalone_cct: Vec<f64>,
}

/// Runs Terra's offline algorithm in the free-path model with default
/// LP options.
///
/// # Errors
///
/// Propagates LP failures from the per-coflow CCT computations and
/// allocator errors from the SRTF sweep.
pub fn terra_offline(inst: &CoflowInstance) -> Result<TerraOutcome, CoflowError> {
    terra_offline_with(inst, &SolverOptions::default())
}

/// [`terra_offline`] with explicit LP solver options — the registry path
/// uses the context's configured options, so `--lp-*` knobs reach the
/// per-coflow concurrent-flow LPs like every other algorithm.
///
/// # Errors
///
/// Propagates LP failures from the per-coflow CCT computations and
/// allocator errors from the SRTF sweep.
pub fn terra_offline_with(
    inst: &CoflowInstance,
    lp_opts: &SolverOptions,
) -> Result<TerraOutcome, CoflowError> {
    let routing = Routing::FreePath;
    let standalone_cct: Vec<f64> = inst
        .coflows
        .iter()
        .map(|cf| standalone_cct_with(&inst.graph, cf, lp_opts))
        .collect::<Result<_, _>>()?;

    let mut alloc = SlotAllocator::new(inst, &routing)?;
    let n = inst.num_coflows();
    let mut order: Vec<usize> = (0..n).collect();
    while !alloc.is_done() {
        // Remaining-time estimate per coflow; finished ones sink to the
        // end so the allocator skips them cheaply.
        let remaining_time: Vec<f64> = (0..n)
            .map(|j| {
                let cf = &inst.coflows[j];
                let frac = cf
                    .flows
                    .iter()
                    .enumerate()
                    .map(|(i, f)| alloc.flow_remaining(j, i) / f.demand)
                    .fold(0.0f64, f64::max);
                if frac <= 0.0 {
                    f64::INFINITY
                } else {
                    standalone_cct[j] * frac
                }
            })
            .collect();
        order.sort_by(|&a, &b| {
            remaining_time[a]
                .partial_cmp(&remaining_time[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        alloc.step(&order)?;
    }
    Ok(TerraOutcome {
        schedule: alloc.finish(),
        standalone_cct,
    })
}

/// Terra as a [`CoflowSolver`] (free-path only; unweighted by design —
/// compare on `unweighted_cost`). No single big LP is solved, so the
/// outcome carries no lower bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct TerraSolver;

impl CoflowSolver for TerraSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        if !matches!(routing, Routing::FreePath) {
            return Err(CoflowError::BadRouting(
                "Terra's offline algorithm applies to the free path model".into(),
            ));
        }
        let run = terra_offline_with(inst, ctx.lp_options())?;
        SolveOutcome::from_schedule(inst, routing, run.schedule, ctx.tolerance())
    }
}

/// Minimum standalone completion time of one coflow (continuous slots):
/// `1/θ*` with `θ*` the maximum concurrent-flow value.
///
/// # Errors
///
/// [`CoflowError::Lp`] if the concurrent-flow LP fails (cannot happen
/// for validated instances).
pub fn standalone_cct(g: &Graph, cf: &Coflow) -> Result<f64, CoflowError> {
    standalone_cct_with(g, cf, &SolverOptions::default())
}

/// [`standalone_cct`] with explicit LP solver options.
///
/// # Errors
///
/// [`CoflowError::Lp`] if the concurrent-flow LP fails (cannot happen
/// for validated instances).
pub fn standalone_cct_with(
    g: &Graph,
    cf: &Coflow,
    lp_opts: &SolverOptions,
) -> Result<f64, CoflowError> {
    if cf.flows.len() == 1 {
        let f = &cf.flows[0];
        let mf = maxflow::max_flow(g, f.src, f.dst);
        if mf.value <= 0.0 {
            return Err(CoflowError::Lp("flow has zero max-flow".into()));
        }
        return Ok(f.demand / mf.value);
    }
    let theta = max_concurrent_flow(g, cf, lp_opts)?;
    if theta <= 0.0 {
        return Err(CoflowError::Lp("zero concurrent-flow throughput".into()));
    }
    Ok(1.0 / theta)
}

/// Solves `max θ` s.t. simultaneous flows of value `θ·σ_i` fit in the
/// capacities (the classic maximum concurrent flow LP).
fn max_concurrent_flow(
    g: &Graph,
    cf: &Coflow,
    lp_opts: &SolverOptions,
) -> Result<f64, CoflowError> {
    let mut model = Model::new(Sense::Maximize);
    let theta = model.add_var("theta", 0.0, f64::INFINITY, 1.0);
    // Per flow, per edge rate variables.
    let nf = cf.flows.len();
    let mut rate: Vec<Vec<VarId>> = Vec::with_capacity(nf);
    for i in 0..nf {
        rate.push(
            (0..g.edge_count())
                .map(|e| model.add_var(format!("r{i}e{e}"), 0.0, f64::INFINITY, 0.0))
                .collect(),
        );
    }
    for (i, f) in cf.flows.iter().enumerate() {
        for v in g.nodes() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &e in g.out_edges(v) {
                terms.push((rate[i][e.index()], 1.0));
            }
            for &e in g.in_edges(v) {
                terms.push((rate[i][e.index()], -1.0));
            }
            if v == f.src {
                terms.push((theta, -f.demand));
                model.add_constraint(terms, Cmp::Eq, 0.0);
            } else if v == f.dst {
                terms.push((theta, f.demand));
                model.add_constraint(terms, Cmp::Eq, 0.0);
            } else {
                model.add_constraint(terms, Cmp::Eq, 0.0);
            }
        }
    }
    for e in g.edges() {
        let terms: Vec<(VarId, f64)> = (0..nf).map(|i| (rate[i][e.id.index()], 1.0)).collect();
        model.add_constraint(terms, Cmp::Le, e.capacity);
    }
    let sol = model
        .solve_with(lp_opts)
        .map_err(|e| CoflowError::Lp(format!("concurrent flow LP: {e}")))?;
    Ok(sol.objective)
}

/// Exposes the generic concurrent-flow machinery for tests and other
/// baselines: CCT of a synthetic coflow built from explicit flows.
pub fn concurrent_throughput(g: &Graph, cf: &Coflow) -> Result<f64, CoflowError> {
    max_concurrent_flow(g, cf, &SolverOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_core::model::Flow;
    use coflow_core::validate::{validate, Tolerance};
    use coflow_netgraph::topology;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_flow_cct_is_demand_over_maxflow() {
        let inst = fig2_instance();
        // Blue coflow: demand 3, max-flow 3 -> CCT 1.
        let cct = standalone_cct(&inst.graph, &inst.coflows[3]).unwrap();
        assert!((cct - 1.0).abs() < 1e-9);
        // Unit coflows: demand 1, max-flow from v1 is 2 (direct v1->t
        // plus one detour through s; the v1->s edge of capacity 1 caps
        // all detours) -> CCT = 1/2.
        let cct = standalone_cct(&inst.graph, &inst.coflows[0]).unwrap();
        assert!((cct - 0.5).abs() < 1e-9, "cct {cct}");
    }

    #[test]
    fn concurrent_lp_matches_maxflow_shortcut() {
        let inst = fig2_instance();
        for cf in &inst.coflows {
            let lp_theta = concurrent_throughput(&inst.graph, cf).unwrap();
            let f = &cf.flows[0];
            let mf = maxflow::max_flow(&inst.graph, f.src, f.dst);
            // Single-flow coflows: θ* = maxflow / σ.
            assert!(
                (lp_theta - mf.value / f.demand).abs() < 1e-6,
                "θ {lp_theta} vs {}",
                mf.value / f.demand
            );
        }
    }

    #[test]
    fn multi_flow_cct_respects_shared_bottleneck() {
        // Two flows both exiting s: s->v1->t and s->v2->t, each demand 1;
        // s's egress is 3 but each relay path carries 1... the two flows
        // use disjoint relays, so both finish in 1 slot: θ=1, CCT=1.
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let cf = Coflow::new(vec![Flow::new(s, t, 1.5), Flow::new(s, t, 1.5)]);
        let cct = standalone_cct(&g, &cf).unwrap();
        // Combined demand 3 over a min-cut of 3 -> CCT = 1.
        assert!((cct - 1.0).abs() < 1e-6, "cct {cct}");
    }

    #[test]
    fn terra_matches_fig4_on_the_example() {
        let inst = fig2_instance();
        let out = terra_offline(&inst).unwrap();
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &out.schedule,
            Tolerance::default(),
        )
        .unwrap();
        // SRTF: three unit coflows (CCT 1/3) go first and finish in slot
        // 1; blue finishes in slot 2 -> total completion 5 (Figure 4).
        assert_eq!(rep.completions.unweighted_total, 5.0);
    }

    #[test]
    fn terra_respects_releases() {
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::released(v0, v1, 1.0, 2)]),
                Coflow::new(vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let out = terra_offline(&inst).unwrap();
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &out.schedule,
            Tolerance::default(),
        )
        .unwrap();
        assert_eq!(rep.completions.per_coflow, vec![3, 1]);
    }
}
