//! LP-free combinatorial coflow ordering — the primal-dual / BSSI
//! family the paper's related work highlights.
//!
//! §1.1: "a very simple primal-dual framework is proposed by Ahmadi et
//! al. \[2\], and this yields a very practical combinatorial algorithm
//! for the problem without requiring the need to solve an LP.
//! Furthermore, in recent work, a system called Sincronia \[1\] was also
//! developed
//! based on the primal-dual method." Both operate on the big-switch
//! model; this module ports the idea to the paper's graph setting.
//!
//! A single-path coflow instance induces a **concurrent open shop on the
//! edges**: every edge `e` is a machine of speed `c(e)`, and coflow `j`
//! needs `p_{j,e} = Σ_{flows i of j with e ∈ p_i} σ_i / c(e)` time units
//! on it. The primal-dual ordering (Sincronia's
//! bottleneck-select-scale-iterate, equivalently the dual-fitting view
//! of Ahmadi et al.) builds a permutation **from the back**:
//!
//! 1. find the bottleneck machine `b` (largest remaining load);
//! 2. among unscheduled jobs using `b`, pick `j*` minimizing
//!    `w̃_j / p_{j,b}` (the cheapest weight per unit of bottleneck
//!    work) and place it *last*;
//! 3. scale the survivors' residual weights,
//!    `w̃_j ← w̃_j − w̃_{j*} · p_{j,b} / p_{j*,b}` — the dual-payment
//!    step that keeps the final order provably near-optimal;
//! 4. repeat on the remaining jobs.
//!
//! The permutation then drives the work-conserving greedy allocator
//! ([`coflow_core::greedy::greedy_schedule`]), which is order-preserving
//! in Sincronia's sense: a coflow's rate is only throttled by
//! higher-priority coflows.
//!
//! No LP is ever built — this baseline runs in `O(n·(n + m))` after the
//! load matrix, making it the cheap reference point against the paper's
//! LP-based methods in the benches.

use crate::openshop::OpenShopInstance;
use coflow_core::greedy::greedy_schedule;
use coflow_core::model::CoflowInstance;
use coflow_core::routing::Routing;
use coflow_core::schedule::Schedule;
use coflow_core::solve::{CoflowSolver, SolveContext, SolveOutcome};
use coflow_core::CoflowError;

/// Load below which a job is treated as absent from a machine.
const LOAD_EPS: f64 = 1e-12;

/// The primal-dual / BSSI permutation for an explicit load matrix
/// (`loads[j][i]` = time job `j` needs on machine `i`). Returns job
/// indices from highest to lowest priority.
///
/// Exposed for direct concurrent-open-shop use; coflow callers want
/// [`bssi_order`] or [`primal_dual`].
pub fn bssi_loads(loads: &[Vec<f64>], weights: &[f64]) -> Vec<usize> {
    let n = loads.len();
    assert_eq!(n, weights.len(), "one weight per job");
    if n == 0 {
        return Vec::new();
    }
    let m = loads[0].len();
    debug_assert!(loads.iter().all(|row| row.len() == m));

    let mut unscheduled: Vec<bool> = vec![true; n];
    let mut wt: Vec<f64> = weights.to_vec();
    let mut load: Vec<f64> = vec![0.0; m];
    for row in loads {
        for (l, &p) in load.iter_mut().zip(row) {
            *l += p;
        }
    }
    let mut order = vec![0usize; n];
    for pos in (0..n).rev() {
        // Bottleneck machine (ties → smallest index, deterministic).
        let b = load
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite loads"))
            .map_or(0, |(i, _)| i);
        // Cheapest residual weight per unit of bottleneck work.
        let mut jstar = usize::MAX;
        let mut best = f64::INFINITY;
        for j in 0..n {
            if !unscheduled[j] || loads[j][b] <= LOAD_EPS {
                continue;
            }
            let ratio = wt[j] / loads[j][b];
            if ratio < best - 1e-15 {
                best = ratio;
                jstar = j;
            }
        }
        if jstar == usize::MAX {
            // Degenerate: nothing uses the bottleneck (all remaining
            // loads ~ zero). Place any unscheduled job; no dual payment.
            jstar = (0..n).find(|&j| unscheduled[j]).expect("pos in range");
        } else {
            let scale = wt[jstar] / loads[jstar][b];
            for j in 0..n {
                if unscheduled[j] && j != jstar {
                    wt[j] = (wt[j] - scale * loads[j][b]).max(0.0);
                }
            }
        }
        order[pos] = jstar;
        unscheduled[jstar] = false;
        for (l, &p) in load.iter_mut().zip(&loads[jstar]) {
            *l -= p;
        }
    }
    order
}

/// BSSI on a concurrent open shop instance (unit-speed machines).
pub fn bssi_openshop_order(os: &OpenShopInstance) -> Vec<usize> {
    let loads: Vec<Vec<f64>> = os.jobs.iter().map(|j| j.processing.clone()).collect();
    let weights: Vec<f64> = os.jobs.iter().map(|j| j.weight).collect();
    bssi_loads(&loads, &weights)
}

/// The primal-dual coflow priority order for a single-path instance:
/// edges as machines, `σ / c(e)` as processing times.
///
/// # Errors
///
/// [`CoflowError::BadRouting`] when `routing` is not
/// [`Routing::SinglePath`] or does not match the instance — the induced
/// open shop needs fixed paths.
pub fn bssi_order(inst: &CoflowInstance, routing: &Routing) -> Result<Vec<usize>, CoflowError> {
    routing.validate(inst)?;
    let Routing::SinglePath(paths) = routing else {
        return Err(CoflowError::BadRouting(
            "primal-dual ordering needs fixed paths (single path model)".into(),
        ));
    };
    let g = &inst.graph;
    let m = g.edge_count();
    let mut loads: Vec<Vec<f64>> = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let mut row = vec![0.0; m];
        for (i, f) in cf.flows.iter().enumerate() {
            for &e in paths[j][i].edges() {
                row[e.index()] += f.demand / g.capacity(e);
            }
        }
        loads.push(row);
    }
    let weights: Vec<f64> = inst.coflows.iter().map(|c| c.weight).collect();
    Ok(bssi_loads(&loads, &weights))
}

/// End-to-end primal-dual baseline: BSSI ordering followed by the
/// work-conserving greedy allocation (order-preserving rates).
///
/// # Errors
///
/// Routing mismatches ([`bssi_order`]) or allocator stalls.
pub fn primal_dual(inst: &CoflowInstance, routing: &Routing) -> Result<Schedule, CoflowError> {
    let order = bssi_order(inst, routing)?;
    greedy_schedule(inst, routing, &order)
}

/// The primal-dual baseline as a [`CoflowSolver`] (single-path only; no
/// LP, so the outcome carries no lower bound).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrimalDualSolver;

impl CoflowSolver for PrimalDualSolver {
    fn solve(
        &self,
        inst: &CoflowInstance,
        routing: &Routing,
        ctx: &mut SolveContext,
    ) -> Result<SolveOutcome, CoflowError> {
        let schedule = primal_dual(inst, routing)?;
        SolveOutcome::from_schedule(inst, routing, schedule, ctx.tolerance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openshop::{exact_optimum, to_coflow_instance, OpenShopInstance, OpenShopJob};
    use coflow_core::model::{Coflow, Flow};
    use coflow_core::timeidx::solve_time_indexed;
    use coflow_core::validate::{validate, Tolerance};
    use coflow_lp::SolverOptions;
    use coflow_netgraph::{topology, Path};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_machine_reduces_to_smith_rule() {
        // On one machine the optimum is Smith's rule (descending w/p);
        // the primal-dual order must match it exactly.
        let os = OpenShopInstance::new(
            1,
            vec![
                OpenShopJob {
                    weight: 1.0,
                    processing: vec![4.0],
                }, // w/p = 0.25
                OpenShopJob {
                    weight: 6.0,
                    processing: vec![3.0],
                }, // w/p = 2.0
                OpenShopJob {
                    weight: 2.0,
                    processing: vec![2.0],
                }, // w/p = 1.0
            ],
        )
        .unwrap();
        let order = bssi_openshop_order(&os);
        assert_eq!(order, vec![1, 2, 0]);
        let (opt, _) = exact_optimum(&os);
        assert!((os.permutation_cost(&order) - opt).abs() < 1e-9);
    }

    #[test]
    fn within_factor_two_of_exact_on_random_openshops() {
        // Ahmadi et al.'s primal-dual is a 2-approximation for
        // concurrent open shop; check the ratio empirically against the
        // brute-force optimum on tiny random instances.
        let mut rng = StdRng::seed_from_u64(2017); // IPCO year
        let mut worst: f64 = 1.0;
        for trial in 0..60 {
            let os = OpenShopInstance::random(&mut rng, 4, 6, 5, 0.3, true);
            let order = bssi_openshop_order(&os);
            let cost = os.permutation_cost(&order);
            let (opt, _) = exact_optimum(&os);
            let ratio = cost / opt;
            worst = worst.max(ratio);
            assert!(
                ratio <= 2.0 + 1e-9,
                "trial {trial}: primal-dual {cost} vs optimum {opt} (ratio {ratio})"
            );
        }
        // The test has teeth only if the instances are not all trivially
        // solved to optimality.
        assert!(worst > 1.0, "every instance solved exactly — suspicious");
    }

    #[test]
    fn order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let os = OpenShopInstance::random(&mut rng, 3, 8, 6, 0.4, true);
            let mut order = bssi_openshop_order(&os);
            order.sort_unstable();
            assert_eq!(order, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn coflow_order_matches_openshop_order_through_the_gadget() {
        // The §5 gadget has unit capacities, so the induced edge-machine
        // open shop is the original one; orders must agree.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let os = OpenShopInstance::random(&mut rng, 3, 5, 4, 0.3, true);
            let (inst, routing) = to_coflow_instance(&os).unwrap();
            let via_coflow = bssi_order(&inst, &routing).unwrap();
            let via_openshop = bssi_openshop_order(&os);
            assert_eq!(via_coflow, via_openshop);
        }
    }

    #[test]
    fn capacity_normalization_prefers_the_faster_edge_job() {
        // Same demand, but one job's path has double capacity: its
        // processing time is half, so (equal weights) it runs first.
        let mut b = coflow_netgraph::GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_edge(a, c, 2.0).unwrap(); // fast edge
        b.add_edge(a, d, 1.0).unwrap(); // slow edge
        let g = b.build();
        let inst = CoflowInstance::new(
            g.clone(),
            vec![
                Coflow::weighted(1.0, vec![Flow::new(a, d, 4.0)]), // slow: p = 4
                Coflow::weighted(1.0, vec![Flow::new(a, c, 4.0)]), // fast: p = 2
            ],
        )
        .unwrap();
        let routing = Routing::SinglePath(vec![
            vec![Path::from_nodes(&g, &[a, d]).unwrap()],
            vec![Path::from_nodes(&g, &[a, c]).unwrap()],
        ]);
        let order = bssi_order(&inst, &routing).unwrap();
        assert_eq!(order, vec![1, 0], "shorter processing time goes first");
    }

    #[test]
    fn schedule_validates_and_respects_lp_bound() {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        let inst = CoflowInstance::new(
            g.clone(),
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap();
        let mk = |nodes: &[coflow_netgraph::NodeId]| Path::from_nodes(&g, nodes).unwrap();
        let routing = Routing::SinglePath(vec![
            vec![mk(&[v1, t])],
            vec![mk(&[v2, t])],
            vec![mk(&[v3, t])],
            vec![mk(&[s, v2, t])],
        ]);
        let sched = primal_dual(&inst, &routing).unwrap();
        let rep = validate(&inst, &routing, &sched, Tolerance::default()).unwrap();
        let lp = solve_time_indexed(&inst, &routing, 8, &SolverOptions::default()).unwrap();
        assert!(rep.completions.weighted_total >= lp.objective - 1e-6);
        // Figure 3's optimum is 7; a sane combinatorial baseline should
        // land well within twice that.
        assert!(
            rep.completions.weighted_total <= 14.0 + 1e-9,
            "cost {}",
            rep.completions.weighted_total
        );
    }

    #[test]
    fn free_path_routing_is_rejected() {
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(v0, v1, 1.0)])]).unwrap();
        assert!(matches!(
            primal_dual(&inst, &Routing::FreePath),
            Err(CoflowError::BadRouting(_))
        ));
    }

    #[test]
    fn dual_payments_zero_out_weights_safely() {
        // Identical jobs: after placing one last, the other's residual
        // weight hits exactly zero; the algorithm must stay stable and
        // produce a valid permutation.
        let os = OpenShopInstance::new(
            2,
            vec![
                OpenShopJob {
                    weight: 3.0,
                    processing: vec![2.0, 1.0],
                },
                OpenShopJob {
                    weight: 3.0,
                    processing: vec![2.0, 1.0],
                },
                OpenShopJob {
                    weight: 3.0,
                    processing: vec![2.0, 1.0],
                },
            ],
        )
        .unwrap();
        let mut order = bssi_openshop_order(&os);
        let cost = os.permutation_cost(&order);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
        // Identical jobs: any order is optimal.
        let (opt, _) = exact_optimum(&os);
        assert!((cost - opt).abs() < 1e-9);
    }
}
