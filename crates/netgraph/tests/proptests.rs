//! Property-based tests for the graph substrate.

use coflow_netgraph::ksp::{k_shortest_paths, PathCost};
use coflow_netgraph::maxflow::max_flow;
use coflow_netgraph::shortest::{bfs_distances, ShortestPathDag};
use coflow_netgraph::{topology, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_topology(seed: u64, n: usize, extra: usize) -> topology::Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    topology::random_connected(n, extra, (1.0, 20.0), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-flow satisfies conservation and capacity on random graphs,
    /// and never exceeds the source's out-capacity or sink's in-capacity.
    #[test]
    fn maxflow_is_a_feasible_flow(seed in 0u64..5000, n in 3usize..12, extra in 0usize..8) {
        let topo = random_topology(seed, n, extra);
        let g = &topo.graph;
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(n - 1);
        let mf = max_flow(g, s, t);
        // Capacity.
        for e in g.edges() {
            let f = mf.edge_flow[e.id.index()];
            prop_assert!(f >= -1e-9 && f <= e.capacity + 1e-9);
        }
        // Conservation.
        for v in g.nodes() {
            let out: f64 = g.out_edges(v).iter().map(|&e| mf.edge_flow[e.index()]).sum();
            let inn: f64 = g.in_edges(v).iter().map(|&e| mf.edge_flow[e.index()]).sum();
            let expect = if v == s { mf.value } else if v == t { -mf.value } else { 0.0 };
            prop_assert!((out - inn - expect).abs() < 1e-6);
        }
        // Trivial cut bounds.
        let out_cap: f64 = g.out_edges(s).iter().map(|&e| g.capacity(e)).sum();
        let in_cap: f64 = g.in_edges(t).iter().map(|&e| g.capacity(e)).sum();
        prop_assert!(mf.value <= out_cap + 1e-9);
        prop_assert!(mf.value <= in_cap + 1e-9);
    }

    /// The shortest-path DAG's sampled paths are shortest and its count
    /// matches explicit enumeration on small graphs.
    #[test]
    fn dag_count_matches_enumeration(seed in 0u64..5000, n in 3usize..9, extra in 0usize..6) {
        let topo = random_topology(seed, n, extra);
        let g = &topo.graph;
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(n - 1);
        let Ok(dag) = ShortestPathDag::new(g, s, t) else { return Ok(()); };
        let dist = bfs_distances(g, s)[t.index()].expect("reachable");
        let all = dag.enumerate(g, 10_000);
        prop_assert_eq!(all.len() as u128, dag.path_count());
        for p in &all {
            prop_assert_eq!(p.len() as u32, dist);
        }
        // A sampled path is one of the enumerated ones.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let sample = dag.sample_uniform(g, &mut rng);
        prop_assert!(all.contains(&sample));
    }

    /// Yen's paths are simple, distinct, sorted by length, and start
    /// with the BFS-shortest length.
    #[test]
    fn yen_properties(seed in 0u64..5000, n in 3usize..10, extra in 0usize..8, k in 1usize..6) {
        let topo = random_topology(seed, n, extra);
        let g = &topo.graph;
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(n - 1);
        let Ok(paths) = k_shortest_paths(g, s, t, k, PathCost::Hops) else { return Ok(()); };
        prop_assert!(!paths.is_empty() && paths.len() <= k);
        let dist = bfs_distances(g, s)[t.index()].expect("reachable");
        prop_assert_eq!(paths[0].len() as u32, dist);
        let mut seen = std::collections::HashSet::new();
        for w in paths.windows(2) {
            prop_assert!(w[0].len() <= w[1].len());
        }
        for p in &paths {
            prop_assert!(seen.insert(p.edges().to_vec()), "duplicate path");
            prop_assert_eq!(p.source(g), s);
            prop_assert_eq!(p.dest(g), t);
            // Simplicity: node count == hop count + 1 and all distinct.
            let nodes = p.nodes(g);
            let set: std::collections::HashSet<_> = nodes.iter().collect();
            prop_assert_eq!(set.len(), nodes.len());
        }
    }

    /// The I/O gadget never increases reachable throughput and enforces
    /// the configured cap exactly when it binds.
    #[test]
    fn gadget_caps_throughput(seed in 0u64..5000, n in 3usize..8, cap in 0.5f64..4.0) {
        use coflow_netgraph::gadget::{with_io_gadget, IoLimit};
        let topo = random_topology(seed, n, n);
        let g = &topo.graph;
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(n - 1);
        let base = max_flow(g, s, t).value;
        let limits = vec![IoLimit::symmetric(cap); g.node_count()];
        let gg = with_io_gadget(g, &limits);
        let gated = max_flow(&gg.graph, gg.inner[s.index()], gg.inner[t.index()]).value;
        prop_assert!(gated <= base + 1e-9);
        prop_assert!(gated <= cap + 1e-9);
        prop_assert!((gated - base.min(cap)).abs() < 1e-6,
            "expected min(maxflow={base}, cap={cap}), got {gated}");
    }

    /// Every random-generator output is strongly connected and carries
    /// positive finite capacities, for arbitrary seeds and parameters.
    #[test]
    fn generators_always_produce_usable_wans(seed in 0u64..5000, n in 2usize..25,
                                             p in 0.0f64..1.0, alpha in 0.05f64..1.0,
                                             beta in 0.05f64..1.0) {
        use coflow_netgraph::random::{gnp, waxman, WaxmanParams};
        let mut rng = StdRng::seed_from_u64(seed);
        let er = gnp(n, p, (0.5, 8.0), &mut rng);
        prop_assert!(er.graph.is_strongly_connected());
        let (wax, coords) = waxman(n, WaxmanParams { alpha, beta, cap_range: (0.5, 8.0) },
                                   &mut rng);
        prop_assert!(wax.graph.is_strongly_connected());
        prop_assert_eq!(coords.len(), n);
        for t in [&er, &wax] {
            for e in t.graph.edges() {
                prop_assert!(e.capacity.is_finite() && e.capacity > 0.0);
            }
            // Bi-directed by construction: every edge has a reverse.
            for e in t.graph.edges() {
                prop_assert!(t.graph.find_edge(e.dst, e.src).is_some());
            }
        }
    }
}
