//! Error types for graph construction and routing.

use crate::graph::NodeId;
use std::fmt;

/// Errors raised by graph construction and path/routing utilities.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// An endpoint does not belong to the graph being built.
    UnknownNode,
    /// Edge capacity must be finite and strictly positive.
    BadCapacity(f64),
    /// Self-loops are rejected; they cannot carry coflow traffic.
    SelfLoop(NodeId),
    /// No path exists between the requested endpoints.
    NoPath {
        /// Requested source.
        src: NodeId,
        /// Requested destination.
        dst: NodeId,
    },
    /// A path failed validation (non-adjacent consecutive nodes, wrong
    /// endpoints, or an edge that does not exist in the graph).
    InvalidPath(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode => write!(f, "node does not belong to this graph"),
            GraphError::BadCapacity(c) => {
                write!(f, "edge capacity must be finite and positive, got {c}")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v:?} rejected"),
            GraphError::NoPath { src, dst } => {
                write!(f, "no path from {src:?} to {dst:?}")
            }
            GraphError::InvalidPath(msg) => write!(f, "invalid path: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
