//! Dinic's maximum-flow algorithm over the capacitated digraph.
//!
//! Used by the Terra baseline (standalone completion time of a
//! *single-flow* coflow is `demand / maxflow(src, dst)`), by instance
//! sanity checks (every flow must be routable), and by the free-path
//! schedule validator as an independent feasibility oracle.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// Numerical tolerance below which residual capacity counts as zero.
const EPS: f64 = 1e-12;

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct MaxFlow {
    /// Total flow value shipped from source to sink.
    pub value: f64,
    /// Flow on each original edge, indexed by [`EdgeId::index`].
    pub edge_flow: Vec<f64>,
}

struct Arc {
    to: u32,
    rev: u32,  // index of the reverse arc in adj[to]
    cap: f64,  // residual capacity
    edge: i64, // original EdgeId index, or -1 for reverse arcs
}

/// Dinic max-flow solver; reusable across runs on the same graph.
pub struct Dinic {
    n: usize,
    adj: Vec<Vec<Arc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Prepares the residual network for `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let mut adj: Vec<Vec<Arc>> = (0..n).map(|_| Vec::new()).collect();
        for e in g.edges() {
            let u = e.src.index();
            let v = e.dst.index();
            let rev_u = adj[v].len() as u32;
            let rev_v = adj[u].len() as u32;
            adj[u].push(Arc {
                to: v as u32,
                rev: rev_u,
                cap: e.capacity,
                edge: e.id.index() as i64,
            });
            adj[v].push(Arc {
                to: u as u32,
                rev: rev_v,
                cap: 0.0,
                edge: -1,
            });
        }
        Dinic {
            n,
            adj,
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for a in &self.adj[v] {
                if a.cap > EPS && self.level[a.to as usize] < 0 {
                    self.level[a.to as usize] = self.level[v] + 1;
                    q.push_back(a.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.adj[v].len() {
            let i = self.iter[v];
            let (to, cap) = {
                let a = &self.adj[v][i];
                (a.to as usize, a.cap)
            };
            if cap > EPS && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > EPS {
                    let rev = self.adj[v][i].rev as usize;
                    self.adj[v][i].cap -= d;
                    self.adj[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    /// Runs max-flow from `s` to `t` on the *current* residual network.
    ///
    /// Call on a freshly-constructed solver for a plain max-flow; repeated
    /// calls compute incremental flow on the leftover residuals.
    pub fn run(&mut self, g: &Graph, s: NodeId, t: NodeId) -> MaxFlow {
        assert_ne!(s, t, "max-flow endpoints must differ");
        let (s, t) = (s.index(), t.index());
        let mut value = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                value += f;
            }
        }
        let mut edge_flow = vec![0.0; g.edge_count()];
        for arcs in &self.adj {
            for a in arcs {
                if a.edge >= 0 {
                    let used = g.capacity(EdgeId::from_index(a.edge as usize)) - a.cap;
                    if used > EPS {
                        edge_flow[a.edge as usize] = used;
                    }
                }
            }
        }
        let _ = self.n;
        MaxFlow { value, edge_flow }
    }
}

/// One-shot max-flow from `s` to `t` in `g`.
pub fn max_flow(g: &Graph, s: NodeId, t: NodeId) -> MaxFlow {
    Dinic::new(g).run(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use crate::GraphBuilder;

    #[test]
    fn classic_diamond() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let c = b.add_node("b");
        let t = b.add_node("t");
        b.add_edge(s, a, 10.0).unwrap();
        b.add_edge(s, c, 10.0).unwrap();
        b.add_edge(a, t, 4.0).unwrap();
        b.add_edge(c, t, 9.0).unwrap();
        b.add_edge(a, c, 2.0).unwrap();
        let g = b.build();
        let mf = max_flow(&g, s, t);
        assert!((mf.value - 13.0).abs() < 1e-9);
    }

    #[test]
    fn flow_conservation_and_capacity() {
        let topo = topology::gscale();
        let g = &topo.graph;
        let s = g.node_by_label("Asia-1").unwrap();
        let t = g.node_by_label("EU-2").unwrap();
        let mf = max_flow(g, s, t);
        assert!(mf.value > 0.0);
        // Capacity constraints.
        for e in g.edges() {
            let f = mf.edge_flow[e.id.index()];
            assert!(f >= -1e-9 && f <= e.capacity + 1e-9);
        }
        // Conservation at internal nodes; net supply at s equals value.
        for v in g.nodes() {
            let out: f64 = g
                .out_edges(v)
                .iter()
                .map(|&e| mf.edge_flow[e.index()])
                .sum();
            let inn: f64 = g.in_edges(v).iter().map(|&e| mf.edge_flow[e.index()]).sum();
            let net = out - inn;
            if v == s {
                assert!((net - mf.value).abs() < 1e-6);
            } else if v == t {
                assert!((net + mf.value).abs() < 1e-6);
            } else {
                assert!(net.abs() < 1e-6, "conservation violated at {v:?}");
            }
        }
    }

    #[test]
    fn fig2_free_path_capacity_is_three() {
        // s has three unit-capacity disjoint routes to t.
        let topo = topology::fig2_example();
        let g = &topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let mf = max_flow(g, s, t);
        assert!((mf.value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_gives_zero() {
        let b = GraphBuilder::with_nodes(3);
        let u = b.node(0).unwrap();
        let v = b.node(2).unwrap();
        let g = b.build();
        let mf = max_flow(&g, u, v);
        assert_eq!(mf.value, 0.0);
    }

    #[test]
    fn bottleneck_line() {
        let topo = topology::line(5, 3.5);
        let g = &topo.graph;
        let s = g.node_by_label("v0").unwrap();
        let t = g.node_by_label("v4").unwrap();
        assert!((max_flow(g, s, t).value - 3.5).abs() < 1e-12);
    }

    #[test]
    fn min_cut_equals_flow_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..10 {
            let topo = topology::random_connected(8, 6, (1.0, 5.0), &mut rng);
            let g = &topo.graph;
            let s = crate::NodeId::from_index(0);
            let t = crate::NodeId::from_index(7 - (seed % 3) as usize);
            if s == t {
                continue;
            }
            let mf = max_flow(g, s, t);
            // Check against a brute-force min cut over node bipartitions
            // (8 nodes -> 2^8 subsets is cheap).
            let n = g.node_count();
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << n) {
                if mask & (1 << s.index()) == 0 || mask & (1 << t.index()) != 0 {
                    continue;
                }
                let mut cut = 0.0;
                for e in g.edges() {
                    if mask & (1 << e.src.index()) != 0 && mask & (1 << e.dst.index()) == 0 {
                        cut += e.capacity;
                    }
                }
                best = best.min(cut);
            }
            assert!(
                (mf.value - best).abs() < 1e-6,
                "flow {} != min cut {best}",
                mf.value
            );
        }
    }
}
