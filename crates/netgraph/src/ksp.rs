//! Yen's k-shortest loopless paths.
//!
//! The paper (§2) notes an intermediate transmission model between single
//! path and free path: *"several paths are given, and we can use them
//! together and decide at what rate we are transmitting along each path."*
//! The multi-path LP in `coflow-core` takes its candidate path sets from
//! this module.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cost assigned to each edge when ranking paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathCost {
    /// Count every edge as 1 (hop count). Matches the paper's use of
    /// shortest (fewest-hop) paths.
    Hops,
    /// Cost `1/c(e)`: prefers high-bandwidth links.
    InverseCapacity,
}

impl PathCost {
    #[inline]
    fn of(self, g: &Graph, e: EdgeId) -> f64 {
        match self {
            PathCost::Hops => 1.0,
            PathCost::InverseCapacity => 1.0 / g.capacity(e),
        }
    }
}

/// Dijkstra from `src` to `dst` avoiding masked nodes/edges; returns the
/// cheapest path and its cost.
fn masked_shortest(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    cost: PathCost,
    node_banned: &[bool],
    edge_banned: &[bool],
) -> Option<(Vec<EdgeId>, f64)> {
    #[derive(PartialEq)]
    struct Item(f64, NodeId);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(Item(0.0, src));
    while let Some(Item(d, v)) = heap.pop() {
        if v == dst {
            break;
        }
        if d > dist[v.index()] + 1e-12 {
            continue;
        }
        for &e in g.out_edges(v) {
            if edge_banned[e.index()] {
                continue;
            }
            let w = g.dst(e);
            if node_banned[w.index()] {
                continue;
            }
            let nd = d + cost.of(g, e);
            if nd < dist[w.index()] - 1e-12 {
                dist[w.index()] = nd;
                pred[w.index()] = Some(e);
                heap.push(Item(nd, w));
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut edges = Vec::new();
    let mut v = dst;
    while v != src {
        let e = pred[v.index()].expect("reached nodes have predecessors");
        edges.push(e);
        v = g.src(e);
    }
    edges.reverse();
    Some((edges, dist[dst.index()]))
}

/// Returns up to `k` loopless `src → dst` paths in non-decreasing cost
/// order (Yen's algorithm). Fewer than `k` paths are returned when the
/// graph does not contain `k` distinct simple paths.
///
/// # Errors
///
/// [`GraphError::NoPath`] when `dst` is unreachable from `src`.
pub fn k_shortest_paths(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cost: PathCost,
) -> Result<Vec<Path>, GraphError> {
    assert!(k >= 1, "k must be positive");
    let no_nodes = vec![false; g.node_count()];
    let no_edges = vec![false; g.edge_count()];
    let (first, first_cost) = masked_shortest(g, src, dst, cost, &no_nodes, &no_edges)
        .ok_or(GraphError::NoPath { src, dst })?;

    let mut accepted: Vec<(Vec<EdgeId>, f64)> = vec![(first, first_cost)];
    // Candidate pool: (cost, edge list). Kept sorted on extraction.
    let mut candidates: Vec<(f64, Vec<EdgeId>)> = Vec::new();

    while accepted.len() < k {
        let (prev_path, _) = accepted.last().expect("non-empty").clone();
        // Spur from every prefix of the previous accepted path.
        for spur_idx in 0..prev_path.len() {
            let root = &prev_path[..spur_idx];
            let spur_node = if spur_idx == 0 {
                src
            } else {
                g.dst(prev_path[spur_idx - 1])
            };

            let mut edge_banned = vec![false; g.edge_count()];
            let mut node_banned = vec![false; g.node_count()];
            // Ban the next edge of every accepted/candidate path sharing
            // this root, forcing a deviation.
            for (p, _) in &accepted {
                if p.len() > spur_idx && p[..spur_idx] == *root {
                    edge_banned[p[spur_idx].index()] = true;
                }
            }
            for (_, p) in &candidates {
                if p.len() > spur_idx && p[..spur_idx] == *root {
                    edge_banned[p[spur_idx].index()] = true;
                }
            }
            // Ban root nodes (except the spur node) to keep paths simple.
            let mut v = src;
            for &e in root {
                if v != spur_node {
                    node_banned[v.index()] = true;
                }
                v = g.dst(e);
            }

            if let Some((spur, _)) =
                masked_shortest(g, spur_node, dst, cost, &node_banned, &edge_banned)
            {
                let mut total: Vec<EdgeId> = root.to_vec();
                total.extend_from_slice(&spur);
                let total_cost: f64 = total.iter().map(|&e| cost.of(g, e)).sum();
                if !candidates.iter().any(|(_, p)| *p == total) {
                    candidates.push((total_cost, total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract cheapest candidate.
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap_or(Ordering::Equal))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (c, p) = candidates.swap_remove(best);
        accepted.push((p, c));
    }

    accepted
        .into_iter()
        .map(|(edges, _)| Path::new(g, edges))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use crate::GraphBuilder;

    #[test]
    fn finds_paths_in_cost_order() {
        // s->t direct (1 hop), s->a->t (2 hops), s->a->b->t (3 hops).
        let mut bld = GraphBuilder::new();
        let s = bld.add_node("s");
        let a = bld.add_node("a");
        let b = bld.add_node("b");
        let t = bld.add_node("t");
        bld.add_edge(s, t, 1.0).unwrap();
        bld.add_edge(s, a, 1.0).unwrap();
        bld.add_edge(a, t, 1.0).unwrap();
        bld.add_edge(a, b, 1.0).unwrap();
        bld.add_edge(b, t, 1.0).unwrap();
        let g = bld.build();

        let paths = k_shortest_paths(&g, s, t, 5, PathCost::Hops).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 3);
        for p in &paths {
            assert_eq!(p.source(&g), s);
            assert_eq!(p.dest(&g), t);
        }
    }

    #[test]
    fn paths_are_distinct_and_simple() {
        let topo = topology::gscale();
        let g = &topo.graph;
        let src = g.node_by_label("Asia-1").unwrap();
        let dst = g.node_by_label("EU-2").unwrap();
        let paths = k_shortest_paths(g, src, dst, 6, PathCost::Hops).unwrap();
        assert!(paths.len() >= 2, "B4 has path diversity");
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.edges().to_vec()), "duplicate path");
            // Simplicity is enforced by Path::new; re-check endpoints.
            assert_eq!(p.source(g), src);
            assert_eq!(p.dest(g), dst);
        }
        // Non-decreasing hop counts.
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn inverse_capacity_prefers_fat_links() {
        // Two 2-hop paths; one via fat links must rank first.
        let mut bld = GraphBuilder::new();
        let s = bld.add_node("s");
        let a = bld.add_node("a");
        let b = bld.add_node("b");
        let t = bld.add_node("t");
        bld.add_edge(s, a, 100.0).unwrap();
        bld.add_edge(a, t, 100.0).unwrap();
        bld.add_edge(s, b, 1.0).unwrap();
        bld.add_edge(b, t, 1.0).unwrap();
        let g = bld.build();
        let paths = k_shortest_paths(&g, s, t, 2, PathCost::InverseCapacity).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths[0].bottleneck(&g) > paths[1].bottleneck(&g));
    }

    #[test]
    fn unreachable_is_error() {
        let bld = GraphBuilder::with_nodes(2);
        let u = bld.node(0).unwrap();
        let v = bld.node(1).unwrap();
        let g = bld.build();
        assert!(k_shortest_paths(&g, u, v, 3, PathCost::Hops).is_err());
    }

    #[test]
    fn k_one_equals_shortest() {
        let topo = topology::swan();
        let g = &topo.graph;
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let ks = k_shortest_paths(g, s, t, 1, PathCost::Hops).unwrap();
                let bfs = crate::shortest::shortest_path(g, s, t).unwrap();
                assert_eq!(ks[0].len(), bfs.len());
            }
        }
    }
}
