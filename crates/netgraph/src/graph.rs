//! The core CSR directed-graph type.

use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices `0..graph.node_count()` assigned in insertion
/// order by [`crate::GraphBuilder::add_node`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a directed edge in a [`Graph`].
///
/// Edge ids are dense indices `0..graph.edge_count()` assigned in insertion
/// order by [`crate::GraphBuilder::add_edge`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Returns the node id as a `usize` index into `0..node_count`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// The index is not validated against any particular graph; passing an
    /// out-of-range id to graph methods panics there.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl EdgeId {
    /// Returns the edge id as a `usize` index into `0..edge_count`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A borrowed view of one directed edge: endpoints plus capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRef {
    /// The edge's identifier.
    pub id: EdgeId,
    /// Tail (source) node.
    pub src: NodeId,
    /// Head (destination) node.
    pub dst: NodeId,
    /// Bandwidth `c(e) > 0`, in the instance's rate unit (e.g. Gbps).
    pub capacity: f64,
}

/// An immutable capacitated directed graph in CSR form.
///
/// Both out-adjacency and in-adjacency are materialized so that flow
/// conservation constraints (which need `δ_in(v)` and `δ_out(v)`) and
/// path routing (which needs `δ_out(v)`) are equally cheap.
///
/// Construct via [`crate::GraphBuilder`].
#[derive(Clone, Debug)]
pub struct Graph {
    pub(crate) labels: Vec<String>,
    pub(crate) src: Vec<NodeId>,
    pub(crate) dst: Vec<NodeId>,
    pub(crate) capacity: Vec<f64>,
    // CSR over out-edges: out_edges[out_start[v] .. out_start[v+1]]
    pub(crate) out_start: Vec<u32>,
    pub(crate) out_edges: Vec<EdgeId>,
    // CSR over in-edges.
    pub(crate) in_start: Vec<u32>,
    pub(crate) in_edges: Vec<EdgeId>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.src.len()
    }

    /// Iterator over all node ids in increasing order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Iterator over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        (0..self.edge_count()).map(move |i| self.edge(EdgeId::from_index(i)))
    }

    /// The human-readable label of `v` (datacenter name, etc.).
    #[inline]
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// Looks a node up by label. O(V).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(NodeId::from_index)
    }

    /// Full edge view for `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        EdgeRef {
            id: e,
            src: self.src[e.index()],
            dst: self.dst[e.index()],
            capacity: self.capacity[e.index()],
        }
    }

    /// Tail node of `e`.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.src[e.index()]
    }

    /// Head node of `e`.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.dst[e.index()]
    }

    /// Capacity (bandwidth) of `e`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.capacity[e.index()]
    }

    /// Edges leaving `v` (`δ_out(v)`).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.out_start[v.index()] as usize;
        let hi = self.out_start[v.index() + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Edges entering `v` (`δ_in(v)`).
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.in_start[v.index()] as usize;
        let hi = self.in_start[v.index() + 1] as usize;
        &self.in_edges[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges(v).len()
    }

    /// First edge from `u` to `v` in insertion order, if any.
    ///
    /// Parallel edges are allowed; use [`Graph::edges_between`] to get all.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.out_edges(u)
            .iter()
            .copied()
            .find(|&e| self.dst(e) == v)
    }

    /// All parallel edges from `u` to `v` in insertion order.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> Vec<EdgeId> {
        self.out_edges(u)
            .iter()
            .copied()
            .filter(|&e| self.dst(e) == v)
            .collect()
    }

    /// Sum of all edge capacities. Useful as a crude bandwidth budget.
    pub fn total_capacity(&self) -> f64 {
        self.capacity.iter().sum()
    }

    /// Minimum edge capacity; `None` for an edgeless graph.
    pub fn min_capacity(&self) -> Option<f64> {
        self.capacity.iter().copied().reduce(f64::min)
    }

    /// Whether every node can reach every other node (strong connectivity).
    ///
    /// Runs two BFS traversals (forward from node 0, backward from node 0).
    pub fn is_strongly_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let n = self.node_count();
        let root = NodeId::from_index(0);
        let fwd = self.reachable_from(root);
        if fwd.iter().filter(|&&r| r).count() != n {
            return false;
        }
        // Backward reachability: BFS over in-edges.
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &e in self.in_edges(v) {
                let u = self.src(e);
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
        seen.iter().filter(|&&r| r).count() == n
    }

    /// Forward reachability set from `root` as a boolean mask.
    pub fn reachable_from(&self, root: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &e in self.out_edges(v) {
                let w = self.dst(e);
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn csr_adjacency_is_consistent() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        let e0 = b.add_edge(a, c, 1.0).unwrap();
        let e1 = b.add_edge(a, d, 2.0).unwrap();
        let e2 = b.add_edge(c, d, 3.0).unwrap();
        let g = b.build();

        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_edges(a), &[e0, e1]);
        assert_eq!(g.out_edges(c), &[e2]);
        assert_eq!(g.out_edges(d), &[]);
        assert_eq!(g.in_edges(d), &[e1, e2]);
        assert_eq!(g.in_edges(a), &[]);
        assert_eq!(g.capacity(e2), 3.0);
        assert_eq!(g.src(e2), c);
        assert_eq!(g.dst(e2), d);
    }

    #[test]
    fn labels_and_lookup() {
        let mut b = GraphBuilder::new();
        let ny = b.add_node("NY");
        let la = b.add_node("LA");
        b.add_edge(ny, la, 10.0).unwrap();
        let g = b.build();
        assert_eq!(g.label(ny), "NY");
        assert_eq!(g.node_by_label("LA"), Some(la));
        assert_eq!(g.node_by_label("SF"), None);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let e0 = b.add_edge(a, c, 1.0).unwrap();
        let e1 = b.add_edge(a, c, 2.0).unwrap();
        let g = b.build();
        assert_eq!(g.edges_between(a, c), vec![e0, e1]);
        assert_eq!(g.find_edge(a, c), Some(e0));
    }

    #[test]
    fn strong_connectivity() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_edge(a, c, 1.0).unwrap();
        let g = b.build();
        assert!(!g.is_strongly_connected());

        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_bidirected(a, c, 1.0).unwrap();
        let g = b.build();
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn capacity_aggregates() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_edge(a, c, 1.5).unwrap();
        b.add_edge(c, a, 2.5).unwrap();
        let g = b.build();
        assert_eq!(g.total_capacity(), 4.0);
        assert_eq!(g.min_capacity(), Some(1.5));
    }
}
