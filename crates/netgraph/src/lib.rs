//! Capacitated directed-graph substrate for coflow scheduling.
//!
//! This crate provides the network model used by the SPAA 2019 paper
//! *Near Optimal Coflow Scheduling in Networks*: a directed graph
//! `G = (V, E)` with a capacity (bandwidth) function `c : E → R+`.
//!
//! It contains:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) directed graph with
//!   per-edge capacities and O(1) access to both out- and in-adjacency,
//!   built through [`GraphBuilder`].
//! * [`topology`] — the two WAN topologies evaluated in the paper
//!   (Microsoft SWAN and Google G-Scale/B4) plus parametric generators
//!   (line, ring, star, grid, random connected, the paper's Figure 2
//!   example, and a big-switch bipartite fabric).
//! * [`shortest`] — BFS shortest paths, the shortest-path DAG, exact path
//!   counting, and uniform sampling of a random shortest path (the paper
//!   assigns "one of the shortest paths" chosen at random to each flow in
//!   the single-path experiments).
//! * [`ksp`] — Yen's k-shortest loopless paths, used by the multi-path
//!   transmission model.
//! * [`maxflow`] — Dinic's maximum-flow algorithm, used to compute
//!   standalone completion times of single-flow coflows and to validate
//!   routability.
//! * [`gadget`] — the I/O-constrained datacenter gadget of the paper's
//!   footnote 1, which embeds big-switch instances into the graph model.
//!
//! # Example
//!
//! ```
//! use coflow_netgraph::{GraphBuilder, shortest};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node("a");
//! let c = b.add_node("c");
//! let d = b.add_node("d");
//! b.add_edge(a, c, 10.0).unwrap();
//! b.add_edge(c, d, 5.0).unwrap();
//! let g = b.build();
//!
//! let dist = shortest::bfs_distances(&g, a);
//! assert_eq!(dist[d.index()], Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod error;
mod graph;

pub mod dot;
pub mod gadget;
pub mod ksp;
pub mod maxflow;
pub mod paths;
pub mod random;
pub mod shortest;
pub mod topology;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, EdgeRef, Graph, NodeId};
pub use paths::Path;
