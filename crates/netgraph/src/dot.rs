//! Graphviz DOT export for capacitated digraphs.
//!
//! Handy for documenting topologies and debugging routing decisions:
//! `dot -Tsvg swan.dot -o swan.svg` renders the WAN with per-link
//! bandwidth labels. Bi-directed link pairs are merged into one
//! undirected edge when their capacities match, mirroring the figures in
//! the WAN papers.

use crate::graph::Graph;
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Clone, Copy, Debug)]
pub struct DotOptions {
    /// Merge `u→v` / `v→u` pairs with equal capacity into one
    /// undirected-looking edge (`dir=none`).
    pub merge_bidirected: bool,
    /// Include capacities as edge labels.
    pub capacity_labels: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            merge_bidirected: true,
            capacity_labels: true,
        }
    }
}

/// Renders the graph in Graphviz DOT syntax.
pub fn to_dot(g: &Graph, name: &str, opts: DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, style=rounded];");
    for v in g.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            v.index(),
            sanitize(g.label(v))
        );
    }
    let mut merged = vec![false; g.edge_count()];
    for e in g.edges() {
        if merged[e.id.index()] {
            continue;
        }
        let mut attrs: Vec<String> = Vec::new();
        if opts.capacity_labels {
            attrs.push(format!("label=\"{}\"", trim_float(e.capacity)));
        }
        if opts.merge_bidirected {
            if let Some(back) = g.find_edge(e.dst, e.src) {
                if !merged[back.index()] && (g.capacity(back) - e.capacity).abs() < 1e-12 {
                    merged[back.index()] = true;
                    attrs.push("dir=none".into());
                }
            }
        }
        let attr_str = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        let _ = writeln!(
            out,
            "  n{} -> n{}{};",
            e.src.index(),
            e.dst.index(),
            attr_str
        );
        merged[e.id.index()] = true;
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('"', "\\\"")
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use crate::GraphBuilder;

    #[test]
    fn swan_renders_with_merged_links() {
        let t = topology::swan();
        let dot = to_dot(&t.graph, "SWAN", DotOptions::default());
        assert!(dot.starts_with("digraph \"SWAN\""));
        // 5 node lines.
        assert_eq!(dot.matches("[label=\"").count() - 7, 5, "{dot}");
        // 7 merged physical links -> 7 edge lines with dir=none.
        assert_eq!(dot.matches("dir=none").count(), 7);
        assert!(dot.contains("label=\"40\""));
    }

    #[test]
    fn asymmetric_capacities_stay_directed() {
        let mut b = GraphBuilder::new();
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_edge(u, v, 5.0).unwrap();
        b.add_edge(v, u, 9.0).unwrap();
        let g = b.build();
        let dot = to_dot(&g, "asym", DotOptions::default());
        assert!(!dot.contains("dir=none"));
        assert!(dot.contains("label=\"5\""));
        assert!(dot.contains("label=\"9\""));
    }

    #[test]
    fn labels_are_escaped() {
        let mut b = GraphBuilder::new();
        let u = b.add_node("evil\"node");
        let v = b.add_node("ok");
        b.add_edge(u, v, 1.0).unwrap();
        let g = b.build();
        let dot = to_dot(&g, "x", DotOptions::default());
        assert!(dot.contains("evil\\\"node"));
    }

    #[test]
    fn options_disable_labels() {
        let t = topology::line(3, 2.5);
        let dot = to_dot(
            &t.graph,
            "line",
            DotOptions {
                merge_bidirected: false,
                capacity_labels: false,
            },
        );
        assert!(!dot.contains("label=\"2.5\""));
        assert!(!dot.contains("dir=none"));
    }
}
