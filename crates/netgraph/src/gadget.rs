//! The I/O-limit gadget of the paper's footnote 1.
//!
//! The big-switch coflow model constrains each machine's aggregate send
//! and receive rates. The graph model has only per-edge capacities, so the
//! paper describes a gadget: *"replace every datacenter with a gadget of
//! two nodes. The first node has exactly the same neighbors and edges that
//! the original node for the datacenter has, plus links from and to the
//! second node. The second node is only connected to the first node, and
//! is the true source and destination for all demands involving this
//! datacenter. By setting capacity on the links between these two nodes,
//! we can enforce I/O limit for the whole datacenter like in the switch
//! model."*
//!
//! [`with_io_gadget`] applies this transformation; together with
//! [`crate::topology::bipartite_switch`] it embeds classic switch-model
//! instances (Varys/Sincronia style) into the network model, which is how
//! the integration tests cross-check against concurrent open shop.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// Per-node I/O limits for [`with_io_gadget`].
#[derive(Clone, Copy, Debug)]
pub struct IoLimit {
    /// Maximum aggregate egress rate of the node.
    pub egress: f64,
    /// Maximum aggregate ingress rate of the node.
    pub ingress: f64,
}

impl IoLimit {
    /// Symmetric I/O limit.
    pub fn symmetric(rate: f64) -> Self {
        IoLimit {
            egress: rate,
            ingress: rate,
        }
    }
}

/// Result of applying the footnote-1 gadget.
#[derive(Clone, Debug)]
pub struct GadgetGraph {
    /// The transformed graph. Node ids `0..n` are the original ("router")
    /// nodes with identical adjacency; ids `n..2n` are the inner nodes.
    pub graph: Graph,
    /// `inner[v]` is the inner node that must be used as the true source
    /// and destination for all demands of original node `v`.
    pub inner: Vec<NodeId>,
}

/// Applies the I/O gadget to every node of `g`.
///
/// `limits[v]` gives the egress/ingress budget of original node `v`; the
/// function panics if `limits.len() != g.node_count()` or any limit is not
/// finite and positive.
pub fn with_io_gadget(g: &Graph, limits: &[IoLimit]) -> GadgetGraph {
    assert_eq!(
        limits.len(),
        g.node_count(),
        "one IoLimit required per node"
    );
    let mut b = GraphBuilder::new();
    // Router nodes first so original NodeIds stay valid in the new graph.
    for v in g.nodes() {
        b.add_node(g.label(v));
    }
    // `.inner` rather than `#inner`: `#` starts a comment in the
    // `.coflow` text format, so labels containing it cannot round-trip
    // through `coflow_core::io`.
    let inner: Vec<NodeId> = g
        .nodes()
        .map(|v| b.add_node(format!("{}.inner", g.label(v))))
        .collect();
    for e in g.edges() {
        b.add_edge(e.src, e.dst, e.capacity)
            .expect("copying a valid graph");
    }
    for v in g.nodes() {
        let lim = limits[v.index()];
        assert!(
            lim.egress.is_finite() && lim.egress > 0.0,
            "bad egress limit at {v:?}"
        );
        assert!(
            lim.ingress.is_finite() && lim.ingress > 0.0,
            "bad ingress limit at {v:?}"
        );
        // inner -> router carries egress traffic; router -> inner ingress.
        b.add_edge(inner[v.index()], v, lim.egress).expect("valid");
        b.add_edge(v, inner[v.index()], lim.ingress).expect("valid");
    }
    GadgetGraph {
        graph: b.build(),
        inner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::max_flow;
    use crate::topology;

    #[test]
    fn gadget_shape() {
        let topo = topology::swan();
        let g = &topo.graph;
        let limits = vec![IoLimit::symmetric(25.0); g.node_count()];
        let gg = with_io_gadget(g, &limits);
        assert_eq!(gg.graph.node_count(), 2 * g.node_count());
        assert_eq!(gg.graph.edge_count(), g.edge_count() + 2 * g.node_count());
        // Inner nodes have degree exactly 1 in, 1 out.
        for &iv in &gg.inner {
            assert_eq!(gg.graph.out_degree(iv), 1);
            assert_eq!(gg.graph.in_degree(iv), 1);
        }
        // Original adjacency preserved between router nodes.
        for e in g.edges() {
            assert!(gg.graph.find_edge(e.src, e.dst).is_some());
        }
    }

    #[test]
    fn io_limit_caps_throughput() {
        // SWAN's US-West has 60 Gbps of attached link bandwidth; an I/O
        // limit of 5 must cap any single-source throughput at 5.
        let topo = topology::swan();
        let g = &topo.graph;
        let src = g.node_by_label("US-West").unwrap();
        let dst = g.node_by_label("Europe").unwrap();
        let unlimited = max_flow(g, src, dst).value;
        assert!(unlimited > 5.0);

        let limits = vec![IoLimit::symmetric(5.0); g.node_count()];
        let gg = with_io_gadget(g, &limits);
        let s_in = gg.inner[src.index()];
        let t_in = gg.inner[dst.index()];
        let capped = max_flow(&gg.graph, s_in, t_in).value;
        assert!((capped - 5.0).abs() < 1e-9, "capped flow = {capped}");
    }

    #[test]
    fn switch_model_embedding_is_one_to_one() {
        // A 2-port switch with unit port rates: inner-to-inner max flow
        // between any (in, out) pair is exactly 1.
        let topo = topology::bipartite_switch(2, 1.0);
        let g = &topo.graph;
        let limits = vec![IoLimit::symmetric(1.0); g.node_count()];
        let gg = with_io_gadget(g, &limits);
        for &i in &topo.sources {
            for &o in &topo.sinks {
                let v = max_flow(&gg.graph, gg.inner[i.index()], gg.inner[o.index()]).value;
                assert!((v - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one IoLimit required per node")]
    fn wrong_limit_count_panics() {
        let topo = topology::swan();
        with_io_gadget(&topo.graph, &[IoLimit::symmetric(1.0)]);
    }

    #[test]
    fn asymmetric_limits() {
        let topo = topology::ring(4, 100.0);
        let g = &topo.graph;
        let mut limits = vec![IoLimit::symmetric(50.0); g.node_count()];
        limits[0] = IoLimit {
            egress: 3.0,
            ingress: 7.0,
        };
        let gg = with_io_gadget(g, &limits);
        let v0 = crate::NodeId::from_index(0);
        let v2 = crate::NodeId::from_index(2);
        let out_flow = max_flow(&gg.graph, gg.inner[0], gg.inner[2]).value;
        assert!((out_flow - 3.0).abs() < 1e-9);
        let in_flow = max_flow(&gg.graph, gg.inner[2], gg.inner[0]).value;
        assert!((in_flow - 7.0).abs() < 1e-9);
        let _ = (v0, v2);
    }
}
