//! Network topologies: the two WANs evaluated in the paper plus
//! parametric generators used by tests and benchmarks.
//!
//! The paper evaluates on:
//!
//! * **SWAN** — Microsoft's inter-datacenter WAN "with 5 datacenters and
//!   7 inter-datacenter links" (Hong et al., SIGCOMM 2013).
//! * **G-Scale** — Google's B4 inter-datacenter WAN "with 12 datacenters
//!   and 19 inter-datacenter links" (Jain et al., SIGCOMM 2013).
//!
//! Neither paper publishes a machine-readable adjacency list, so
//! [`swan`] and [`gscale`] reconstruct the published maps: node/link
//! counts are exact, the shape (path diversity, continental clusters,
//! express links) follows the published figures, and link bandwidths use
//! the tens-of-Gbps range described by Hong et al. The reconstruction is
//! documented inline and in `DESIGN.md` §4; every capacity can be
//! rescaled with [`Topology::scale_capacity`].
//!
//! All WAN links are *bi-directed*: each direction is an independent
//! directed edge with its own bandwidth, as in the paper's Figure 2.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A named graph plus the node sets eligible as flow endpoints.
///
/// For WAN topologies every node is a datacenter and may source or sink
/// flows. For the bipartite switch fabric, sources are the input ports and
/// sinks the output ports.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable topology name (used in experiment output).
    pub name: String,
    /// The underlying capacitated digraph.
    pub graph: Graph,
    /// Nodes eligible as flow sources.
    pub sources: Vec<NodeId>,
    /// Nodes eligible as flow sinks.
    pub sinks: Vec<NodeId>,
}

impl Topology {
    pub(crate) fn all_nodes(name: &str, graph: Graph) -> Self {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        Topology {
            name: name.to_string(),
            graph,
            sources: nodes.clone(),
            sinks: nodes,
        }
    }

    /// Returns a copy with every edge capacity multiplied by `factor`.
    ///
    /// Useful to convert Gbps capacities into per-slot volumes (capacity ×
    /// slot seconds) or to stress-test at lower bandwidth.
    pub fn scale_capacity(&self, factor: f64) -> Topology {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        let mut b = GraphBuilder::new();
        for v in self.graph.nodes() {
            b.add_node(self.graph.label(v));
        }
        for e in self.graph.edges() {
            b.add_edge(e.src, e.dst, e.capacity * factor)
                .expect("rescaling preserves validity");
        }
        Topology {
            name: self.name.clone(),
            graph: b.build(),
            sources: self.sources.clone(),
            sinks: self.sinks.clone(),
        }
    }
}

/// Microsoft SWAN-like inter-datacenter WAN: 5 datacenters, 7 links
/// (each link = 2 directed edges).
///
/// Reconstruction: a US-Europe-Asia layout in which the US datacenters
/// form a triangle and each overseas site multi-homes to two US sites —
/// matching the path diversity visible in Hong et al.'s figure. Link
/// bandwidths alternate 10/40 Gbps as in their mixed-capacity deployment.
pub fn swan() -> Topology {
    let mut b = GraphBuilder::new();
    let us_w = b.add_node("US-West");
    let us_c = b.add_node("US-Central");
    let us_e = b.add_node("US-East");
    let eu = b.add_node("Europe");
    let asia = b.add_node("Asia");
    // 7 physical links.
    for (u, v, cap) in [
        (us_w, us_c, 40.0),
        (us_c, us_e, 40.0),
        (us_w, us_e, 10.0),
        (us_e, eu, 10.0),
        (us_c, eu, 10.0),
        (us_w, asia, 10.0),
        (us_c, asia, 10.0),
    ] {
        b.add_bidirected(u, v, cap)
            .expect("static topology is valid");
    }
    Topology::all_nodes("SWAN", b.build())
}

/// Google G-Scale (B4)-like inter-datacenter WAN: 12 datacenters,
/// 19 links (each link = 2 directed edges).
///
/// Reconstruction of the B4 site map (Jain et al., Figure 1): an Asia
/// cluster, a US West triangle, central/east pairs, a coast-to-coast
/// express link, and a dual-homed Europe cluster. Bandwidths follow the
/// 10–100 Gbps mix described for B4.
pub fn gscale() -> Topology {
    let mut b = GraphBuilder::new();
    let asia1 = b.add_node("Asia-1");
    let asia2 = b.add_node("Asia-2");
    let asia3 = b.add_node("Asia-3");
    let usw1 = b.add_node("US-West-1");
    let usw2 = b.add_node("US-West-2");
    let usw3 = b.add_node("US-West-3");
    let usc1 = b.add_node("US-Central-1");
    let usc2 = b.add_node("US-Central-2");
    let use1 = b.add_node("US-East-1");
    let use2 = b.add_node("US-East-2");
    let eu1 = b.add_node("EU-1");
    let eu2 = b.add_node("EU-2");
    // 19 physical links.
    for (u, v, cap) in [
        // Asia cluster.
        (asia1, asia2, 40.0),
        (asia1, asia3, 10.0),
        (asia2, asia3, 40.0),
        // Transpacific.
        (asia1, usw1, 10.0),
        (asia2, usw1, 10.0),
        (asia3, usw2, 10.0),
        // US West triangle.
        (usw1, usw2, 100.0),
        (usw1, usw3, 40.0),
        (usw2, usw3, 100.0),
        // West to central.
        (usw2, usc1, 40.0),
        (usw3, usc2, 40.0),
        // Central pair, central to east.
        (usc1, usc2, 100.0),
        (usc1, use1, 40.0),
        (usc2, use2, 40.0),
        // East pair and coast-to-coast express.
        (use1, use2, 100.0),
        (usw1, use1, 10.0),
        // Transatlantic, dual-homed Europe.
        (use1, eu1, 10.0),
        (use2, eu2, 10.0),
        (eu1, eu2, 40.0),
    ] {
        b.add_bidirected(u, v, cap)
            .expect("static topology is valid");
    }
    Topology::all_nodes("G-Scale", b.build())
}

/// Internet2 Abilene research backbone: 11 PoPs, 14 links (each link =
/// 2 directed edges), uniform 10 Gbps (OC-192) trunks.
///
/// Unlike SWAN/G-Scale this adjacency is published exactly; it is a
/// popular third WAN for scheduling experiments and serves here as an
/// out-of-paper topology for robustness checks.
pub fn abilene() -> Topology {
    let mut b = GraphBuilder::new();
    let sea = b.add_node("Seattle");
    let snv = b.add_node("Sunnyvale");
    let lax = b.add_node("Los-Angeles");
    let den = b.add_node("Denver");
    let kc = b.add_node("Kansas-City");
    let hou = b.add_node("Houston");
    let ind = b.add_node("Indianapolis");
    let atl = b.add_node("Atlanta");
    let chi = b.add_node("Chicago");
    let nyc = b.add_node("New-York");
    let dc = b.add_node("Washington-DC");
    for (u, v) in [
        (sea, snv),
        (sea, den),
        (snv, lax),
        (snv, den),
        (lax, hou),
        (den, kc),
        (kc, hou),
        (kc, ind),
        (hou, atl),
        (atl, ind),
        (atl, dc),
        (ind, chi),
        (chi, nyc),
        (nyc, dc),
    ] {
        b.add_bidirected(u, v, 10.0)
            .expect("static topology is valid");
    }
    Topology::all_nodes("Abilene", b.build())
}

/// NSFNET T1 backbone: 14 nodes, 21 links (each link = 2 directed
/// edges), uniform capacity.
///
/// Reconstruction of the widely used 14-node/21-link NSFNET map from the
/// optical-networking literature (variants differ in 1–2 links); node
/// and link counts are exact and every node is at least 2-connected, as
/// in the original. Capacities are uniform at 10 units; rescale with
/// [`Topology::scale_capacity`].
pub fn nsfnet() -> Topology {
    let mut b = GraphBuilder::new();
    let wa = b.add_node("WA");
    let ca1 = b.add_node("CA1");
    let ca2 = b.add_node("CA2");
    let ut = b.add_node("UT");
    let co = b.add_node("CO");
    let tx = b.add_node("TX");
    let ne = b.add_node("NE");
    let il = b.add_node("IL");
    let pa = b.add_node("PA");
    let ga = b.add_node("GA");
    let mi = b.add_node("MI");
    let ny = b.add_node("NY");
    let nj = b.add_node("NJ");
    let md = b.add_node("MD");
    for (u, v) in [
        (wa, ca1),
        (wa, ca2),
        (wa, il),
        (ca1, ca2),
        (ca1, ut),
        (ca2, tx),
        (ut, co),
        (ut, mi),
        (co, tx),
        (co, ne),
        (tx, ga),
        (tx, md),
        (ne, il),
        (il, pa),
        (pa, ga),
        (pa, md),
        (ga, nj),
        (mi, ny),
        (mi, nj),
        (ny, nj),
        (ny, md),
    ] {
        b.add_bidirected(u, v, 10.0)
            .expect("static topology is valid");
    }
    Topology::all_nodes("NSFNET", b.build())
}

/// The example network of the paper's Figure 2: source `s`, relays
/// `v1, v2, v3`, sink `t`, every edge bi-directed with independent
/// capacity 1.
///
/// Optimal total weighted completion time is 7 in the single-path model
/// (Figure 3) and 5 in the free-path model (Figure 4) for the four
/// unit-weight coflows described there.
pub fn fig2_example() -> Topology {
    let mut b = GraphBuilder::new();
    let s = b.add_node("s");
    let v1 = b.add_node("v1");
    let v2 = b.add_node("v2");
    let v3 = b.add_node("v3");
    let t = b.add_node("t");
    for v in [v1, v2, v3] {
        b.add_bidirected(s, v, 1.0).expect("valid");
        b.add_bidirected(v, t, 1.0).expect("valid");
    }
    Topology::all_nodes("Fig2", b.build())
}

/// A directed line `v0 → v1 → … → v{n-1}` with uniform capacity.
pub fn line(n: usize, capacity: f64) -> Topology {
    assert!(n >= 2, "line needs at least 2 nodes");
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n - 1 {
        b.add_edge(
            b.node(i).expect("exists"),
            b.node(i + 1).expect("exists"),
            capacity,
        )
        .expect("valid");
    }
    Topology::all_nodes("Line", b.build())
}

/// A bi-directed ring on `n` nodes with uniform capacity.
pub fn ring(n: usize, capacity: f64) -> Topology {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        let u = b.node(i).expect("exists");
        let v = b.node((i + 1) % n).expect("exists");
        b.add_bidirected(u, v, capacity).expect("valid");
    }
    Topology::all_nodes("Ring", b.build())
}

/// A bi-directed star: `hub` in the middle, `n` leaves.
pub fn star(n_leaves: usize, capacity: f64) -> Topology {
    assert!(n_leaves >= 1);
    let mut b = GraphBuilder::new();
    let hub = b.add_node("hub");
    for i in 0..n_leaves {
        let leaf = b.add_node(format!("leaf{i}"));
        b.add_bidirected(hub, leaf, capacity).expect("valid");
    }
    let g = b.build();
    let leaves: Vec<NodeId> = g.nodes().skip(1).collect();
    Topology {
        name: "Star".into(),
        graph: g,
        sources: leaves.clone(),
        sinks: leaves,
    }
}

/// A bi-directed `rows × cols` grid with uniform capacity.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> Topology {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut b = GraphBuilder::new();
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            ids.push(b.add_node(format!("g{r}_{c}")));
        }
    }
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_bidirected(at(r, c), at(r, c + 1), capacity)
                    .expect("valid");
            }
            if r + 1 < rows {
                b.add_bidirected(at(r, c), at(r + 1, c), capacity)
                    .expect("valid");
            }
        }
    }
    Topology::all_nodes("Grid", b.build())
}

/// The classical big-switch datacenter fabric as a graph: `n` input ports
/// `in0..`, `n` output ports `out0..`, and a unit-capacity directed edge
/// from every input to every output.
///
/// Coflow scheduling on this topology specializes to the switch model of
/// Chowdhury & Stoica (HotNets 2012) when every port also carries a unit
/// I/O constraint — see [`crate::gadget::with_io_gadget`] for the paper's
/// footnote-1 construction that enforces those I/O limits.
pub fn bipartite_switch(n_ports: usize, capacity: f64) -> Topology {
    assert!(n_ports >= 1);
    let mut b = GraphBuilder::new();
    let ins: Vec<NodeId> = (0..n_ports).map(|i| b.add_node(format!("in{i}"))).collect();
    let outs: Vec<NodeId> = (0..n_ports)
        .map(|i| b.add_node(format!("out{i}")))
        .collect();
    for &i in &ins {
        for &o in &outs {
            b.add_edge(i, o, capacity).expect("valid");
        }
    }
    Topology {
        name: "Switch".into(),
        graph: b.build(),
        sources: ins,
        sinks: outs,
    }
}

/// A random strongly-connected topology: a random bi-directed spanning
/// tree plus `extra_links` random bi-directed chords, capacities drawn
/// uniformly from `cap_range`.
///
/// Used by property tests and scaling benchmarks where WAN realism is not
/// needed but structural variety is.
pub fn random_connected<R: Rng + ?Sized>(
    n: usize,
    extra_links: usize,
    cap_range: (f64, f64),
    rng: &mut R,
) -> Topology {
    assert!(n >= 2);
    assert!(cap_range.0 > 0.0 && cap_range.1 >= cap_range.0);
    let mut b = GraphBuilder::with_nodes(n);
    let nodes: Vec<NodeId> = (0..n).map(|i| b.node(i).expect("exists")).collect();

    // Random spanning tree: attach each node to a random earlier node.
    let mut order: Vec<usize> = (1..n).collect();
    order.shuffle(rng);
    for &i in &order {
        let j = rng.gen_range(0..i);
        let cap = rng.gen_range(cap_range.0..=cap_range.1);
        b.add_bidirected(nodes[i], nodes[j], cap).expect("valid");
    }
    // Random chords; duplicates allowed (parallel links exist in WANs).
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_links && attempts < extra_links * 20 + 100 {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let cap = rng.gen_range(cap_range.0..=cap_range.1);
        b.add_bidirected(nodes[i], nodes[j], cap).expect("valid");
        added += 1;
    }
    Topology::all_nodes("Random", b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swan_matches_paper_counts() {
        let t = swan();
        assert_eq!(t.graph.node_count(), 5);
        assert_eq!(t.graph.edge_count(), 14); // 7 links x 2 directions
        assert!(t.graph.is_strongly_connected());
    }

    #[test]
    fn gscale_matches_paper_counts() {
        let t = gscale();
        assert_eq!(t.graph.node_count(), 12);
        assert_eq!(t.graph.edge_count(), 38); // 19 links x 2 directions
        assert!(t.graph.is_strongly_connected());
    }

    #[test]
    fn abilene_matches_published_counts() {
        let t = abilene();
        assert_eq!(t.graph.node_count(), 11);
        assert_eq!(t.graph.edge_count(), 28); // 14 links x 2 directions
        assert!(t.graph.is_strongly_connected());
        // Every PoP has at least 2 neighbors (the backbone is a ring of
        // rings, no stub sites).
        for v in t.graph.nodes() {
            assert!(t.graph.out_degree(v) >= 2, "{} is a stub", t.graph.label(v));
        }
        // Spot-check a known adjacency: Chicago–New-York.
        let chi = t.graph.node_by_label("Chicago").unwrap();
        let nyc = t.graph.node_by_label("New-York").unwrap();
        assert!(t.graph.find_edge(chi, nyc).is_some());
        assert!(t.graph.find_edge(nyc, chi).is_some());
    }

    #[test]
    fn nsfnet_matches_published_counts() {
        let t = nsfnet();
        assert_eq!(t.graph.node_count(), 14);
        assert_eq!(t.graph.edge_count(), 42); // 21 links x 2 directions
        assert!(t.graph.is_strongly_connected());
        for v in t.graph.nodes() {
            assert!(t.graph.out_degree(v) >= 2, "{} is a stub", t.graph.label(v));
        }
    }

    #[test]
    fn fig2_structure() {
        let t = fig2_example();
        assert_eq!(t.graph.node_count(), 5);
        assert_eq!(t.graph.edge_count(), 12); // 6 links x 2 directions
        let s = t.graph.node_by_label("s").unwrap();
        let tt = t.graph.node_by_label("t").unwrap();
        let dag = crate::shortest::ShortestPathDag::new(&t.graph, s, tt).unwrap();
        assert_eq!(dag.path_count(), 3); // via v1, v2, v3
    }

    #[test]
    fn generators_are_connected() {
        assert!(ring(6, 1.0).graph.is_strongly_connected());
        assert!(grid(3, 4, 2.0).graph.is_strongly_connected());
        assert!(star(5, 1.0).graph.is_strongly_connected());
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2, 5, 17] {
            let t = random_connected(n, n, (1.0, 10.0), &mut rng);
            assert!(t.graph.is_strongly_connected(), "n={n}");
        }
    }

    #[test]
    fn line_is_weakly_connected_only() {
        let t = line(4, 1.0);
        assert!(!t.graph.is_strongly_connected());
        assert_eq!(t.graph.edge_count(), 3);
    }

    #[test]
    fn switch_fabric_shape() {
        let t = bipartite_switch(4, 1.0);
        assert_eq!(t.graph.node_count(), 8);
        assert_eq!(t.graph.edge_count(), 16);
        assert_eq!(t.sources.len(), 4);
        assert_eq!(t.sinks.len(), 4);
        // No in->in or out->out edges.
        for e in t.graph.edges() {
            assert!(t.sources.contains(&e.src));
            assert!(t.sinks.contains(&e.dst));
        }
    }

    #[test]
    fn scale_capacity_scales_everything() {
        let t = swan();
        let t2 = t.scale_capacity(3.0);
        assert_eq!(t.graph.edge_count(), t2.graph.edge_count());
        for (a, b) in t.graph.edges().zip(t2.graph.edges()) {
            assert!((b.capacity - 3.0 * a.capacity).abs() < 1e-12);
        }
    }
}
