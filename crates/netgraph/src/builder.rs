//! Incremental construction of [`Graph`]s.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};

/// Builds a [`Graph`] incrementally, then freezes it into CSR form.
///
/// ```
/// use coflow_netgraph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let u = b.add_node("u");
/// let v = b.add_node("v");
/// b.add_edge(u, v, 40.0).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<String>,
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    capacity: Vec<f64>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with `n` anonymous nodes labelled `"v0".."v{n-1}"`.
    pub fn with_nodes(n: usize) -> Self {
        let mut b = Self::new();
        for i in 0..n {
            b.add_node(format!("v{i}"));
        }
        b
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.src.len()
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.labels.len());
        self.labels.push(label.into());
        id
    }

    /// Node id for `i`, if `i` nodes have been added.
    pub fn node(&self, i: usize) -> Option<NodeId> {
        (i < self.labels.len()).then(|| NodeId::from_index(i))
    }

    /// Adds a directed edge `u → v` with bandwidth `capacity`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if either endpoint was not created by
    ///   this builder.
    /// * [`GraphError::BadCapacity`] if `capacity` is not finite and `> 0`.
    /// * [`GraphError::SelfLoop`] if `u == v`; self-loops carry no traffic
    ///   in the coflow model and always indicate a construction bug.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, capacity: f64) -> Result<EdgeId, GraphError> {
        if u.index() >= self.labels.len() || v.index() >= self.labels.len() {
            return Err(GraphError::UnknownNode);
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(GraphError::BadCapacity(capacity));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let id = EdgeId::from_index(self.src.len());
        self.src.push(u);
        self.dst.push(v);
        self.capacity.push(capacity);
        Ok(id)
    }

    /// Adds the pair of directed edges `u → v` and `v → u`, each with its own
    /// independent `capacity` (the paper's "bi-directed edge of independent
    /// capacity", Figure 2).
    pub fn add_bidirected(
        &mut self,
        u: NodeId,
        v: NodeId,
        capacity: f64,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let fwd = self.add_edge(u, v, capacity)?;
        let bwd = self.add_edge(v, u, capacity)?;
        Ok((fwd, bwd))
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let m = self.src.len();

        // Counting sort of edges by src (out-CSR) and by dst (in-CSR).
        let mut out_start = vec![0u32; n + 1];
        let mut in_start = vec![0u32; n + 1];
        for i in 0..m {
            out_start[self.src[i].index() + 1] += 1;
            in_start[self.dst[i].index() + 1] += 1;
        }
        for v in 0..n {
            out_start[v + 1] += out_start[v];
            in_start[v + 1] += in_start[v];
        }
        let mut out_edges = vec![EdgeId(0); m];
        let mut in_edges = vec![EdgeId(0); m];
        let mut out_cursor = out_start.clone();
        let mut in_cursor = in_start.clone();
        for i in 0..m {
            let e = EdgeId::from_index(i);
            let s = self.src[i].index();
            out_edges[out_cursor[s] as usize] = e;
            out_cursor[s] += 1;
            let d = self.dst[i].index();
            in_edges[in_cursor[d] as usize] = e;
            in_cursor[d] += 1;
        }

        Graph {
            labels: self.labels,
            src: self.src,
            dst: self.dst,
            capacity: self.capacity,
            out_start,
            out_edges,
            in_start,
            in_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        let mut b = GraphBuilder::new();
        let u = b.add_node("u");
        let v = b.add_node("v");
        assert!(matches!(
            b.add_edge(u, u, 1.0),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_edge(u, v, 0.0),
            Err(GraphError::BadCapacity(_))
        ));
        assert!(matches!(
            b.add_edge(u, v, f64::NAN),
            Err(GraphError::BadCapacity(_))
        ));
        assert!(matches!(
            b.add_edge(u, v, -2.0),
            Err(GraphError::BadCapacity(_))
        ));
        let other = GraphBuilder::with_nodes(5);
        let foreign = other.node(4).unwrap();
        assert!(matches!(
            b.add_edge(u, foreign, 1.0),
            Err(GraphError::UnknownNode)
        ));
    }

    #[test]
    fn with_nodes_labels() {
        let b = GraphBuilder::with_nodes(3);
        let g = b.build();
        assert_eq!(g.label(g.node_by_label("v2").unwrap()), "v2");
    }

    #[test]
    fn insertion_order_preserved_within_node() {
        // CSR must keep per-node edge order equal to insertion order,
        // because random shortest-path sampling relies on deterministic
        // iteration for seeded reproducibility.
        let mut b = GraphBuilder::with_nodes(4);
        let n0 = b.node(0).unwrap();
        let ids: Vec<_> = (1..4)
            .map(|i| b.add_edge(n0, b.node(i).unwrap(), i as f64).unwrap())
            .collect();
        let g = b.build();
        assert_eq!(g.out_edges(n0), ids.as_slice());
    }

    #[test]
    fn bidirected_adds_two_edges() {
        let mut b = GraphBuilder::with_nodes(2);
        let (u, v) = (b.node(0).unwrap(), b.node(1).unwrap());
        let (f, r) = b.add_bidirected(u, v, 7.0).unwrap();
        let g = b.build();
        assert_eq!(g.src(f), u);
        assert_eq!(g.dst(f), v);
        assert_eq!(g.src(r), v);
        assert_eq!(g.dst(r), u);
        assert_eq!(g.capacity(f), 7.0);
        assert_eq!(g.capacity(r), 7.0);
    }
}
