//! Path representation and validation.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};

/// A simple directed path: an ordered list of edges whose endpoints chain.
///
/// Paths are the routing unit of the *single path* model and the candidate
/// set of the *multi path* model. A path with zero edges is permitted only
/// when source equals destination, which the coflow model never produces
/// (flows with `src == dst` are filtered out at instance construction).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Creates a path from a chained edge list, validating against `g`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidPath`] when consecutive edges do not chain
    /// (`dst(e_i) != src(e_{i+1})`), when the edge list is empty, or when a
    /// node repeats (the path is not simple).
    pub fn new(g: &Graph, edges: Vec<EdgeId>) -> Result<Self, GraphError> {
        if edges.is_empty() {
            return Err(GraphError::InvalidPath("empty edge list".into()));
        }
        for w in edges.windows(2) {
            if g.dst(w[0]) != g.src(w[1]) {
                return Err(GraphError::InvalidPath(format!(
                    "edges {:?} and {:?} do not chain",
                    w[0], w[1]
                )));
            }
        }
        let mut seen = std::collections::HashSet::new();
        seen.insert(g.src(edges[0]));
        for &e in &edges {
            if !seen.insert(g.dst(e)) {
                return Err(GraphError::InvalidPath(format!(
                    "node {:?} repeats; path is not simple",
                    g.dst(e)
                )));
            }
        }
        Ok(Path { edges })
    }

    /// Builds a path from a node sequence, resolving each hop to the first
    /// edge between consecutive nodes.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidPath`] if some consecutive pair has no edge.
    pub fn from_nodes(g: &Graph, nodes: &[NodeId]) -> Result<Self, GraphError> {
        if nodes.len() < 2 {
            return Err(GraphError::InvalidPath("need at least two nodes".into()));
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            let e = g.find_edge(w[0], w[1]).ok_or_else(|| {
                GraphError::InvalidPath(format!("no edge {:?} → {:?}", w[0], w[1]))
            })?;
            edges.push(e);
        }
        Path::new(g, edges)
    }

    /// The edges of the path in order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of hops (edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Always false: empty paths cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Source node (tail of the first edge).
    #[inline]
    pub fn source(&self, g: &Graph) -> NodeId {
        g.src(self.edges[0])
    }

    /// Destination node (head of the last edge).
    #[inline]
    pub fn dest(&self, g: &Graph) -> NodeId {
        g.dst(*self.edges.last().expect("paths are non-empty"))
    }

    /// The node sequence `src, ..., dst` of the path.
    pub fn nodes(&self, g: &Graph) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        out.push(self.source(g));
        for &e in &self.edges {
            out.push(g.dst(e));
        }
        out
    }

    /// Bottleneck (minimum) capacity along the path.
    pub fn bottleneck(&self, g: &Graph) -> f64 {
        self.edges
            .iter()
            .map(|&e| g.capacity(e))
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether the path uses edge `e`.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Renders the path as `a -> b -> c` using graph labels.
    pub fn display(&self, g: &Graph) -> String {
        let nodes = self.nodes(g);
        nodes
            .iter()
            .map(|&v| g.label(v).to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> (Graph, Vec<NodeId>) {
        // s -> a -> t and s -> b -> t
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let bb = b.add_node("b");
        let t = b.add_node("t");
        b.add_edge(s, a, 2.0).unwrap();
        b.add_edge(a, t, 3.0).unwrap();
        b.add_edge(s, bb, 5.0).unwrap();
        b.add_edge(bb, t, 1.0).unwrap();
        (b.build(), vec![s, a, bb, t])
    }

    #[test]
    fn from_nodes_resolves_edges() {
        let (g, n) = diamond();
        let p = Path::from_nodes(&g, &[n[0], n[1], n[3]]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(&g), n[0]);
        assert_eq!(p.dest(&g), n[3]);
        assert_eq!(p.bottleneck(&g), 2.0);
        assert_eq!(p.display(&g), "s -> a -> t");
    }

    #[test]
    fn rejects_disconnected_chain() {
        let (g, n) = diamond();
        assert!(Path::from_nodes(&g, &[n[1], n[2]]).is_err());
        assert!(Path::from_nodes(&g, &[n[0]]).is_err());
    }

    #[test]
    fn rejects_nonchaining_edges() {
        let (g, _) = diamond();
        let e_sa = EdgeId::from_index(0);
        let e_bt = EdgeId::from_index(3);
        assert!(Path::new(&g, vec![e_sa, e_bt]).is_err());
        assert!(Path::new(&g, vec![]).is_err());
    }

    #[test]
    fn rejects_repeated_nodes() {
        let mut b = GraphBuilder::new();
        let u = b.add_node("u");
        let v = b.add_node("v");
        let (uv, vu) = b.add_bidirected(u, v, 1.0).unwrap();
        let g = b.build();
        // u -> v -> u revisits u.
        assert!(Path::new(&g, vec![uv, vu]).is_err());
    }

    #[test]
    fn nodes_roundtrip() {
        let (g, n) = diamond();
        let p = Path::from_nodes(&g, &[n[0], n[2], n[3]]).unwrap();
        assert_eq!(p.nodes(&g), vec![n[0], n[2], n[3]]);
        assert!(p.contains_edge(EdgeId::from_index(2)));
        assert!(!p.contains_edge(EdgeId::from_index(0)));
    }
}
