//! Shortest-path machinery: BFS, the shortest-path DAG, exact path
//! counting, and uniform random sampling of shortest paths.
//!
//! The single-path experiments in the paper (§6.2) state: *"For a source
//! sink pair `(s, t)`, we randomly select one of the shortest paths as the
//! path for flow `f`."* [`random_shortest_path`] implements exactly that —
//! each shortest path is returned with equal probability — by counting
//! suffix paths over the shortest-path DAG and sampling proportionally.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;
use rand::Rng;
use std::collections::VecDeque;

/// Hop distances from `src` to every node; `None` when unreachable.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(dv + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Hop distances from every node *to* `dst` (BFS over reversed edges).
pub fn bfs_distances_to(g: &Graph, dst: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[dst.index()] = Some(0);
    queue.push_back(dst);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        for &e in g.in_edges(v) {
            let u = g.src(e);
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// One arbitrary shortest path from `src` to `dst` (deterministic:
/// follows lowest-id DAG edges).
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Result<Path, GraphError> {
    let dag = ShortestPathDag::new(g, src, dst)?;
    let mut edges = Vec::new();
    let mut v = src;
    while v != dst {
        let e = dag.dag_out_edges(v)[0];
        edges.push(e);
        v = g.dst(e);
    }
    Path::new(g, edges)
}

/// The DAG of edges that lie on at least one shortest `src → dst` path,
/// together with the count of shortest paths through each node.
///
/// Counts are exact `u128` values; WAN-scale graphs cannot overflow them
/// (the count is bounded by `max_out_degree^diameter`).
pub struct ShortestPathDag {
    src: NodeId,
    dst: NodeId,
    /// `dag_edges[v]` lists out-edges of `v` that lie on a shortest path.
    dag_edges: Vec<Vec<EdgeId>>,
    /// `suffix_count[v]` = number of shortest `v → dst` paths, or 0 when
    /// `v` is not on any shortest `src → dst` path.
    suffix_count: Vec<u128>,
}

impl ShortestPathDag {
    /// Builds the shortest-path DAG between `src` and `dst`.
    ///
    /// # Errors
    ///
    /// [`GraphError::NoPath`] when `dst` is unreachable from `src`.
    pub fn new(g: &Graph, src: NodeId, dst: NodeId) -> Result<Self, GraphError> {
        let d_from = bfs_distances(g, src);
        let d_to = bfs_distances_to(g, dst);
        let total = match d_from[dst.index()] {
            Some(d) => d,
            None => return Err(GraphError::NoPath { src, dst }),
        };

        let n = g.node_count();
        let mut dag_edges = vec![Vec::new(); n];
        for v in g.nodes() {
            let (Some(dv), Some(_)) = (d_from[v.index()], d_to[v.index()]) else {
                continue;
            };
            for &e in g.out_edges(v) {
                let w = g.dst(e);
                if let Some(tw) = d_to[w.index()] {
                    if dv + 1 + tw == total {
                        dag_edges[v.index()].push(e);
                    }
                }
            }
        }

        // Suffix counts in decreasing distance-from-src order; every DAG
        // edge goes from distance d to d+1, so this is a topological order
        // processed backwards.
        let mut order: Vec<NodeId> = g
            .nodes()
            .filter(|v| d_from[v.index()].is_some() && d_to[v.index()].is_some())
            .collect();
        order.sort_by_key(|v| std::cmp::Reverse(d_from[v.index()]));
        let mut suffix_count = vec![0u128; n];
        suffix_count[dst.index()] = 1;
        for v in order {
            if v == dst {
                continue;
            }
            let mut c: u128 = 0;
            for &e in &dag_edges[v.index()] {
                c = c.saturating_add(suffix_count[g.dst(e).index()]);
            }
            suffix_count[v.index()] = c;
        }

        Ok(ShortestPathDag {
            src,
            dst,
            dag_edges,
            suffix_count,
        })
    }

    /// Shortest-path hop count between the endpoints.
    pub fn path_len(&self, g: &Graph) -> usize {
        // Follow any DAG chain; equivalently recompute from counts.
        let mut v = self.src;
        let mut hops = 0;
        while v != self.dst {
            let e = self.dag_edges[v.index()][0];
            v = g.dst(e);
            hops += 1;
        }
        hops
    }

    /// Number of distinct shortest `src → dst` paths.
    pub fn path_count(&self) -> u128 {
        self.suffix_count[self.src.index()]
    }

    /// Out-edges of `v` that lie on some shortest path.
    pub fn dag_out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.dag_edges[v.index()]
    }

    /// Samples one shortest path uniformly at random.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Path {
        let mut edges = Vec::new();
        let mut v = self.src;
        while v != self.dst {
            let total = self.suffix_count[v.index()];
            debug_assert!(total > 0);
            // Draw r in [0, total) and walk the CDF over DAG out-edges.
            let r = rng.gen_range(0..total);
            let mut acc: u128 = 0;
            let mut chosen = None;
            for &e in &self.dag_edges[v.index()] {
                acc += self.suffix_count[g.dst(e).index()];
                if r < acc {
                    chosen = Some(e);
                    break;
                }
            }
            let e = chosen.expect("suffix counts cover all DAG edges");
            edges.push(e);
            v = g.dst(e);
        }
        Path::new(g, edges).expect("DAG walks produce valid simple paths")
    }

    /// Enumerates all shortest paths. Exponential in the worst case — only
    /// for small graphs and tests; guarded by `limit`.
    pub fn enumerate(&self, g: &Graph, limit: usize) -> Vec<Path> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.enumerate_rec(g, self.src, &mut stack, &mut out, limit);
        out
    }

    fn enumerate_rec(
        &self,
        g: &Graph,
        v: NodeId,
        stack: &mut Vec<EdgeId>,
        out: &mut Vec<Path>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if v == self.dst {
            out.push(Path::new(g, stack.clone()).expect("valid DAG path"));
            return;
        }
        for &e in &self.dag_edges[v.index()] {
            stack.push(e);
            self.enumerate_rec(g, g.dst(e), stack, out, limit);
            stack.pop();
        }
    }
}

/// Convenience wrapper: a uniformly random shortest path from `src` to
/// `dst`, or [`GraphError::NoPath`].
pub fn random_shortest_path<R: Rng + ?Sized>(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    rng: &mut R,
) -> Result<Path, GraphError> {
    Ok(ShortestPathDag::new(g, src, dst)?.sample_uniform(g, rng))
}

/// Dijkstra distances with per-edge costs given by `cost`; `None` when
/// unreachable. Used by the weighted variant of Yen's algorithm.
pub fn dijkstra(g: &Graph, src: NodeId, cost: &dyn Fn(EdgeId) -> f64) -> Vec<Option<f64>> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Item(f64, NodeId);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on cost.
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let mut dist: Vec<Option<f64>> = vec![None; g.node_count()];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = Some(0.0);
    heap.push(Item(0.0, src));
    while let Some(Item(d, v)) = heap.pop() {
        if dist[v.index()].is_none_or(|best| d > best + 1e-12) {
            continue;
        }
        for &e in g.out_edges(v) {
            let w = g.dst(e);
            let c = cost(e);
            debug_assert!(c >= 0.0, "dijkstra requires non-negative costs");
            let nd = d + c;
            if dist[w.index()].is_none_or(|best| nd < best - 1e-12) {
                dist[w.index()] = Some(nd);
                heap.push(Item(nd, w));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2x2 grid-ish graph with two shortest s->t paths.
    fn two_path_graph() -> (Graph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let a = b.add_node("a");
        let c = b.add_node("c");
        let t = b.add_node("t");
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, t, 1.0).unwrap();
        b.add_edge(s, c, 1.0).unwrap();
        b.add_edge(c, t, 1.0).unwrap();
        // A longer 3-hop detour that must never be sampled.
        let d = b.add_node("d");
        b.add_edge(s, d, 1.0).unwrap();
        b.add_edge(d, a, 1.0).unwrap();
        let g = b.build();
        (g, s, t)
    }

    #[test]
    fn bfs_both_directions() {
        let (g, s, t) = two_path_graph();
        let df = bfs_distances(&g, s);
        assert_eq!(df[t.index()], Some(2));
        let dt = bfs_distances_to(&g, t);
        assert_eq!(dt[s.index()], Some(2));
        assert_eq!(dt[t.index()], Some(0));
    }

    #[test]
    fn dag_counts_paths_exactly() {
        let (g, s, t) = two_path_graph();
        let dag = ShortestPathDag::new(&g, s, t).unwrap();
        assert_eq!(dag.path_count(), 2);
        assert_eq!(dag.path_len(&g), 2);
        let all = dag.enumerate(&g, 100);
        assert_eq!(all.len(), 2);
        for p in &all {
            assert_eq!(p.len(), 2);
            assert_eq!(p.source(&g), s);
            assert_eq!(p.dest(&g), t);
        }
    }

    #[test]
    fn sampling_is_uniform_over_shortest_paths() {
        let (g, s, t) = two_path_graph();
        let dag = ShortestPathDag::new(&g, s, t).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        const N: usize = 4000;
        for _ in 0..N {
            let p = dag.sample_uniform(&g, &mut rng);
            assert_eq!(p.len(), 2, "sampled a non-shortest path");
            *counts.entry(p.edges().to_vec()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 2);
        for &c in counts.values() {
            // Each path should appear ~N/2 times; 4 sigma ≈ 126.
            assert!((c as i64 - (N / 2) as i64).abs() < 300, "count {c}");
        }
    }

    #[test]
    fn no_path_is_an_error() {
        let b = GraphBuilder::with_nodes(2);
        let g = b.clone().build();
        let (u, v) = (b.node(0).unwrap(), b.node(1).unwrap());
        assert!(matches!(
            ShortestPathDag::new(&g, u, v),
            Err(GraphError::NoPath { .. })
        ));
        assert!(random_shortest_path(&g, u, v, &mut StdRng::seed_from_u64(0)).is_err());
    }

    #[test]
    fn deterministic_shortest_path() {
        let (g, s, t) = two_path_graph();
        let p1 = shortest_path(&g, s, t).unwrap();
        let p2 = shortest_path(&g, s, t).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 2);
    }

    #[test]
    fn dijkstra_agrees_with_bfs_on_unit_costs() {
        let g = topology::gscale().graph;
        for src in g.nodes() {
            let bfs = bfs_distances(&g, src);
            let dij = dijkstra(&g, src, &|_| 1.0);
            for v in g.nodes() {
                match (bfs[v.index()], dij[v.index()]) {
                    (Some(b), Some(d)) => assert!((b as f64 - d).abs() < 1e-9),
                    (None, None) => {}
                    other => panic!("reachability mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn path_count_on_switch_fabric() {
        // In a 3x3 big-switch bipartite fabric every (in, out) pair has
        // exactly one shortest path (the direct edge).
        let topo = topology::bipartite_switch(3, 1.0);
        let g = &topo.graph;
        for i in 0..3 {
            for j in 0..3 {
                let s = g.node_by_label(&format!("in{i}")).unwrap();
                let t = g.node_by_label(&format!("out{j}")).unwrap();
                let dag = ShortestPathDag::new(g, s, t).unwrap();
                assert_eq!(dag.path_count(), 1);
            }
        }
    }
}
