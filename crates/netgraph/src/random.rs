//! Random topology generators for scalability studies.
//!
//! The paper evaluates on two fixed WANs; studying how the LP size, the
//! simplex, and the rounding algorithms *scale* needs families of graphs
//! with a tunable size knob. This module provides the two standard
//! models from the network-topology literature plus a classic stress
//! shape:
//!
//! * [`waxman`] — the Waxman (1988) spatial model: nodes in the unit
//!   square, link probability decaying with distance
//!   (`α·exp(−d/(β·√2))`). Produces WAN-like graphs: mostly short
//!   regional links, a few long-haul ones.
//! * [`gnp`] — Erdős–Rényi `G(n, p)` over bi-directed links; the
//!   structureless control case.
//! * [`dumbbell`] — two full-mesh clusters joined by one thin link; the
//!   canonical congestion scenario (every cross-cluster coflow fights
//!   for the waist).
//!
//! All generators guarantee **strong connectivity** by first laying a
//! random bi-directed spanning tree and only then sprinkling the
//! model-specific links — an instance with unroutable flows is useless
//! for scheduling experiments. All are deterministic given the `Rng`
//! state; experiments pass seeded [`rand::rngs::StdRng`]s.

use crate::builder::GraphBuilder;
use crate::graph::NodeId;
use crate::topology::Topology;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the [`waxman`] model.
#[derive(Clone, Copy, Debug)]
pub struct WaxmanParams {
    /// Overall link density, `0 < α ≤ 1`. Typical: 0.4.
    pub alpha: f64,
    /// Distance decay, `0 < β ≤ 1`; larger β keeps long links alive.
    /// Typical: 0.3.
    pub beta: f64,
    /// Uniform capacity range for generated links.
    pub cap_range: (f64, f64),
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            alpha: 0.4,
            beta: 0.3,
            cap_range: (10.0, 40.0),
        }
    }
}

/// Waxman random WAN on `n` nodes. See module docs.
///
/// Returns the topology together with the node coordinates (useful for
/// plotting or distance-aware workloads).
pub fn waxman<R: Rng + ?Sized>(
    n: usize,
    params: WaxmanParams,
    rng: &mut R,
) -> (Topology, Vec<(f64, f64)>) {
    assert!(n >= 2, "waxman needs at least 2 nodes");
    assert!(params.alpha > 0.0 && params.alpha <= 1.0, "bad alpha");
    assert!(params.beta > 0.0 && params.beta <= 1.0, "bad beta");
    let (clo, chi) = params.cap_range;
    assert!(clo > 0.0 && chi >= clo, "bad capacity range");

    let coords: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut b = GraphBuilder::with_nodes(n);
    let nodes: Vec<NodeId> = (0..n).map(|i| b.node(i).expect("exists")).collect();
    let mut have = vec![false; n * n];
    let link = |b: &mut GraphBuilder, have: &mut Vec<bool>, i: usize, j: usize, cap: f64| {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        if !have[i * n + j] {
            have[i * n + j] = true;
            b.add_bidirected(nodes[i], nodes[j], cap).expect("valid");
        }
    };

    // Connectivity backbone: random spanning tree.
    let mut order: Vec<usize> = (1..n).collect();
    order.shuffle(rng);
    for &i in &order {
        let j = rng.gen_range(0..i);
        let cap = rng.gen_range(clo..=chi);
        link(&mut b, &mut have, i, j, cap);
    }
    // Waxman links. L = √2 is the max distance in the unit square.
    let l = std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in i + 1..n {
            let d =
                ((coords[i].0 - coords[j].0).powi(2) + (coords[i].1 - coords[j].1).powi(2)).sqrt();
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let cap = rng.gen_range(clo..=chi);
                link(&mut b, &mut have, i, j, cap);
            }
        }
    }
    (Topology::all_nodes("Waxman", b.build()), coords)
}

/// Erdős–Rényi `G(n, p)` over bi-directed links with a spanning-tree
/// connectivity backbone. See module docs.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, cap_range: (f64, f64), rng: &mut R) -> Topology {
    assert!(n >= 2, "gnp needs at least 2 nodes");
    assert!((0.0..=1.0).contains(&p), "bad probability");
    let (clo, chi) = cap_range;
    assert!(clo > 0.0 && chi >= clo, "bad capacity range");
    let mut b = GraphBuilder::with_nodes(n);
    let nodes: Vec<NodeId> = (0..n).map(|i| b.node(i).expect("exists")).collect();
    let mut have = vec![false; n * n];
    let mut order: Vec<usize> = (1..n).collect();
    order.shuffle(rng);
    for &i in &order {
        let j = rng.gen_range(0..i);
        have[j * n + i] = true;
        b.add_bidirected(nodes[i], nodes[j], rng.gen_range(clo..=chi))
            .expect("valid");
    }
    for i in 0..n {
        for j in i + 1..n {
            if !have[i * n + j] && rng.gen_bool(p) {
                b.add_bidirected(nodes[i], nodes[j], rng.gen_range(clo..=chi))
                    .expect("valid");
            }
        }
    }
    Topology::all_nodes("Gnp", b.build())
}

/// Two `k`-node full-mesh clusters joined by a single bi-directed link
/// of capacity `waist_cap`; intra-cluster links carry `mesh_cap`.
///
/// Sources are the left cluster, sinks the right one, so every flow of a
/// generated workload crosses the waist — the sharpest possible
/// contention for completion-time experiments.
pub fn dumbbell(k: usize, mesh_cap: f64, waist_cap: f64) -> Topology {
    assert!(k >= 1, "dumbbell needs at least 1 node per side");
    assert!(mesh_cap > 0.0 && waist_cap > 0.0);
    let mut b = GraphBuilder::new();
    let left: Vec<NodeId> = (0..k).map(|i| b.add_node(format!("L{i}"))).collect();
    let right: Vec<NodeId> = (0..k).map(|i| b.add_node(format!("R{i}"))).collect();
    for side in [&left, &right] {
        for i in 0..k {
            for j in i + 1..k {
                b.add_bidirected(side[i], side[j], mesh_cap).expect("valid");
            }
        }
    }
    b.add_bidirected(left[0], right[0], waist_cap)
        .expect("valid");
    let g = b.build();
    Topology {
        name: "Dumbbell".into(),
        graph: g,
        sources: left,
        sinks: right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn waxman_is_strongly_connected_and_deterministic() {
        for seed in [1u64, 2, 40] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (t, coords) = waxman(20, WaxmanParams::default(), &mut rng);
            assert_eq!(t.graph.node_count(), 20);
            assert_eq!(coords.len(), 20);
            assert!(t.graph.is_strongly_connected(), "seed {seed}");
            // Bi-directed: edge count even, both directions present.
            assert_eq!(t.graph.edge_count() % 2, 0);
            // Determinism.
            let mut rng2 = StdRng::seed_from_u64(seed);
            let (t2, coords2) = waxman(20, WaxmanParams::default(), &mut rng2);
            assert_eq!(t.graph.edge_count(), t2.graph.edge_count());
            assert_eq!(coords, coords2);
        }
    }

    #[test]
    fn waxman_prefers_short_links() {
        // Beyond the spanning tree, Waxman links should be biased toward
        // short distances: mean link length below mean pairwise distance.
        let mut rng = StdRng::seed_from_u64(7);
        let (t, coords) = waxman(
            40,
            WaxmanParams {
                alpha: 0.6,
                beta: 0.15, // strong locality
                cap_range: (1.0, 1.0),
            },
            &mut rng,
        );
        let dist = |a: (f64, f64), b: (f64, f64)| -> f64 {
            ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
        };
        let mut link_len = 0.0;
        let mut links = 0.0;
        for e in t.graph.edges() {
            link_len += dist(coords[e.src.index()], coords[e.dst.index()]);
            links += 1.0;
        }
        let mut pair_len = 0.0;
        let mut pairs = 0.0;
        for i in 0..coords.len() {
            for j in i + 1..coords.len() {
                pair_len += dist(coords[i], coords[j]);
                pairs += 1.0;
            }
        }
        assert!(
            link_len / links < pair_len / pairs,
            "links not shorter on average: {} vs {}",
            link_len / links,
            pair_len / pairs
        );
    }

    #[test]
    fn gnp_connected_at_any_probability() {
        for p in [0.0, 0.1, 0.9] {
            let mut rng = StdRng::seed_from_u64(3);
            let t = gnp(15, p, (1.0, 5.0), &mut rng);
            assert!(t.graph.is_strongly_connected(), "p={p}");
        }
        // p = 0 leaves exactly the spanning tree.
        let mut rng = StdRng::seed_from_u64(3);
        let t = gnp(15, 0.0, (1.0, 5.0), &mut rng);
        assert_eq!(t.graph.edge_count(), 28); // 14 tree links x 2
    }

    #[test]
    fn gnp_density_increases_with_p() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let sparse = gnp(30, 0.05, (1.0, 2.0), &mut r1);
        let dense = gnp(30, 0.6, (1.0, 2.0), &mut r2);
        assert!(dense.graph.edge_count() > sparse.graph.edge_count());
    }

    #[test]
    fn dumbbell_waist_is_the_only_crossing() {
        let t = dumbbell(4, 100.0, 1.0);
        assert_eq!(t.graph.node_count(), 8);
        assert!(t.graph.is_strongly_connected());
        assert_eq!(t.sources.len(), 4);
        assert_eq!(t.sinks.len(), 4);
        // Exactly one link (2 directed edges) crosses the clusters.
        let crossing = t
            .graph
            .edges()
            .filter(|e| {
                let sl = t.graph.label(e.src).starts_with('L');
                let dl = t.graph.label(e.dst).starts_with('L');
                sl != dl
            })
            .count();
        assert_eq!(crossing, 2);
        // The waist carries the thin capacity.
        for e in t.graph.edges() {
            let cross =
                t.graph.label(e.src).starts_with('L') != t.graph.label(e.dst).starts_with('L');
            if cross {
                assert_eq!(e.capacity, 1.0);
            } else {
                assert_eq!(e.capacity, 100.0);
            }
        }
    }

    #[test]
    fn single_node_clusters_still_work() {
        let t = dumbbell(1, 5.0, 2.0);
        assert_eq!(t.graph.node_count(), 2);
        assert_eq!(t.graph.edge_count(), 2);
        assert!(t.graph.is_strongly_connected());
    }
}
