//! Umbrella crate for the coflow scheduling suite.
//!
//! Re-exports the workspace crates under one roof so that the repository's
//! `examples/` and `tests/` can exercise the whole system through a single
//! dependency. Downstream users should depend on the individual crates:
//!
//! * [`netgraph`] — capacitated digraphs, WAN topologies, paths, max-flow.
//! * [`lp`] — the sparse revised-simplex linear-programming solver.
//! * [`core`] — coflow instances, the time-indexed and geometric-interval
//!   LPs, the Stretch 2-approximation, and the λ=1 LP heuristic.
//! * [`workloads`] — BigBench / TPC-DS / TPC-H / Facebook-shaped synthetic
//!   workload generators.
//! * [`baselines`] — Jahanjou et al., Terra offline, SJF, and the
//!   concurrent open shop reduction.

pub use coflow_baselines as baselines;
pub use coflow_core as core;
pub use coflow_lp as lp;
pub use coflow_netgraph as netgraph;
pub use coflow_workloads as workloads;
